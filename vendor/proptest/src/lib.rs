//! Offline, API-compatible subset of `proptest`.
//!
//! Provides the slice of the proptest API this workspace uses — the
//! [`Strategy`] trait over ranges, tuples, [`Just`] and
//! [`collection::vec`], `any::<T>()`, the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!` —
//! without shrinking: a failing case panics, and a drop guard prints the
//! test name, case index and global seed so the exact case can be
//! regenerated deterministically.
//!
//! # Determinism
//!
//! Runs are deterministic by construction: each test's RNG is seeded from
//! a fixed global seed (`PROPTEST_RNG_SEED`, default `0xC0FFEE`) combined
//! with the hash of the test's name, so every `cargo test` invocation and
//! every CI run explores the same cases.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

pub mod test_runner {
    //! Test-runner configuration (subset).

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Catch-all for forward compatibility with the real API.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// The deterministic RNG driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) super::StdRng);

    impl TestRng {
        /// Seeds the RNG from the global seed and the test's name, making
        /// every run of a given test deterministic.
        #[must_use]
        pub fn deterministic(test_name: &str) -> Self {
            use rand::SeedableRng;
            // FNV-1a over the test name, mixed with the global seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ global_seed();
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(super::StdRng::seed_from_u64(hash))
        }
    }

    /// The global seed: `PROPTEST_RNG_SEED` (decimal or `0x`-prefixed
    /// hex), defaulting to `0xC0FFEE`. An unparseable value panics rather
    /// than silently falling back — a typo'd seed must not masquerade as
    /// a fresh stream.
    pub fn global_seed() -> u64 {
        match std::env::var("PROPTEST_RNG_SEED") {
            Err(_) => 0xC0_FFEE,
            Ok(text) => {
                let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse::<u64>(),
                };
                parsed.unwrap_or_else(|_| {
                    panic!("PROPTEST_RNG_SEED must be a decimal or 0x-hex u64, got `{text}`")
                })
            }
        }
    }

    /// Prints reproduction instructions if dropped while panicking — the
    /// stub has no shrinking, so the case index plus the seed is the
    /// hand-off a failing property gives the developer.
    pub struct CaseReporter<'a> {
        /// Fully-qualified test name.
        pub test_name: &'a str,
        /// Zero-based index of the running case.
        pub case: u32,
    }

    impl Drop for CaseReporter<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest stub: property `{}` failed at case #{} \
                     (global seed {:#x}; rerun with PROPTEST_RNG_SEED={} — \
                     cases are generated deterministically in order)",
                    self.test_name,
                    self.case,
                    global_seed(),
                    global_seed(),
                );
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    fn arbitrary_strategy() -> AnyStrategy<Self>;
}

/// The strategy returned by [`any`]; draws uniformly from the type's full
/// value range.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_strategy() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary_strategy()
}

pub mod collection {
    //! Collection strategies (subset).

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact length or a length range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Alias so `prop::collection::vec(...)` paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            const TEST_NAME: &str = concat!(module_path!(), "::", stringify!($name));
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(TEST_NAME);
            for _case in 0..config.cases {
                // On panic, the reporter's Drop prints the case index and
                // seed so the failure is reproducible.
                let _reporter =
                    $crate::test_runner::CaseReporter { test_name: TEST_NAME, case: _case };
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runners() {
        let strat = (0u64..100, collection::vec(0u32..10, 5));
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u64..10, 0u64..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flag;
        }

        #[test]
        fn flat_map_chains(v in (1usize..4).prop_flat_map(|n| collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
