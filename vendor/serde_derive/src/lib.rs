//! Derive macros for the vendored `serde` stub.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the two shapes this workspace
//! serializes: structs with named fields and enums with unit variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + unit variants.
    Enum(String, Vec<String>),
}

/// Parses the derive input far enough to learn the item's name and its
/// field/variant names. Attributes (including doc comments) are skipped.
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    let mut is_enum = false;
    let mut name = None;

    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute body `[...]`.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let text = id.to_string();
                if text == "struct" || text == "enum" {
                    is_enum = text == "enum";
                    if let Some(TokenTree::Ident(n)) = tokens.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    let name = name.expect("serde stub derive: could not find item name");

    // The body is the last brace-delimited group.
    let body = tokens
        .filter_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .last()
        .unwrap_or_else(|| {
            panic!("serde stub derive: `{name}` has no braced body (tuple structs unsupported)")
        });

    let mut names = Vec::new();
    let mut body_tokens = body.stream().into_iter().peekable();
    // Per item: skip attributes and visibility, take the first ident as
    // the field/variant name, then skip to the next top-level comma
    // (commas inside `<...>` generics are not top-level).
    loop {
        // Skip attributes.
        while matches!(body_tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            body_tokens.next();
            body_tokens.next();
        }
        // Skip visibility.
        while matches!(body_tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            body_tokens.next();
            if matches!(
                body_tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                body_tokens.next();
            }
        }
        match body_tokens.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            Some(other) => {
                panic!("serde stub derive: unexpected token `{other}` in body of `{name}`")
            }
            None => break,
        }
        // Skip to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match body_tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    body_tokens.next();
                    match c {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                }
                Some(_) => {
                    body_tokens.next();
                }
            }
        }
    }

    if is_enum {
        Shape::Enum(name, names)
    } else {
        Shape::Struct(name, names)
    }
}

/// Derives `serde::Serialize` (stub) for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let source = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().expect("serde stub derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (stub) for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let source = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\n\
                             value.get(\"{f}\").unwrap_or(&::serde::Value::Null),\n\
                         ).map_err(|_| ::serde::Error::custom(\n\
                             concat!(\"invalid field `\", \"{f}\", \"` of {name}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if value.as_object().is_none() {{\n\
                             return Err(::serde::Error::custom(\"expected object for {name}\"));\n\
                         }}\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             _ => Err(::serde::Error::custom(\"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().expect("serde stub derive: generated invalid Deserialize impl")
}
