//! Offline, API-compatible subset of `serde_json`.
//!
//! Renders the vendored serde stub's `Value` tree to JSON text and parses
//! JSON text back. Covers the JSON grammar the workspace emits: objects,
//! arrays, strings with standard escapes, integers, floats, booleans and
//! `null`.

use std::fmt::Write as _;

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Float(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting; force a
                // fractional part so the text re-parses as a float.
                let text = format!("{v}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", byte as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "a \"quoted\"\nline\\with\tescapes".to_string();
        let json = to_string(&tricky).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
    }

    #[test]
    fn arrays_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v: Vec<Vec<u64>> = from_str(" [ [1, 2] , [] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
    }
}
