//! Offline, API-compatible subset of `criterion`.
//!
//! A functional stand-in for the criterion benchmark harness: the same
//! builder/group/bencher surface, but measurement is a simple
//! mean-of-samples timer printed to stdout. Statistical machinery
//! (outlier analysis, HTML reports) is intentionally absent; the goal is
//! that `cargo bench` compiles, runs, and prints stable per-iteration
//! timings.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Parses CLI configuration (no-op in the stub; accepts and ignores
    /// harness flags such as `--bench`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(self, &name, &mut body);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the work per iteration (printed, not otherwise used).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("{}: throughput {:?}", self.name, throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, &mut body);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, &mut |b: &mut Bencher| body(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark by function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id shown as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { text: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { text: name }
    }
}

/// The amount of work per iteration, for ops/second style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Controls how `iter_batched` amortizes setup cost (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Passed to benchmark bodies; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of iterations per sample.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut warm_iters: u32 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_up_end || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, body: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: criterion.sample_size,
        warm_up_time: criterion.warm_up_time,
        measurement_time: criterion.measurement_time,
    };
    body(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{label}: mean {mean:?}/iter (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut counter = 0u64;
        quick().bench_function("noop", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_and_inputs_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![3u8, 1, 2], |mut v| v.sort_unstable(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
