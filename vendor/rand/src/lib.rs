//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, which is all the test suites rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range (the
/// stub's stand-in for sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (which is
    /// ChaCha12), but deterministic per seed, which is the property the
    /// workspace's tests depend on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A tiny, fast generator (alias of [`StdRng`] in this stub).
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions: random shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Returns a generator seeded from the system clock — deterministic
/// callers should prefer [`SeedableRng::seed_from_u64`].
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
