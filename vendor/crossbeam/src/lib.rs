//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! The workspace only uses [`utils::CachePadded`]; everything else is
//! intentionally absent.

/// Miscellaneous utilities (subset).
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent atomics.
    ///
    /// 128-byte alignment covers the spatial-prefetcher pairs on x86_64
    /// and the 128-byte lines on recent aarch64 parts.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    unsafe impl<T: Send> Send for CachePadded<T> {}
    unsafe impl<T: Sync> Sync for CachePadded<T> {}

    impl<T> CachePadded<T> {
        /// Pads `value` to a cache line.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded").field("value", &self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligned_to_128() {
            let padded = CachePadded::new(1u64);
            assert_eq!(std::mem::align_of_val(&padded), 128);
            assert_eq!(*padded, 1);
            assert_eq!(padded.into_inner(), 1);
        }
    }
}
