//! Offline, API-compatible subset of `serde`.
//!
//! Instead of serde's visitor architecture, this stub uses a simple
//! self-describing [`Value`] tree: [`Serialize`] converts a type into a
//! [`Value`], [`Deserialize`] reconstructs it. The companion
//! `serde_derive` stub generates both impls for named-field structs and
//! unit-variant enums — exactly the shapes this workspace serializes —
//! and the `serde_json` stub renders [`Value`] to and from JSON text.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the stub's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key–value map preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the stub's [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the stub's [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    Value::Int(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()).unwrap(), vec![1, 2, 3]);
    }
}
