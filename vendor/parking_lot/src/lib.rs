//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives; the `parking_lot` API differences
//! the workspace relies on are the poison-free `lock()` signature and the
//! in-place `Condvar::wait`/`wait_for` signatures (the guard is passed by
//! `&mut` instead of by value).

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::PoisonError;
use std::time::Duration;

/// A guard releasing the mutex on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A guard for shared read access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// A guard for exclusive write access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with a poison-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never reports poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader–writer lock with poison-free accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// rather than because of a notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot` signatures: the guard is
/// re-acquired *in place* (`&mut MutexGuard`) and waits never report
/// poisoning. Wakeups may be spurious — callers must re-check their
/// condition in a loop, exactly as with `std::sync::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Runs `f` on the guard owned by `slot`, replacing it with the guard `f`
/// returns. The temporary move out of `slot` is why `f` must not unwind:
/// an escaped panic would leave `slot` logically uninitialized and the
/// caller's eventual drop would unlock the mutex twice, so this aborts
/// instead. The only panic `std::sync::Condvar` can raise here (beyond
/// poisoning, which is swallowed) is the multiple-mutexes misuse, a
/// programming error for which an abort is an acceptable report.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid initialized guard; it is read out exactly
    // once and unconditionally written back (any unwind in between aborts
    // the process, so the double-drop window is unreachable).
    unsafe {
        let owned = std::ptr::read(slot);
        let owned = std::panic::catch_unwind(AssertUnwindSafe(|| f(owned)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, owned);
    }
}

impl Condvar {
    /// Creates a condition variable ready for use.
    #[must_use]
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guarded mutex and blocks until notified,
    /// re-acquiring the lock (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Self::wait`], but gives up once `timeout` has elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) =
                self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[test]
    fn condvar_wait_is_woken_by_notify() {
        let pair = (Mutex::new(false), Condvar::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let (lock, cvar) = &pair;
                std::thread::sleep(Duration::from_millis(10));
                *lock.lock() = true;
                cvar.notify_all();
            });
            let (lock, cvar) = &pair;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            assert!(*ready);
        });
    }

    #[test]
    fn condvar_wait_for_times_out_without_a_notification() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let start = Instant::now();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        drop(guard);
        assert!(lock.try_lock().is_some(), "the guard still owns the lock until dropped");
    }

    #[test]
    fn condvar_wait_for_reports_no_timeout_when_notified() {
        let pair = (Mutex::new(false), Condvar::new());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let (lock, cvar) = &pair;
                std::thread::sleep(Duration::from_millis(5));
                *lock.lock() = true;
                cvar.notify_one();
            });
            let (lock, cvar) = &pair;
            let mut ready = lock.lock();
            while !*ready {
                // Generous bound: the test only needs *some* non-timeout
                // wakeup to be observed before the deadline.
                let result = cvar.wait_for(&mut ready, Duration::from_secs(30));
                assert!(!result.timed_out());
            }
        });
    }

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_conflicts() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
