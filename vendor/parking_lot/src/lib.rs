//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives; the `parking_lot` API difference the
//! workspace relies on is only the poison-free `lock()` signature.

use std::fmt;
use std::sync::PoisonError;

/// A guard releasing the mutex on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A guard for shared read access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// A guard for exclusive write access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with a poison-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never reports poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader–writer lock with poison-free accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_conflicts() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
