//! # counting-runtime — concurrent shared-memory execution of balancing
//! networks
//!
//! The paper's target platform is an MIMD shared-memory multiprocessor on
//! which each balancer is a shared memory location traversed by `n`
//! asynchronous processes (Section 1.2), and its experimental evaluation
//! compares the throughput of `C(w, t)` against the bitonic and periodic
//! networks on real hardware. This crate is that substrate, built on
//! modern Rust atomics:
//!
//! * [`CompiledNetwork`] — a lock-free, cache-friendly compilation of any
//!   [`balnet::Network`] topology: every balancer is a single atomic word
//!   updated with `fetch_add`, wires are index lookups.
//! * [`NetworkCounter`] — a Fetch&Increment shared counter backed by a
//!   compiled network plus per-output-wire value dispensers, exactly the
//!   construction of Section 1.1.
//! * [`CentralCounter`] and [`LockCounter`] — the centralized baselines
//!   (a single `fetch_add` hotspot and a mutex-protected counter).
//! * [`throughput`] — a measurement harness that drives any
//!   [`SharedCounter`] with `n` threads and reports operations per second,
//!   reproducing the shape of the paper's throughput comparison
//!   (experiment E7 in `DESIGN.md`).
//! * [`stress`] — an adversarial real-thread workload driver (steady,
//!   bursty, skewed, churn, oscillating and NUMA-style pinned scenarios)
//!   with online invariant checking: a sharded atomic [`ValueBitmap`]
//!   verifies uniqueness and exact-range coverage without a mutex-guarded
//!   set — reporting the first offending values, not just counts — and
//!   timestamped records are fed to `counting-sim`'s linearizability
//!   analysis to *measure* non-linearizability on real hardware.
//! * [`elimination`] — an elimination/combining arena in front of any
//!   [`BlockReserve`] counter: colliding `next_batch` callers merge their
//!   requests into one combined contiguous reservation and split it back
//!   gap-free, making the exact-range guarantee hold for **mixed** batch
//!   sizes and arbitrary operation counts. The arena probes a small
//!   window of adjacent slots before falling back to a solo reservation.
//! * [`waiting`] — pluggable rendezvous waiting: [`WaitStrategy`]
//!   selects how a published offer waits for its partner (pure spin,
//!   spin-then-yield, or parking on a `parking_lot`-backed [`ParkTable`]
//!   keyed by arena slot, woken by the claimer). Parking is what makes
//!   collisions land when runnable threads outnumber cpus.
//!
//! Concurrency-correctness notes: every balancer traversal is a single
//! atomic `fetch_add` (so balancer state transitions are linearizable per
//! balancer), and every output wire's dispenser is an atomic `fetch_add`
//! stepping by the output width. Relaxed ordering suffices throughout —
//! the counting guarantee rests only on the per-location modification
//! orders, not on cross-location happens-before — which is also what makes
//! the structure genuinely low-contention in hardware.
//!
//! # Quick start
//!
//! Construct any of the four counter families, draw values, and batch:
//!
//! ```
//! use counting::counting_network;
//! use counting_runtime::{
//!     CentralCounter, DiffractingCounter, LockCounter, NetworkCounter, SharedCounter,
//! };
//!
//! // The paper's counting network, compiled to atomics.
//! let net = counting_network(4, 8).expect("valid parameters");
//! let counter = NetworkCounter::new("C(4,8)", &net);
//! assert_ne!(counter.next(0), counter.next(1), "values are unique");
//!
//! // One traversal reserves a whole stride of values.
//! let mut batch = Vec::new();
//! counter.next_batch(2, 4, &mut batch);
//! assert_eq!(batch.len(), 4);
//!
//! // The baselines share the same trait, so harnesses take any of them.
//! let subjects: Vec<Box<dyn SharedCounter>> = vec![
//!     Box::new(CentralCounter::new()),
//!     Box::new(LockCounter::new()),
//!     Box::new(DiffractingCounter::new(4, 8, 128)),
//! ];
//! for subject in &subjects {
//!     assert_eq!(subject.next(0), 0, "{} starts at zero", subject.describe());
//! }
//! ```
//!
//! Wrap any [`BlockReserve`] counter in the elimination arena for
//! gap-free **mixed-size** batching, picking the [`WaitStrategy`] that
//! matches your thread-to-core ratio:
//!
//! ```
//! use counting::counting_network;
//! use counting_runtime::{
//!     EliminationConfig, EliminationCounter, NetworkCounter, SharedCounter, WaitStrategy,
//! };
//!
//! let net = counting_network(4, 8).expect("valid parameters");
//! let config = EliminationConfig {
//!     // Park surrenders the publisher's core to its potential partner —
//!     // the robust choice when runnable threads outnumber cpus.
//!     strategy: WaitStrategy::Park,
//!     ..EliminationConfig::default()
//! };
//! let counter = EliminationCounter::with_config(NetworkCounter::new("C(4,8)", &net), config);
//!
//! // Any mix of batch sizes tiles the value space exactly.
//! let mut values = Vec::new();
//! for (op, k) in [3usize, 1, 7, 2].into_iter().enumerate() {
//!     counter.next_batch(op, k, &mut values);
//! }
//! values.sort();
//! assert_eq!(values, (0..13).collect::<Vec<u64>>(), "exact range, no gaps");
//! assert!(counter.describe().ends_with("elim[4:park]"));
//! ```

#![warn(missing_docs)]

pub mod compiled;
pub mod counter;
pub mod diffracting;
pub mod elimination;
#[cfg(feature = "model")]
pub mod model_scenarios;
pub mod stress;
pub mod sync;
pub mod throughput;
pub mod waiting;

pub use compiled::{BoxedRouteNetwork, CompiledNetwork};
pub use counter::{BlockReserve, CentralCounter, LockCounter, NetworkCounter, SharedCounter};
pub use diffracting::DiffractingCounter;
pub use elimination::{EliminationConfig, EliminationCounter};
pub use stress::{run_stress, Batching, Scenario, StressConfig, StressReport, ValueBitmap};
pub use throughput::{
    measure_batched_throughput, measure_throughput, rate_over, MeasuredWindow,
    ThroughputMeasurement, MIN_MEASURED_WINDOW,
};
pub use waiting::{ParkTable, WaitStrategy};
