//! Throughput measurement harness.
//!
//! The paper's experimental comparison (and the IPPS'98 evaluation it
//! references) measures how many Fetch&Increment operations per second a
//! counter sustains as the number of concurrent processes grows. This
//! module drives any [`SharedCounter`] with `n` threads performing a fixed
//! number of operations each and reports the aggregate rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crate::counter::SharedCounter;

/// Shared measured-window plumbing for multi-threaded harnesses: a start
/// barrier plus worker-side timestamps. Workers call [`enter`](Self::enter)
/// (rendezvous, then record the release instant) and
/// [`exit`](Self::exit) (record completion); the window is the earliest
/// release to the latest completion. Timing in the coordinating thread
/// instead would under-count whenever the OS runs the workers to
/// completion before handing the coordinator the CPU back (routine on an
/// oversubscribed machine).
#[derive(Debug)]
pub struct MeasuredWindow {
    barrier: Barrier,
    first_start: AtomicU64,
    last_end: AtomicU64,
    epoch: Instant,
}

impl MeasuredWindow {
    /// Creates a window whose start barrier releases once `threads`
    /// workers have entered.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            barrier: Barrier::new(threads),
            first_start: AtomicU64::new(u64::MAX),
            last_end: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the window's epoch, comparable across
    /// threads.
    pub(crate) fn nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Blocks until every worker has arrived, then records the release
    /// instant. Call once per worker, before its workload.
    pub fn enter(&self) {
        self.barrier.wait();
        // Relaxed: min/max envelope bookkeeping — the barrier orders the
        // workers, the RMW's per-location order keeps the envelope exact.
        self.first_start.fetch_min(self.nanos(), Ordering::Relaxed);
    }

    /// Records the worker's completion instant. Call once per worker,
    /// after its workload.
    pub fn exit(&self) {
        // Relaxed: envelope bookkeeping (see `enter`).
        self.last_end.fetch_max(self.nanos(), Ordering::Relaxed);
    }

    /// The measured window. Meaningful only after all workers finished.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        // Relaxed loads: post-join quiescent reads.
        Duration::from_nanos(
            self.last_end
                .load(Ordering::Relaxed)
                .saturating_sub(self.first_start.load(Ordering::Relaxed)),
        )
    }
}

/// The shortest window a rate is computed from. Below this, clock
/// resolution and timestamp plumbing dominate the measurement, and the
/// old `elapsed.max(EPSILON)` clamp would report an absurd ~1e16×ops
/// rate; such windows now yield `None` instead of a poisoned number.
pub const MIN_MEASURED_WINDOW: Duration = Duration::from_micros(1);

/// `total / elapsed` as a per-second rate, or `None` when `elapsed` is
/// shorter than [`MIN_MEASURED_WINDOW`] (a degenerate window that cannot
/// support a meaningful rate). Every rate recorded by this crate's
/// harnesses — and every `exp_*` JSON emitter downstream — goes through
/// this helper, so degenerate cells are explicit `null`s in reports
/// rather than silently absurd numbers.
#[must_use]
pub fn rate_over(total: u64, elapsed: Duration) -> Option<f64> {
    (elapsed >= MIN_MEASURED_WINDOW).then(|| total as f64 / elapsed.as_secs_f64())
}

/// The result of one throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputMeasurement {
    /// Description of the counter under test.
    pub counter: String,
    /// Number of threads that drove the counter.
    pub threads: usize,
    /// Values obtained per thread (for batched runs, batches × k).
    pub ops_per_thread: u64,
    /// Total values obtained across all threads.
    pub total_ops: u64,
    /// Wall-clock time of the measured window (barrier release to last
    /// thread done; thread start-up is excluded).
    pub elapsed: Duration,
    /// Aggregate operations per second; `None` when the window was
    /// degenerate (shorter than [`MIN_MEASURED_WINDOW`]).
    pub ops_per_second: Option<f64>,
}

/// Runs `threads` threads, each performing `ops_per_thread` calls to
/// `counter.next`, and measures the aggregate throughput.
///
/// All threads rendezvous at a start barrier before the clock starts, so
/// thread spawn cost is excluded and every thread begins the measured
/// window together (no short-staffed warm-up skewing the rate). The
/// window itself is timestamped by the workers — first worker release to
/// last worker completion — so the measurement stays accurate even when
/// the coordinating thread is descheduled on an oversubscribed machine.
#[must_use]
pub fn measure_throughput<C: SharedCounter + ?Sized>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
) -> ThroughputMeasurement {
    measure(counter, threads, ops_per_thread, 1)
}

/// Like [`measure_throughput`], but each of the `batches_per_thread`
/// operations reserves `k` values via [`SharedCounter::next_batch`] — the
/// combining fast path. The reported totals and rate count *values*, so
/// the numbers are directly comparable with [`measure_throughput`].
#[must_use]
pub fn measure_batched_throughput<C: SharedCounter + ?Sized>(
    counter: &C,
    threads: usize,
    batches_per_thread: u64,
    k: usize,
) -> ThroughputMeasurement {
    assert!(k > 0, "batch size must be at least 1");
    measure(counter, threads, batches_per_thread, k)
}

fn measure<C: SharedCounter + ?Sized>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
    k: usize,
) -> ThroughputMeasurement {
    assert!(threads > 0, "at least one thread is required");
    let window = MeasuredWindow::new(threads);
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let window = &window;
            scope.spawn(move || {
                window.enter();
                if k == 1 {
                    for _ in 0..ops_per_thread {
                        // The value is intentionally discarded; the side
                        // effect of advancing the shared counter is the
                        // workload.
                        let _ = counter.next(tid);
                    }
                } else {
                    let mut batch = Vec::with_capacity(k);
                    for _ in 0..ops_per_thread {
                        batch.clear();
                        counter.next_batch(tid, k, &mut batch);
                    }
                }
                window.exit();
            });
        }
    });
    let elapsed = window.elapsed();
    let total_ops = threads as u64 * ops_per_thread * k as u64;
    ThroughputMeasurement {
        counter: counter.describe(),
        threads,
        ops_per_thread: ops_per_thread * k as u64,
        total_ops,
        elapsed,
        ops_per_second: rate_over(total_ops, elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, NetworkCounter};
    use counting::counting_network;

    #[test]
    fn measurement_accounts_for_all_operations() {
        let counter = CentralCounter::new();
        let m = measure_throughput(&counter, 4, 1_000);
        assert_eq!(m.total_ops, 4_000);
        assert!(m.ops_per_second.expect("window long enough to measure") > 0.0);
        assert_eq!(m.threads, 4);
        // All operations really happened.
        assert_eq!(counter.next(0), 4_000);
    }

    #[test]
    fn network_counter_throughput_runs() {
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let m = measure_throughput(&counter, 4, 500);
        assert_eq!(m.total_ops, 2_000);
        assert!(m.elapsed > Duration::ZERO);
        assert_eq!(m.counter, "C(8,8)");
    }

    #[test]
    fn batched_measurement_counts_values_not_batches() {
        let counter = CentralCounter::new();
        let m = measure_batched_throughput(&counter, 4, 250, 8);
        assert_eq!(m.total_ops, 4 * 250 * 8);
        assert_eq!(m.ops_per_thread, 2_000);
        // All values really were reserved.
        assert_eq!(counter.next(0), 8_000);
    }

    #[test]
    fn batched_network_measurement_runs() {
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let m = measure_batched_throughput(&counter, 4, 100, 4);
        assert_eq!(m.total_ops, 1_600);
        assert!(m.ops_per_second.expect("window long enough to measure") > 0.0);
    }

    #[test]
    fn degenerate_windows_yield_no_rate() {
        assert_eq!(rate_over(1_000, Duration::ZERO), None);
        assert_eq!(rate_over(1_000, Duration::from_nanos(999)), None);
        let r = rate_over(1_000, Duration::from_secs(2)).expect("measurable window");
        assert!((r - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let counter = CentralCounter::new();
        let _ = measure_throughput(&counter, 0, 10);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_rejected() {
        let counter = CentralCounter::new();
        let _ = measure_batched_throughput(&counter, 1, 10, 0);
    }
}
