//! Throughput measurement harness.
//!
//! The paper's experimental comparison (and the IPPS'98 evaluation it
//! references) measures how many Fetch&Increment operations per second a
//! counter sustains as the number of concurrent processes grows. This
//! module drives any [`SharedCounter`] with `n` threads performing a fixed
//! number of operations each and reports the aggregate rate.

use std::time::{Duration, Instant};

use crate::counter::SharedCounter;

/// The result of one throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputMeasurement {
    /// Description of the counter under test.
    pub counter: String,
    /// Number of threads that drove the counter.
    pub threads: usize,
    /// Operations performed per thread.
    pub ops_per_thread: u64,
    /// Total operations across all threads.
    pub total_ops: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Aggregate operations per second.
    pub ops_per_second: f64,
}

/// Runs `threads` threads, each performing `ops_per_thread` calls to
/// `counter.next`, and measures the aggregate throughput.
///
/// The measurement includes thread start-up; callers interested in steady
/// state should use a large enough `ops_per_thread` that start-up cost is
/// negligible (the benches use tens of thousands of operations per
/// thread).
#[must_use]
pub fn measure_throughput<C: SharedCounter + ?Sized>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
) -> ThroughputMeasurement {
    assert!(threads > 0, "at least one thread is required");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                for _ in 0..ops_per_thread {
                    // The value is intentionally discarded; the side effect
                    // of advancing the shared counter is the workload.
                    let _ = counter.next(tid);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total_ops = threads as u64 * ops_per_thread;
    ThroughputMeasurement {
        counter: counter.describe(),
        threads,
        ops_per_thread,
        total_ops,
        elapsed,
        ops_per_second: total_ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, NetworkCounter};
    use counting::counting_network;

    #[test]
    fn measurement_accounts_for_all_operations() {
        let counter = CentralCounter::new();
        let m = measure_throughput(&counter, 4, 1_000);
        assert_eq!(m.total_ops, 4_000);
        assert!(m.ops_per_second > 0.0);
        assert_eq!(m.threads, 4);
        // All operations really happened.
        assert_eq!(counter.next(0), 4_000);
    }

    #[test]
    fn network_counter_throughput_runs() {
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let m = measure_throughput(&counter, 4, 500);
        assert_eq!(m.total_ops, 2_000);
        assert!(m.elapsed > Duration::ZERO);
        assert_eq!(m.counter, "C(8,8)");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let counter = CentralCounter::new();
        let _ = measure_throughput(&counter, 0, 10);
    }
}
