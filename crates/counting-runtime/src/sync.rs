//! The model-checking seam: atomic types and scheduling hooks that the
//! lock-free cores import instead of naming `std::sync::atomic` directly.
//!
//! With the `model` cargo feature **off** (the default, and what every
//! performance-sensitive build uses) this module re-exports the real
//! `std` atomics and compiles the hooks down to constants — the cores are
//! byte-for-byte the production protocol.
//!
//! With the feature **on**, the atomics come from
//! [`counting_sim::model`]: every load/store/RMW/CAS becomes a scheduling
//! point of the exhaustive interleaving explorer, and the hooks
//! ([`in_model`], [`model_yield`], [`park_poll`], [`mutation_enabled`])
//! let wait loops and park/unpark cooperate with the DFS scheduler.
//! Outside an active exploration the shim atomics pass through to `std`
//! behavior, so a feature-on build still runs the ordinary test suite
//! unchanged.
//!
//! Only the modules named in the model suite import through this seam
//! (`elimination`, `waiting`); the counters and networks underneath keep
//! their raw `std` atomics — the model scenarios wrap them behind a
//! [`crate::counter::BlockReserve`] boundary whose single `fetch_add` is
//! trivially atomic either way.

#[cfg(feature = "model")]
pub use counting_sim::model::{
    in_model, model_point, model_yield, mutation_enabled, park_poll, AtomicI64, AtomicU64,
};

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicI64, AtomicU64};

/// Whether the calling thread runs under an active model exploration.
/// Always `false` without the `model` feature, so guarded branches fold
/// away.
#[cfg(not(feature = "model"))]
#[inline(always)]
#[must_use]
pub fn in_model() -> bool {
    false
}

/// A voluntary scheduling point for wait loops; plain
/// [`std::thread::yield_now`] without the `model` feature.
#[cfg(not(feature = "model"))]
#[inline]
pub fn model_yield() {
    std::thread::yield_now();
}

/// An explicit named scheduling point; a no-op without the `model`
/// feature.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn model_point(_label: u64) {}

/// The model analogue of a timed park; without the `model` feature it
/// degenerates to one probe of the condition (never reached in practice —
/// callers gate it behind [`in_model`]).
#[cfg(not(feature = "model"))]
#[inline]
pub fn park_poll(filled: impl Fn() -> bool) -> bool {
    filled()
}

/// Whether a named seeded protocol mutation is active. Always `false`
/// without the `model` feature: mutations exist only inside model
/// executions.
#[cfg(not(feature = "model"))]
#[inline(always)]
#[must_use]
pub fn mutation_enabled(_name: &str) -> bool {
    false
}
