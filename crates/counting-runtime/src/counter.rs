//! Shared Fetch&Increment counters.
//!
//! The whole point of a counting network is to implement a shared counter
//! whose `fetch_increment` operations do not all serialize on a single
//! memory location (Section 1.1). This module provides the network-backed
//! counter and the two centralized baselines it is compared against.

use std::sync::atomic::{AtomicU64, Ordering};

use balnet::Network;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::compiled::CompiledNetwork;

/// A shared counter handing out distinct values `0, 1, 2, ...` to
/// concurrent callers.
pub trait SharedCounter: Sync {
    /// Obtains the next counter value. `thread_id` identifies the calling
    /// process (used by network-backed counters to pick the input wire
    /// `thread_id mod w`, mirroring the paper's process-to-wire
    /// assignment).
    fn next(&self, thread_id: usize) -> u64;

    /// Obtains `k` counter values in one operation, appending them to
    /// `out`. Every value handed out (batched or not) is globally unique.
    ///
    /// The default implementation performs `k` independent [`Self::next`]
    /// calls; counters override it with a *combining* fast path that
    /// reserves all `k` values in a single traversal, cutting the
    /// per-value cost by a factor of `k`.
    ///
    /// Range semantics: the centralized counters always hand out exactly
    /// `0..m` for `m` total values. Network-backed counters reserve a
    /// stride of `k` values from one output-wire dispenser per call, so
    /// their union of handed-out values at quiescence is the exact range
    /// `0..m` provided every operation of the run uses the same `k` and
    /// the total number of operations is a multiple of the network's
    /// output width (the counting property then delivers equally many
    /// reservations to every output wire). Uniqueness needs no such
    /// precondition. To hand out gap-free ranges under **mixed** batch
    /// sizes and arbitrary operation counts, route the counter through
    /// [`crate::elimination::EliminationCounter`], which replaces stride
    /// reservations with contiguous [`BlockReserve`] blocks and merges
    /// colliding requests.
    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        out.reserve(k);
        for _ in 0..k {
            out.push(self.next(thread_id));
        }
    }

    /// A short human-readable description used in benchmark output.
    fn describe(&self) -> String;
}

/// The contiguous-block reservation capability consumed by the
/// elimination layer ([`crate::elimination::EliminationCounter`]).
///
/// One call reserves the exactly-sized block `base..base + k` and returns
/// `base`. Blocks **tile** the value space: the union of all blocks ever
/// reserved is `0..total_reserved` at every quiescent point, for *any*
/// mix of sizes and any number of operations — the guarantee that stride
/// reservations ([`SharedCounter::next_batch`] on network-backed
/// counters) only provide for uniform `k` and balanced traversal counts.
///
/// The centralized counters implement this with the same state as their
/// `next` path, so block and per-value operations may be mixed freely on
/// one instance. The network-backed counters ([`NetworkCounter`],
/// [`crate::DiffractingCounter`]) pay one structure traversal per block —
/// preserving the paper's contention-diffusing traffic shape — and then
/// draw the block from a dedicated contiguous cursor, a *separate* value
/// stream from their per-wire stride dispensers. On those counters an
/// instance must be driven either through `next`/`next_batch` or through
/// `reserve_block`, never both; the elimination layer enforces this by
/// taking ownership of the counter it wraps.
pub trait BlockReserve: SharedCounter {
    /// Reserves the contiguous block `base..base + k` and returns `base`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64;
}

/// Delegation through smart pointers: a boxed counter is a counter, so
/// heterogeneous backends can live behind `Box<dyn SharedCounter>` /
/// `Box<dyn BlockReserve + Send + Sync>` and still plug into every
/// generic layer (the elimination arena, the stress driver, the service
/// registry).
impl<C: SharedCounter + ?Sized> SharedCounter for Box<C> {
    fn next(&self, thread_id: usize) -> u64 {
        (**self).next(thread_id)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        (**self).next_batch(thread_id, k, out);
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<C: BlockReserve + ?Sized> BlockReserve for Box<C> {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        (**self).reserve_block(thread_id, k)
    }
}

/// Shared-ownership delegation: `Arc<dyn SharedCounter + Send + Sync>` is
/// the hand-out shape of the multi-tenant service registry
/// (`counting-service`) — every holder of the handle drives the same
/// underlying counter.
impl<C: SharedCounter + Send + ?Sized> SharedCounter for std::sync::Arc<C> {
    fn next(&self, thread_id: usize) -> u64 {
        (**self).next(thread_id)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        (**self).next_batch(thread_id, k, out);
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

impl<C: BlockReserve + Send + ?Sized> BlockReserve for std::sync::Arc<C> {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        (**self).reserve_block(thread_id, k)
    }
}

/// A Fetch&Increment counter backed by a counting network: tokens traverse
/// the compiled network and draw their value from the dispenser `v_i` of
/// the output wire they exit on (`v_i` starts at `i` and steps by the
/// output width `t`).
#[derive(Debug)]
pub struct NetworkCounter {
    name: String,
    network: CompiledNetwork,
    dispensers: Box<[CachePadded<AtomicU64>]>,
    /// Contiguous cursor backing [`BlockReserve`] — a value stream
    /// disjoint from the per-wire stride dispensers (see the trait docs).
    block_cursor: CachePadded<AtomicU64>,
}

impl NetworkCounter {
    /// Builds a counter from a network topology.
    #[must_use]
    pub fn new(name: impl Into<String>, network: &Network) -> Self {
        let compiled = CompiledNetwork::new(network);
        let dispensers = (0..compiled.output_width() as u64)
            .map(|i| CachePadded::new(AtomicU64::new(i)))
            .collect();
        Self {
            name: name.into(),
            network: compiled,
            dispensers,
            block_cursor: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The input width of the underlying network.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.network.input_width()
    }

    /// The output width of the underlying network.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.network.output_width()
    }
}

impl SharedCounter for NetworkCounter {
    fn next(&self, thread_id: usize) -> u64 {
        let wire = thread_id % self.network.input_width();
        let out = self.network.traverse(wire);
        let t = self.network.output_width() as u64;
        // Relaxed: uniqueness rests on this RMW's per-location
        // modification order alone; no cross-location publication rides
        // on a handed-out value.
        self.dispensers[out].fetch_add(t, Ordering::Relaxed)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        if k == 0 {
            return;
        }
        // Combining: one traversal reserves a stride of `k` values from
        // the exit dispenser instead of k full traversals.
        let wire = thread_id % self.network.input_width();
        let exit = self.network.traverse(wire);
        let t = self.network.output_width() as u64;
        // Relaxed: stride reservation — same per-location argument as
        // `next`.
        let base = self.dispensers[exit].fetch_add(t * k as u64, Ordering::Relaxed);
        out.extend((0..k as u64).map(|i| base + i * t));
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

impl BlockReserve for NetworkCounter {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        // One traversal per block keeps the network's contention-diffusing
        // role (threads are paced through the balancer fabric exactly as
        // for a stride reservation); the value range itself comes from
        // the contiguous cursor, which is what makes mixed-size blocks
        // tile. The elimination layer keeps this cursor cold by merging
        // colliding requests upstream.
        let wire = thread_id % self.network.input_width();
        let _ = self.network.traverse(wire);
        // Relaxed: the single cursor's modification order makes blocks
        // contiguous and disjoint by itself.
        self.block_cursor.fetch_add(k as u64, Ordering::Relaxed)
    }
}

/// The centralized baseline: a single atomic word everybody `fetch_add`s.
/// Minimal latency, maximal memory contention.
#[derive(Debug, Default)]
pub struct CentralCounter {
    value: CachePadded<AtomicU64>,
}

impl CentralCounter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for CentralCounter {
    fn next(&self, _thread_id: usize) -> u64 {
        // Relaxed: one word, one modification order — the definition of
        // a correct (if contended) Fetch&Increment.
        self.value.fetch_add(1, Ordering::Relaxed)
    }

    fn next_batch(&self, _thread_id: usize, k: usize, out: &mut Vec<u64>) {
        // Relaxed: same single-word argument as `next`.
        let base = self.value.fetch_add(k as u64, Ordering::Relaxed);
        out.extend(base..base + k as u64);
    }

    fn describe(&self) -> String {
        "central fetch_add".into()
    }
}

impl BlockReserve for CentralCounter {
    fn reserve_block(&self, _thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        // Same word as `next`: blocks and single values mix freely.
        self.value.fetch_add(k as u64, Ordering::Relaxed)
    }
}

/// A mutex-protected counter — the naive lock-based implementation.
#[derive(Debug, Default)]
pub struct LockCounter {
    value: Mutex<u64>,
}

impl LockCounter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for LockCounter {
    fn next(&self, _thread_id: usize) -> u64 {
        let mut guard = self.value.lock();
        let v = *guard;
        *guard += 1;
        v
    }

    fn next_batch(&self, _thread_id: usize, k: usize, out: &mut Vec<u64>) {
        let mut guard = self.value.lock();
        let base = *guard;
        *guard += k as u64;
        out.extend(base..base + k as u64);
    }

    fn describe(&self) -> String {
        "mutex counter".into()
    }
}

impl BlockReserve for LockCounter {
    fn reserve_block(&self, _thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        let mut guard = self.value.lock();
        let base = *guard;
        *guard += k as u64;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting::counting_network;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    fn collect_concurrent_values<C: SharedCounter>(
        counter: &C,
        threads: usize,
        per_thread: usize,
    ) -> Vec<u64> {
        let all = StdMutex::new(Vec::with_capacity(threads * per_thread));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        local.push(counter.next(tid));
                    }
                    all.lock().expect("poisoned").extend(local);
                });
            }
        });
        all.into_inner().expect("poisoned")
    }

    fn assert_values_are_exact_range(values: &[u64]) {
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicate values handed out");
        assert_eq!(*values.iter().max().expect("non-empty"), m - 1, "values must be 0..m-1");
    }

    #[test]
    fn network_counter_hands_out_unique_values_sequentially() {
        let net = counting_network(4, 8).expect("valid");
        let counter = NetworkCounter::new("C(4,8)", &net);
        let values: Vec<u64> = (0..100).map(|i| counter.next(i % 4)).collect();
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn network_counter_hands_out_unique_values_concurrently() {
        let net = counting_network(8, 24).expect("valid");
        let counter = NetworkCounter::new("C(8,24)", &net);
        let values = collect_concurrent_values(&counter, 8, 2_000);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn central_counter_hands_out_unique_values_concurrently() {
        let counter = CentralCounter::new();
        let values = collect_concurrent_values(&counter, 8, 2_000);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn lock_counter_hands_out_unique_values_concurrently() {
        let counter = LockCounter::new();
        let values = collect_concurrent_values(&counter, 4, 1_000);
        assert_values_are_exact_range(&values);
    }

    fn collect_concurrent_batches<C: SharedCounter>(
        counter: &C,
        threads: usize,
        batches_per_thread: usize,
        k: usize,
    ) -> Vec<u64> {
        let all = StdMutex::new(Vec::with_capacity(threads * batches_per_thread * k));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(batches_per_thread * k);
                    for _ in 0..batches_per_thread {
                        counter.next_batch(tid, k, &mut local);
                    }
                    all.lock().expect("poisoned").extend(local);
                });
            }
        });
        all.into_inner().expect("poisoned")
    }

    #[test]
    fn network_counter_batches_hand_out_exact_range_sequentially() {
        // 16 batch operations on C(4,8): 16 traversals are a multiple of
        // the output width 8, so the stride reservations cover 0..16k
        // without gaps.
        let net = counting_network(4, 8).expect("valid");
        let counter = NetworkCounter::new("C(4,8)", &net);
        let k = 3;
        let mut values = Vec::new();
        for op in 0..16 {
            counter.next_batch(op % 4, k, &mut values);
        }
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn network_counter_batches_are_unique_and_dense_concurrently() {
        let net = counting_network(8, 24).expect("valid");
        let counter = NetworkCounter::new("C(8,24)", &net);
        // 8 threads × 300 batches = 2400 traversals, a multiple of t = 24.
        let values = collect_concurrent_batches(&counter, 8, 300, 4);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn central_and_lock_batches_hand_out_exact_range_concurrently() {
        let central = CentralCounter::new();
        assert_values_are_exact_range(&collect_concurrent_batches(&central, 8, 500, 5));
        let lock = LockCounter::new();
        assert_values_are_exact_range(&collect_concurrent_batches(&lock, 4, 400, 7));
    }

    #[test]
    fn batch_of_one_matches_plain_next_semantics() {
        let net = counting_network(4, 4).expect("valid");
        let counter = NetworkCounter::new("C(4,4)", &net);
        let mut values = Vec::new();
        for op in 0..12 {
            counter.next_batch(op, 1, &mut values);
        }
        values.push(counter.next(0));
        values.push(counter.next(1));
        values.push(counter.next(2));
        values.push(counter.next(3));
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn zero_sized_batch_is_a_no_op() {
        let net = counting_network(2, 2).expect("valid");
        let counter = NetworkCounter::new("C(2,2)", &net);
        let mut values = Vec::new();
        counter.next_batch(0, 0, &mut values);
        assert!(values.is_empty());
        // The dispensers were not advanced: the next value is still 0 or 1.
        assert!(counter.next(0) < 2);
    }

    #[test]
    fn default_batch_implementation_loops_next() {
        // A minimal counter relying on the trait's default `next_batch`.
        struct Sequential(AtomicU64);
        impl SharedCounter for Sequential {
            fn next(&self, _thread_id: usize) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed)
            }
            fn describe(&self) -> String {
                "sequential".into()
            }
        }
        let counter = Sequential(AtomicU64::new(0));
        let mut values = Vec::new();
        counter.next_batch(0, 5, &mut values);
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    fn collect_concurrent_blocks<C: BlockReserve>(
        counter: &C,
        threads: usize,
        sizes: &[usize],
    ) -> Vec<u64> {
        // Every thread reserves the same mixed-size sequence of blocks;
        // the union of all blocks must tile 0..m exactly — no uniformity
        // or divisibility precondition.
        let all = StdMutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for &k in sizes {
                        let base = counter.reserve_block(tid, k);
                        local.extend(base..base + k as u64);
                    }
                    all.lock().expect("poisoned").extend(local);
                });
            }
        });
        all.into_inner().expect("poisoned")
    }

    #[test]
    fn mixed_size_blocks_tile_exactly_on_every_block_counter() {
        let sizes = [3usize, 1, 7, 2, 5, 4, 1, 6];
        let net = counting_network(8, 24).expect("valid");
        let network = NetworkCounter::new("C(8,24)", &net);
        assert_values_are_exact_range(&collect_concurrent_blocks(&network, 8, &sizes));
        assert_values_are_exact_range(&collect_concurrent_blocks(
            &CentralCounter::new(),
            8,
            &sizes,
        ));
        assert_values_are_exact_range(&collect_concurrent_blocks(&LockCounter::new(), 4, &sizes));
    }

    #[test]
    fn central_blocks_share_the_value_stream_with_next() {
        let counter = CentralCounter::new();
        let base = counter.reserve_block(0, 5);
        assert_eq!(base, 0);
        assert_eq!(counter.next(0), 5, "next continues after the block");
        assert_eq!(counter.reserve_block(1, 2), 6);
    }

    #[test]
    fn network_blocks_are_a_stream_disjoint_from_the_dispensers() {
        // reserve_block draws from the contiguous cursor, not the per-wire
        // stride dispensers — a fresh counter's first block starts at 0
        // regardless of which wire the traversal exits on.
        let net = counting_network(4, 8).expect("valid");
        let counter = NetworkCounter::new("C(4,8)", &net);
        assert_eq!(counter.reserve_block(2, 3), 0);
        assert_eq!(counter.reserve_block(1, 4), 3);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_sized_block_rejected() {
        let _ = CentralCounter::new().reserve_block(0, 0);
    }

    #[test]
    fn boxed_trait_objects_delegate_both_traits() {
        // `Box<dyn BlockReserve + Send + Sync>` is the backend shape of
        // the service registry; both trait impls must route through.
        let boxed: Box<dyn BlockReserve + Send + Sync> = Box::new(CentralCounter::new());
        assert_eq!(boxed.next(0), 0);
        let mut out = Vec::new();
        boxed.next_batch(1, 3, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(boxed.reserve_block(2, 4), 4);
        assert!(boxed.describe().contains("central"));
    }

    #[test]
    fn arc_handles_share_one_underlying_counter() {
        let shared: std::sync::Arc<dyn SharedCounter + Send + Sync> =
            std::sync::Arc::new(CentralCounter::new());
        let clone = std::sync::Arc::clone(&shared);
        let values = [shared.next(0), clone.next(1), shared.next(0)];
        assert_eq!(values, [0, 1, 2], "all handles drive the same stream");
    }

    #[test]
    fn boxed_counters_compose_with_generic_layers() {
        // The blanket impls make `Box<dyn …>` satisfy the same bounds as
        // a concrete counter, so dynamic backends tile exactly too.
        let sizes = [2usize, 5, 1, 3];
        let boxed: Box<dyn BlockReserve + Send + Sync> = Box::new(LockCounter::new());
        assert_values_are_exact_range(&collect_concurrent_blocks(&boxed, 4, &sizes));
    }

    #[test]
    fn describe_is_informative() {
        let net = counting_network(2, 2).expect("valid");
        assert_eq!(NetworkCounter::new("C(2,2)", &net).describe(), "C(2,2)");
        assert!(CentralCounter::new().describe().contains("central"));
        assert!(LockCounter::new().describe().contains("mutex"));
    }
}
