//! Shared Fetch&Increment counters.
//!
//! The whole point of a counting network is to implement a shared counter
//! whose `fetch_increment` operations do not all serialize on a single
//! memory location (Section 1.1). This module provides the network-backed
//! counter and the two centralized baselines it is compared against.

use std::sync::atomic::{AtomicU64, Ordering};

use balnet::Network;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::compiled::CompiledNetwork;

/// A shared counter handing out distinct values `0, 1, 2, ...` to
/// concurrent callers.
pub trait SharedCounter: Sync {
    /// Obtains the next counter value. `thread_id` identifies the calling
    /// process (used by network-backed counters to pick the input wire
    /// `thread_id mod w`, mirroring the paper's process-to-wire
    /// assignment).
    fn next(&self, thread_id: usize) -> u64;

    /// A short human-readable description used in benchmark output.
    fn describe(&self) -> String;
}

/// A Fetch&Increment counter backed by a counting network: tokens traverse
/// the compiled network and draw their value from the dispenser `v_i` of
/// the output wire they exit on (`v_i` starts at `i` and steps by the
/// output width `t`).
#[derive(Debug)]
pub struct NetworkCounter {
    name: String,
    network: CompiledNetwork,
    dispensers: Box<[CachePadded<AtomicU64>]>,
}

impl NetworkCounter {
    /// Builds a counter from a network topology.
    #[must_use]
    pub fn new(name: impl Into<String>, network: &Network) -> Self {
        let compiled = CompiledNetwork::new(network);
        let dispensers = (0..compiled.output_width() as u64)
            .map(|i| CachePadded::new(AtomicU64::new(i)))
            .collect();
        Self { name: name.into(), network: compiled, dispensers }
    }

    /// The input width of the underlying network.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.network.input_width()
    }

    /// The output width of the underlying network.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.network.output_width()
    }
}

impl SharedCounter for NetworkCounter {
    fn next(&self, thread_id: usize) -> u64 {
        let wire = thread_id % self.network.input_width();
        let out = self.network.traverse(wire);
        let t = self.network.output_width() as u64;
        self.dispensers[out].fetch_add(t, Ordering::Relaxed)
    }

    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// The centralized baseline: a single atomic word everybody `fetch_add`s.
/// Minimal latency, maximal memory contention.
#[derive(Debug, Default)]
pub struct CentralCounter {
    value: CachePadded<AtomicU64>,
}

impl CentralCounter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for CentralCounter {
    fn next(&self, _thread_id: usize) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed)
    }

    fn describe(&self) -> String {
        "central fetch_add".into()
    }
}

/// A mutex-protected counter — the naive lock-based implementation.
#[derive(Debug, Default)]
pub struct LockCounter {
    value: Mutex<u64>,
}

impl LockCounter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for LockCounter {
    fn next(&self, _thread_id: usize) -> u64 {
        let mut guard = self.value.lock();
        let v = *guard;
        *guard += 1;
        v
    }

    fn describe(&self) -> String {
        "mutex counter".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting::counting_network;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    fn collect_concurrent_values<C: SharedCounter>(
        counter: &C,
        threads: usize,
        per_thread: usize,
    ) -> Vec<u64> {
        let all = StdMutex::new(Vec::with_capacity(threads * per_thread));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        local.push(counter.next(tid));
                    }
                    all.lock().expect("poisoned").extend(local);
                });
            }
        });
        all.into_inner().expect("poisoned")
    }

    fn assert_values_are_exact_range(values: &[u64]) {
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicate values handed out");
        assert_eq!(*values.iter().max().expect("non-empty"), m - 1, "values must be 0..m-1");
    }

    #[test]
    fn network_counter_hands_out_unique_values_sequentially() {
        let net = counting_network(4, 8).expect("valid");
        let counter = NetworkCounter::new("C(4,8)", &net);
        let values: Vec<u64> = (0..100).map(|i| counter.next(i % 4)).collect();
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn network_counter_hands_out_unique_values_concurrently() {
        let net = counting_network(8, 24).expect("valid");
        let counter = NetworkCounter::new("C(8,24)", &net);
        let values = collect_concurrent_values(&counter, 8, 2_000);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn central_counter_hands_out_unique_values_concurrently() {
        let counter = CentralCounter::new();
        let values = collect_concurrent_values(&counter, 8, 2_000);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn lock_counter_hands_out_unique_values_concurrently() {
        let counter = LockCounter::new();
        let values = collect_concurrent_values(&counter, 4, 1_000);
        assert_values_are_exact_range(&values);
    }

    #[test]
    fn describe_is_informative() {
        let net = counting_network(2, 2).expect("valid");
        assert_eq!(NetworkCounter::new("C(2,2)", &net).describe(), "C(2,2)");
        assert!(CentralCounter::new().describe().contains("central"));
        assert!(LockCounter::new().describe().contains("mutex"));
    }
}
