//! Elimination/combining layer: gap-free batched hand-outs for **mixed**
//! batch sizes.
//!
//! The combining fast path ([`SharedCounter::next_batch`]) reserves a
//! stride of `k` values in one traversal, but its exact-range guarantee
//! needs every operation to use the same `k` and the operation count to
//! divide the output width — the counting property balances *traversals*
//! across output wires, not *values*, so mixed batch sizes leave gaps.
//! This module removes the restriction with the idea behind elimination
//! and combining trees (cf. the diffracting tree's prisms in
//! [`crate::diffracting`]): colliding operations can be **merged and
//! split without touching the shared structure**.
//!
//! [`EliminationCounter`] wraps any [`BlockReserve`] counter with a small
//! arena of exchanger slots. A `next_batch(k)` caller publishes its
//! request size in a slot; a second caller arriving at the same slot
//! *captures* the offer, performs **one** combined reservation for the
//! summed sizes against the underlying counter (one network traversal for
//! the sum), and deposits the partner's share back in the slot. The
//! combined reservation is a contiguous block, so splitting it is
//! trivially gap-free: the waiter takes the first `k_w` values, the
//! combiner the rest. A caller that finds no partner within its wait
//! bound retracts the offer and falls back to a solo reservation on the
//! underlying counter.
//!
//! Because every reservation — merged or solo — is an exactly-sized
//! contiguous [`BlockReserve::reserve_block`] block, the union of all
//! values handed out is the exact range `0..m` at every quiescent point,
//! for **any** mix of batch sizes and **any** operation count. Uniqueness
//! and gap-freedom need no divisibility precondition anymore.
//!
//! The slot protocol is a single atomic word per slot (state tag in the
//! low bits, payload above), cycling `EMPTY → OFFER(k) → CLAIMED →
//! FILLED(base) → EMPTY`, in the style of the prism exchanger. A waiter
//! whose offer is captured right as its wait bound expires is *obligated*:
//! its partner is already reserving on its behalf, so it waits for the
//! deposit (bounded by the partner's single reservation, exactly like the
//! prism's `CAPTURED` state).
//!
//! # Waiting strategies
//!
//! *How* the publisher of an offer waits for a partner is pluggable — a
//! [`WaitStrategy`] chosen per arena (see [`crate::waiting`] for the full
//! trade-off discussion):
//!
//! * [`WaitStrategy::Spin`] busy-waits only — right when every thread
//!   owns a core and partners genuinely run in parallel;
//! * [`WaitStrategy::SpinYield`] (the default) adds one amortized
//!   `yield_now` and a second spin burst — a best-effort hedge that the
//!   scheduler may decline, so on an oversubscribed box most offers still
//!   expire unclaimed;
//! * [`WaitStrategy::Park`] sleeps on a `parking_lot`-backed
//!   [`crate::waiting::ParkTable`] seat keyed by the arena slot, and the
//!   claimer wakes the sleeper right after depositing `FILLED(base)` —
//!   the robust choice when runnable threads outnumber cpus, because the
//!   publisher *surrenders* its core to the potential partner instead of
//!   hoping the scheduler hands it over.
//!
//! Offering is **adaptive** regardless of strategy: successful merges
//! refund offering credit while futile timeouts drain it (parked
//! timeouts drain faster — they cost a sleep, not just a spin burst), so
//! a workload whose collisions land keeps the arena hot, and one where
//! they cannot quiets down to near-solo fast-path cost, with a periodic
//! retry to re-detect contention.
//!
//! # Multi-slot probing
//!
//! Each operation owns a *home* slot (a Fibonacci hash of its thread id)
//! and probes a window of up to [`EliminationConfig::probe`] adjacent
//! slots: the capture scan claims the first published offer it finds, and
//! a publisher whose home slot is busy spills its offer into the next
//! empty slot of the window. The window width is driven by the same
//! merge-credit score that gates offering — while credit is high
//! (collisions land in home slots) the window stays at 1 and the fast
//! path costs a single load; as futile timeouts drain the credit the
//! window widens toward the configured maximum, trading a few extra loads
//! for a better chance of meeting a partner parked one slot over.
//!
//! The arena is sized in slots: pairwise collisions serve two threads per
//! slot, so `threads / 2` slots saturate a steady workload; the default
//! of [`DEFAULT_SLOTS`] suits the 8-thread torture configurations used
//! throughout this repository. `counting-sim::elimination` models the
//! same protocol deterministically — including parked waiters, as offers
//! that skip rounds instead of losing patience — so measured collision
//! rates can be compared against schedule-controlled predictions.

use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crossbeam::utils::CachePadded;

use crate::counter::{BlockReserve, SharedCounter};
// The model-checking seam: real std atomics unless the `model` feature is
// on, in which case every operation is a scheduling point of the
// exhaustive interleaving explorer (see crate::sync).
use crate::sync::{AtomicI64, AtomicU64};
use crate::waiting::{ParkTable, WaitStrategy};

/// Default number of exchanger slots in the arena.
pub const DEFAULT_SLOTS: usize = 4;
/// Default spin bound while waiting for a collision partner (the bound of
/// one spin burst; what follows a fruitless burst is the
/// [`WaitStrategy`]'s business). Kept small: a timed-out offer must cost
/// only short bursts on top of the solo reservation, keeping the layer at
/// parity with the raw fast path when no partner ever shows up.
pub const DEFAULT_SPIN: usize = 16;
/// Default maximum probe window: how many adjacent slots an operation is
/// willing to scan for a partner (and to spill its offer into) once the
/// merge-credit score says home-slot collisions are not landing.
pub const DEFAULT_PROBE: usize = 2;
/// Default time a [`WaitStrategy::Park`] offer sleeps before retracting.
/// Sized to cover a few scheduler timeslices on an oversubscribed box —
/// the partner must get scheduled *and* reach the arena within this
/// window for the rendezvous to land.
pub const DEFAULT_PARK_TIMEOUT: Duration = Duration::from_millis(3);

const TAG_MASK: u64 = 0b11;
const EMPTY: u64 = 0b00;
const OFFER: u64 = 0b01;
const CLAIMED: u64 = 0b10;
const FILLED: u64 = 0b11;

/// Packs a payload (an offer's size or a fill's base) with a state tag.
fn pack(payload: u64, tag: u64) -> u64 {
    assert!(payload >> 62 == 0, "arena payload exceeds 62 bits");
    (payload << 2) | tag
}

/// Geometry and waiting policy of one elimination arena, consumed by
/// [`EliminationCounter::with_config`].
///
/// The `..Default::default()` idiom keeps call sites readable:
///
/// ```
/// use counting_runtime::{EliminationConfig, WaitStrategy};
///
/// let config = EliminationConfig { strategy: WaitStrategy::Park, ..EliminationConfig::default() };
/// assert_eq!(config.slots, counting_runtime::elimination::DEFAULT_SLOTS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EliminationConfig {
    /// Number of exchanger slots ([`DEFAULT_SLOTS`]; must be `> 0`).
    pub slots: usize,
    /// Iterations of one partner-wait spin burst ([`DEFAULT_SPIN`]; `0`
    /// disables offering entirely, so every operation either captures an
    /// already-published offer or reserves solo).
    pub spin: usize,
    /// How a published offer waits for its partner (default
    /// [`WaitStrategy::SpinYield`]).
    pub strategy: WaitStrategy,
    /// Maximum probe window in slots ([`DEFAULT_PROBE`]; must be `> 0`,
    /// values beyond `slots` are clamped). The *effective* window adapts
    /// between `1` and this bound with the merge-credit score (see the
    /// module docs).
    pub probe: usize,
    /// How long a [`WaitStrategy::Park`] offer sleeps before retracting
    /// ([`DEFAULT_PARK_TIMEOUT`]; ignored by the spinning strategies).
    pub park_timeout: Duration,
}

impl Default for EliminationConfig {
    fn default() -> Self {
        Self {
            slots: DEFAULT_SLOTS,
            spin: DEFAULT_SPIN,
            strategy: WaitStrategy::default(),
            probe: DEFAULT_PROBE,
            park_timeout: DEFAULT_PARK_TIMEOUT,
        }
    }
}

/// An elimination/combining layer in front of a [`BlockReserve`] counter.
///
/// Implements [`SharedCounter`] (and [`BlockReserve`], so layers compose):
/// every operation — `next`, `next_batch` with *any* `k` — routes through
/// the arena and ends in a contiguous block reservation, merged with a
/// partner's when a collision succeeds. See the module docs for the
/// protocol, the waiting strategies and the guarantee.
///
/// The layer takes ownership of the counter it wraps: on network-backed
/// counters the block cursor is a value stream disjoint from the stride
/// dispensers, and exclusive routing is what keeps the hand-outs
/// gap-free (see [`BlockReserve`]).
#[derive(Debug)]
pub struct EliminationCounter<C: BlockReserve> {
    inner: C,
    slots: Box<[CachePadded<AtomicU64>]>,
    config: EliminationConfig,
    /// Parking seats for [`WaitStrategy::Park`], one per slot (allocated
    /// unconditionally — a seat is two pointer-sized primitives — so the
    /// strategy never changes the arena's shape).
    parking: ParkTable,
    collisions: AtomicU64,
    fallbacks: AtomicU64,
    /// Counts first-burst timeouts across all threads — a statistic only.
    /// The [`WaitStrategy::SpinYield`] yield *cadence* is per-waiter
    /// ([`YIELD_TICKS`]): when it was derived from this shared counter,
    /// the ticks of other threads could keep one thread permanently off
    /// the [`YIELD_PERIOD`] boundary and starve its yields.
    timeout_ticks: CachePadded<AtomicU64>,
    /// Adaptive offering score: merges replenish it, futile timeouts
    /// drain it; offers are only published while it is positive (see
    /// [`Self::should_offer`]) and the probe window widens as it drains
    /// (see [`Self::probe_window`]).
    score: CachePadded<AtomicI64>,
}

/// One in this many timed-out [`WaitStrategy::SpinYield`] offers yields
/// the core before retracting. Yielding is what lets a partner run at all
/// when threads outnumber cores, but it is a syscall (~0.5 µs even when
/// the scheduler declines), so it is amortized over several offers
/// instead of paid on every one.
const YIELD_PERIOD: u64 = 8;

thread_local! {
    /// Per-waiter [`WaitStrategy::SpinYield`] timeout count, driving the
    /// amortized-yield cadence. Thread-local on purpose: every waiter
    /// yields on exactly every [`YIELD_PERIOD`]-th of *its own* timeouts.
    /// (Shared across arenas on one thread — the cadence is a fairness
    /// guarantee per thread, not an arena statistic.)
    static YIELD_TICKS: Cell<u64> = const { Cell::new(0) };
}

/// Initial offering credit: a fresh arena publishes offers for at least
/// this many futile spin timeouts before going quiet.
const INITIAL_SCORE: i64 = 256;

/// Each successful merge refunds this much offering credit to each
/// partner, so a workload where collisions land keeps the arena hot.
const MERGE_BONUS: i64 = 32;

/// How much offering credit one futile *parked* timeout drains. A parked
/// miss costs a whole [`EliminationConfig::park_timeout`] sleep where a
/// spinning miss costs a burst of loads, so the arena must conclude much
/// sooner that nobody is coming.
const PARK_TIMEOUT_PENALTY: i64 = 16;

/// With the score drained, one in this many solo operations still
/// publishes an offer, so a quiet arena re-detects partner populations
/// (e.g. after a burst arrives or the scheduler starts cooperating).
const OFFER_RETRY_PERIOD: u64 = 64;

impl<C: BlockReserve> EliminationCounter<C> {
    /// Wraps `inner` with the default arena ([`EliminationConfig`]).
    #[must_use]
    pub fn new(inner: C) -> Self {
        Self::with_config(inner, EliminationConfig::default())
    }

    /// Wraps `inner` with `slots` exchanger slots and a partner-wait spin
    /// bound of `spin` iterations per burst, keeping the default
    /// [`WaitStrategy::SpinYield`] waiting and probe window (equivalent
    /// to [`Self::with_config`] with only those two fields changed).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn with_arena(inner: C, slots: usize, spin: usize) -> Self {
        Self::with_config(inner, EliminationConfig { slots, spin, ..EliminationConfig::default() })
    }

    /// Wraps `inner` with a fully specified arena.
    ///
    /// # Panics
    ///
    /// Panics if `config.slots` or `config.probe` is zero.
    #[must_use]
    pub fn with_config(inner: C, config: EliminationConfig) -> Self {
        assert!(config.slots > 0, "the arena needs at least one slot");
        assert!(config.probe > 0, "the probe window needs at least one slot");
        Self {
            inner,
            slots: (0..config.slots).map(|_| CachePadded::new(AtomicU64::new(EMPTY))).collect(),
            parking: ParkTable::new(config.slots),
            config,
            collisions: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            timeout_ticks: CachePadded::new(AtomicU64::new(0)),
            score: CachePadded::new(AtomicI64::new(INITIAL_SCORE)),
        }
    }

    /// The wrapped counter. Do **not** call `next`/`next_batch` on a
    /// network-backed inner counter while the layer is in use — stride
    /// dispensers and the block cursor are disjoint value streams.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the layer, returning the underlying counter.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The arena's geometry and waiting policy.
    #[must_use]
    pub fn config(&self) -> EliminationConfig {
        self.config
    }

    /// The number of exchanger slots in the arena.
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.slots.len()
    }

    /// The waiting strategy published offers use.
    #[must_use]
    pub fn strategy(&self) -> WaitStrategy {
        self.config.strategy
    }

    /// Operations that merged with a partner (both sides counted, so the
    /// number of combined reservations is `collisions() / 2`).
    #[must_use]
    pub fn collisions(&self) -> u64 {
        // Relaxed: reporting-only read of a monotone statistic.
        self.collisions.load(Ordering::Relaxed)
    }

    /// Operations that reserved solo — no partner within the wait bound,
    /// a busy slot, or a lost capture race.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        // Relaxed: reporting-only read of a monotone statistic.
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// The index of a thread's home slot, spread by a Fibonacci hash so
    /// consecutive thread ids land on distinct slots. Probing starts here
    /// and walks the adjacent slots (see [`Self::probe_window`]).
    fn home_slot(&self, thread_id: usize) -> usize {
        thread_id.wrapping_mul(0x9E37_79B9) % self.slots.len()
    }

    /// The effective probe window, in slots. Driven by the merge-credit
    /// score: while credit is high, collisions are landing in home slots
    /// and the window stays at 1 (the fast path costs one load); as
    /// futile timeouts drain the credit the window widens — half the
    /// configured maximum while some credit remains, the full maximum
    /// once it is gone — to look for partners parked a slot over.
    fn probe_window(&self) -> usize {
        let limit = self.config.probe.min(self.slots.len());
        if limit <= 1 {
            return limit;
        }
        // Acquire: this load feeds a control decision (how many slots the
        // capture scan visits), so it must observe the credits published
        // by other threads' merges, not an arbitrarily stale value.
        let score = self.score.load(Ordering::Acquire);
        if score > INITIAL_SCORE / 2 {
            1
        } else if score > 0 {
            limit.div_ceil(2)
        } else {
            limit
        }
    }

    /// Whether an operation finding an empty slot should publish an
    /// offer. Offering costs a CAS pair and a bounded wait, which only
    /// pays off when partners actually arrive — the score tracks that
    /// (merges refund credit, futile timeouts drain it), and a drained
    /// arena still retries periodically to notice new contention.
    fn should_offer(&self) -> bool {
        // Acquire on both loads: they feed a control decision (whether to
        // publish an offer at all), so the credit refunded by a partner's
        // merge and the fallback count driving the periodic retry must
        // both be observed promptly.
        self.score.load(Ordering::Acquire) > 0
            || self.fallbacks.load(Ordering::Acquire).is_multiple_of(OFFER_RETRY_PERIOD)
    }

    /// Credits one side of a successful merge.
    fn credit_merge(&self) {
        // Relaxed: monotone statistic, never read for a control decision.
        self.collisions.fetch_add(1, Ordering::Relaxed);
        // AcqRel: the refunded credit gates other threads' offer/probe
        // decisions (should_offer, probe_window), so it must publish.
        self.score.fetch_add(MERGE_BONUS, Ordering::AcqRel);
    }

    /// Drains offering credit after a futile timeout, floored so a long
    /// cold phase cannot dig a hole that takes hundreds of merges to
    /// climb out of — re-detection stays O(1).
    fn drain_score(&self, penalty: i64) {
        // AcqRel/Release: the drained credit gates other threads'
        // offer/probe decisions, so it must publish (see credit_merge).
        if self.score.fetch_sub(penalty, Ordering::AcqRel) <= -INITIAL_SCORE {
            self.score.store(-INITIAL_SCORE, Ordering::Release);
        }
    }

    /// Consumes a `FILLED` word: takes the deposited base and recycles the
    /// slot.
    fn take_fill(&self, slot: &AtomicU64, word: u64) -> u64 {
        debug_assert_eq!(word & TAG_MASK, FILLED);
        slot.store(EMPTY, Ordering::Release);
        self.credit_merge();
        word >> 2
    }

    /// Tries to capture the offer observed in slot `idx` and combine with
    /// it: one reservation for the sum, the waiter's share deposited back
    /// (waking its parked publisher if this arena parks), ours returned.
    fn try_capture(&self, idx: usize, observed: u64, thread_id: usize, k: usize) -> Option<u64> {
        let slot = &self.slots[idx];
        if crate::sync::mutation_enabled("arena-skip-claimed") {
            // Seeded model mutation (never active outside an exploration):
            // deposit without first moving the slot through CLAIMED. Two
            // capturers can then both see the same OFFER, both reserve a
            // combined block, and both deposit — one waiter share is lost
            // and the value stream gaps. The model suite asserts the
            // checker catches this.
            let partner_k = (observed >> 2) as usize;
            let base = self.inner.reserve_block(thread_id, partner_k + k);
            slot.store(pack(base, FILLED), Ordering::Release);
            self.credit_merge();
            return Some(base + partner_k as u64);
        }
        slot.compare_exchange(observed, CLAIMED, Ordering::AcqRel, Ordering::Acquire).ok()?;
        let partner_k = (observed >> 2) as usize;
        // One reservation for the sum; the waiter gets the first
        // sub-block (it arrived first), we take the rest.
        let base = self.inner.reserve_block(thread_id, partner_k + k);
        slot.store(pack(base, FILLED), Ordering::Release);
        if self.config.strategy == WaitStrategy::Park {
            // The deposit is observable (Release store above), so the
            // seat's lock/notify pair cannot let the sleeper miss it.
            self.parking.unpark(idx);
        }
        self.credit_merge();
        Some(base + partner_k as u64)
    }

    /// One bounded spin burst over slot `idx`; returns the fill if the
    /// partner deposited during the burst.
    fn spin_burst(&self, idx: usize) -> Option<u64> {
        let slot = &self.slots[idx];
        for _ in 0..self.config.spin {
            let word = slot.load(Ordering::Acquire);
            if word & TAG_MASK == FILLED {
                return Some(self.take_fill(slot, word));
            }
            std::hint::spin_loop();
        }
        None
    }

    /// Waits for a partner to fill the offer we published in slot `idx`,
    /// according to the arena's [`WaitStrategy`]. Returns the merged base
    /// on success and `None` once the offer has been retracted (the
    /// caller then reserves solo). An offer captured concurrently with
    /// its timeout is *obligated* and waits for the deposit.
    fn wait_for_fill(&self, idx: usize, offer: u64) -> Option<u64> {
        let slot = &self.slots[idx];
        // First burst — common to all strategies: catches partners that
        // arrive in parallel on another core within nanoseconds.
        if let Some(base) = self.spin_burst(idx) {
            return Some(base);
        }
        match self.config.strategy {
            WaitStrategy::Spin => self.drain_score(1),
            WaitStrategy::SpinYield => {
                self.drain_score(1);
                // Relaxed: aggregate statistic only — the yield decision
                // below deliberately does NOT read it (see YIELD_TICKS).
                self.timeout_ticks.fetch_add(1, Ordering::Relaxed);
                // A fraction of timeouts hands the core to a potential
                // partner (spinning alone can never rendezvous when
                // threads outnumber cores) and gives the returned-from-
                // yield slice one more burst. The cadence is per-waiter:
                // counting timeouts in the shared counter let other
                // threads' ticks keep one thread permanently off the
                // period boundary and starve its yields.
                let tick = YIELD_TICKS.with(|t| {
                    let tick = t.get();
                    t.set(tick.wrapping_add(1));
                    tick
                });
                if tick.is_multiple_of(YIELD_PERIOD) {
                    crate::sync::model_yield();
                    if let Some(base) = self.spin_burst(idx) {
                        return Some(base);
                    }
                }
            }
            WaitStrategy::Park => {
                // Sleep until the claimer's unpark (or the timeout). The
                // park *is* the rendezvous mechanism here: the surrendered
                // core is exactly what the partner needs to reach us.
                let filled = || slot.load(Ordering::Acquire) & TAG_MASK == FILLED;
                if self.parking.park_until(idx, self.config.park_timeout, filled) {
                    let word = slot.load(Ordering::Acquire);
                    return Some(self.take_fill(slot, word));
                }
                // Only a *futile* park pays the heavy penalty — a claimed
                // one was the strategy working as intended (and earns the
                // merge bonus in take_fill above).
                self.drain_score(PARK_TIMEOUT_PENALTY);
            }
        }
        // Timed out: retract the offer — unless a partner claimed it
        // concurrently, in which case the combined reservation is already
        // being made on our behalf and we must take the deposit (cf. the
        // prism's CAPTURED state).
        if slot.compare_exchange(offer, EMPTY, Ordering::AcqRel, Ordering::Acquire).is_err() {
            return Some(self.await_obligated_fill(idx));
        }
        None
    }

    /// Waits out the obligated state: our offer was captured, the partner
    /// is mid-reservation, and the deposit is guaranteed to arrive within
    /// its one `reserve_block` call.
    fn await_obligated_fill(&self, idx: usize) -> u64 {
        let slot = &self.slots[idx];
        if self.config.strategy == WaitStrategy::Park {
            let filled = || slot.load(Ordering::Acquire) & TAG_MASK == FILLED;
            loop {
                let word = slot.load(Ordering::Acquire);
                if word & TAG_MASK == FILLED {
                    return self.take_fill(slot, word);
                }
                // The seat's check-under-lock makes a missed wakeup
                // impossible; the timeout only re-arms the loop if the
                // partner is descheduled mid-reservation for longer than
                // one park interval.
                let _ = self.parking.park_until(idx, self.config.park_timeout, filled);
            }
        }
        let mut spins = 0u32;
        loop {
            let word = slot.load(Ordering::Acquire);
            if word & TAG_MASK == FILLED {
                return self.take_fill(slot, word);
            }
            if crate::sync::in_model() {
                // Under the interleaving model, every probe must be a
                // *voluntary* yield so the DFS hands the schedule to the
                // partner mid-reservation instead of spinning to the step
                // bound.
                crate::sync::model_yield();
                continue;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                // The partner holds no lock, but it may be preempted
                // mid-reservation; yield rather than burn the core.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// The arena protocol: returns the base of this operation's contiguous
    /// block of `k` values, merged with a partner's when a collision
    /// succeeds.
    fn reserve(&self, thread_id: usize, k: usize) -> u64 {
        debug_assert!(k > 0);
        let home = self.home_slot(thread_id);
        let window = self.probe_window();

        // Capture scan: claim the first published offer in the window.
        for i in 0..window {
            let idx = (home + i) % self.slots.len();
            let observed = self.slots[idx].load(Ordering::Acquire);
            if observed & TAG_MASK == OFFER {
                if let Some(base) = self.try_capture(idx, observed, thread_id, k) {
                    return base;
                }
                // Lost the capture race — keep scanning; the rest of the
                // window may hold another offer.
            }
        }

        // Publish our own offer in the first empty slot of the window and
        // wait for a capturer.
        if self.config.spin > 0 && self.should_offer() {
            let offer = pack(k as u64, OFFER);
            for i in 0..window {
                let idx = (home + i) % self.slots.len();
                let slot = &self.slots[idx];
                // Relaxed pre-check: purely an optimization to skip the
                // CAS on busy slots — the CAS below is what decides, and
                // a stale read only costs one wasted attempt.
                if slot.load(Ordering::Relaxed) == EMPTY
                    && slot
                        .compare_exchange(EMPTY, offer, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    if let Some(base) = self.wait_for_fill(idx, offer) {
                        return base;
                    }
                    // Retraction succeeded — reserve solo below.
                    break;
                }
                // Busy slot or lost publish race — try the next one.
            }
        }

        // Busy window, lost race, quiet arena, or timeout: one solo
        // reservation against the underlying counter keeps the layer
        // obstruction-free.
        //
        // AcqRel: unlike the pure stats, this count feeds a control
        // decision — should_offer's periodic re-detection divides it by
        // OFFER_RETRY_PERIOD — so it must publish.
        self.fallbacks.fetch_add(1, Ordering::AcqRel);
        self.inner.reserve_block(thread_id, k)
    }

    /// The raw slot words, for the model suite's quiescence checks
    /// (`0` is the `EMPTY` encoding).
    #[cfg(feature = "model")]
    #[must_use]
    pub fn arena_slot_words(&self) -> Vec<u64> {
        self.slots.iter().map(|slot| slot.load(Ordering::Acquire)).collect()
    }
}

impl<C: BlockReserve> SharedCounter for EliminationCounter<C> {
    fn next(&self, thread_id: usize) -> u64 {
        self.reserve(thread_id, 1)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        if k == 0 {
            return;
        }
        // Unlike stride reservations, the batch is contiguous:
        // `base..base + k`.
        let base = self.reserve(thread_id, k);
        out.extend(base..base + k as u64);
    }

    fn describe(&self) -> String {
        format!(
            "{} + elim[{}:{}]",
            self.inner.describe(),
            self.slots.len(),
            self.config.strategy.label()
        )
    }
}

impl<C: BlockReserve> BlockReserve for EliminationCounter<C> {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        self.reserve(thread_id, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, LockCounter, NetworkCounter};
    use crate::diffracting::DiffractingCounter;
    use counting::counting_network;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::time::Instant;

    fn assert_exact_range(values: &[u64]) {
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicate values handed out");
        assert!(values.iter().all(|&v| v < m), "values must tile 0..{m}");
    }

    /// A Park-strategy arena with the given geometry and timeout.
    fn park_counter<C: BlockReserve>(
        inner: C,
        slots: usize,
        spin: usize,
        park_timeout: Duration,
    ) -> EliminationCounter<C> {
        EliminationCounter::with_config(
            inner,
            EliminationConfig {
                slots,
                spin,
                strategy: WaitStrategy::Park,
                park_timeout,
                ..EliminationConfig::default()
            },
        )
    }

    // --- deterministic collide / merge / split --------------------------

    #[test]
    fn parked_waiter_and_capturer_split_one_contiguous_block() {
        // A waiter parks its offer of 3 (a huge spin bound stands in for a
        // preempted thread); a second caller captures it with a request of
        // 5. One combined reservation of 8 must be split gap-free: the
        // waiter takes 0..3, the capturer 3..8, and the inner cursor moved
        // exactly once.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 2_000_000_000);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut out = Vec::new();
                counter.next_batch(0, 3, &mut out);
                out
            });
            while counter.slots[0].load(Ordering::Acquire) & TAG_MASK != OFFER {
                std::thread::yield_now();
            }
            let mut capturer = Vec::new();
            counter.next_batch(1, 5, &mut capturer);
            let waiter = waiter.join().expect("waiter panicked");
            assert_eq!(waiter, vec![0, 1, 2], "the waiter takes the first sub-block");
            assert_eq!(capturer, vec![3, 4, 5, 6, 7], "the capturer takes the rest");
        });
        assert_eq!(counter.collisions(), 2, "both sides count the merge");
        assert_eq!(counter.fallbacks(), 0);
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "the slot was recycled");
        assert_eq!(counter.inner().next(0), 8, "exactly one combined reservation of 8");
    }

    #[test]
    fn capturing_a_planted_offer_merges_and_deposits_the_first_sub_block() {
        // Drive the claim path deterministically: plant an OFFER word of
        // size 4 as if a waiter had parked it, then call with k = 2. The
        // call must capture, reserve 6 in one block, deposit base 0 for
        // the "waiter" and keep 4..6 for itself.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 64);
        counter.slots[0].store(pack(4, OFFER), Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 2, &mut out);
        assert_eq!(out, vec![4, 5], "the capturer's share starts after the waiter's 4");
        let word = counter.slots[0].load(Ordering::Acquire);
        assert_eq!(word & TAG_MASK, FILLED, "the waiter's share was deposited");
        assert_eq!(word >> 2, 0, "the deposited base is the block start");
        assert_eq!(counter.collisions(), 1, "only the capturer has counted so far");
        assert_eq!(counter.inner().next(0), 6, "one reservation of 4 + 2");
    }

    #[test]
    fn busy_slot_falls_back_to_a_solo_reservation() {
        // A CLAIMED slot belongs to a pair mid-merge: a third caller must
        // not interfere — it reserves solo and leaves the word alone.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 64);
        counter.slots[0].store(CLAIMED, Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 3, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(counter.fallbacks(), 1);
        assert_eq!(counter.collisions(), 0);
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), CLAIMED, "the slot was not touched");
    }

    // --- timeout fallback ----------------------------------------------

    #[test]
    fn no_partner_within_the_wait_bound_retracts_and_reserves_solo() {
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 3);
        let mut values = Vec::new();
        for op in 0..10 {
            counter.next_batch(op, 2, &mut values);
        }
        assert_exact_range(&values);
        assert_eq!(counter.collisions(), 0, "no partner, no merge");
        assert_eq!(counter.fallbacks(), 10, "every operation fell back");
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "offers were retracted");
    }

    #[test]
    fn zero_spin_never_offers_but_still_captures() {
        // spin = 0: the caller will not wait, but a published offer from
        // someone else is still capturable. With a planted offer the call
        // merges; without one it goes straight to solo.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 0);
        let mut solo = Vec::new();
        counter.next_batch(0, 2, &mut solo);
        assert_eq!(solo, vec![0, 1]);
        assert_eq!(counter.fallbacks(), 1);
        counter.slots[0].store(pack(3, OFFER), Ordering::Release);
        let mut merged = Vec::new();
        counter.next_batch(0, 1, &mut merged);
        assert_eq!(merged, vec![5], "captured the planted offer of 3 after base 2");
        assert_eq!(counter.collisions(), 1);
    }

    // --- park / unpark protocol -----------------------------------------

    #[test]
    fn parked_offer_is_woken_by_its_claimer() {
        // Park strategy with a one-minute timeout: completing at all
        // proves the waiter was *woken* by the claimer's unpark rather
        // than saved by its own timeout, and the merged split must be
        // identical to the spinning protocol's.
        let counter = park_counter(CentralCounter::new(), 1, 4, Duration::from_secs(60));
        let start = Instant::now();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut out = Vec::new();
                counter.next_batch(0, 3, &mut out);
                out
            });
            while counter.slots[0].load(Ordering::Acquire) & TAG_MASK != OFFER {
                std::thread::yield_now();
            }
            let mut capturer = Vec::new();
            counter.next_batch(1, 5, &mut capturer);
            let waiter = waiter.join().expect("waiter panicked");
            assert_eq!(waiter, vec![0, 1, 2]);
            assert_eq!(capturer, vec![3, 4, 5, 6, 7]);
        });
        assert!(start.elapsed() < Duration::from_secs(50), "the wakeup must beat the timeout");
        assert_eq!(counter.collisions(), 2);
        assert_eq!(counter.fallbacks(), 0);
        assert_eq!(
            counter.score.load(Ordering::Relaxed),
            INITIAL_SCORE + 2 * MERGE_BONUS,
            "a claimed park earns the merge bonus and pays no timeout penalty"
        );
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "the slot was recycled");
        assert_eq!(counter.inner().next(0), 8, "exactly one combined reservation");
    }

    #[test]
    fn park_timeout_retracts_the_offer_and_reserves_solo() {
        // No partner ever arrives: the parked offer must wake by timeout,
        // retract, and fall back to a solo reservation.
        let timeout = Duration::from_millis(2);
        let counter = park_counter(CentralCounter::new(), 1, 2, timeout);
        let start = Instant::now();
        let mut out = Vec::new();
        counter.next_batch(0, 2, &mut out);
        assert!(start.elapsed() >= timeout, "the operation must actually have slept");
        assert_eq!(out, vec![0, 1]);
        assert_eq!(counter.collisions(), 0);
        assert_eq!(counter.fallbacks(), 1);
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "the offer was retracted");
        assert_eq!(
            counter.score.load(Ordering::Relaxed),
            INITIAL_SCORE - PARK_TIMEOUT_PENALTY,
            "a futile park drains the heavy penalty exactly once"
        );
    }

    #[test]
    fn spurious_wakeups_while_parked_re_check_and_keep_waiting() {
        // Unparking the seat without depositing anything must not break
        // the protocol: the waiter re-checks the slot word, sees its offer
        // still pending, and parks again until the real claim arrives.
        let counter = park_counter(CentralCounter::new(), 1, 2, Duration::from_secs(60));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut out = Vec::new();
                counter.next_batch(0, 3, &mut out);
                out
            });
            while counter.slots[0].load(Ordering::Acquire) & TAG_MASK != OFFER {
                std::thread::yield_now();
            }
            for _ in 0..20 {
                counter.parking.unpark(0);
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(!waiter.is_finished(), "spurious wakeups must not complete the offer");
            let mut capturer = Vec::new();
            counter.next_batch(1, 5, &mut capturer);
            assert_eq!(waiter.join().expect("waiter panicked"), vec![0, 1, 2]);
            assert_eq!(capturer, vec![3, 4, 5, 6, 7]);
        });
        assert_eq!(counter.collisions(), 2);
        assert_eq!(counter.fallbacks(), 0);
    }

    #[test]
    fn parked_collisions_land_under_real_oversubscribed_concurrency() {
        // The whole point of Park: rendezvous must work even when all
        // threads share one core, because a sleeping publisher hands its
        // core to the partner. 8 threads hammering one small arena must
        // merge, whatever the host's cpu count.
        let counter = park_counter(CentralCounter::new(), 4, 16, DEFAULT_PARK_TIMEOUT);
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..8 {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for op in 0..1_000 {
                        counter.next_batch(tid, 1 + (op + tid) % 4, &mut local);
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        assert_exact_range(&all.into_inner().expect("not poisoned"));
        assert!(counter.collisions() > 0, "8 parked threads must merge at least sometimes");
    }

    // --- multi-slot probing ----------------------------------------------

    #[test]
    fn drained_credit_widens_the_capture_scan_to_adjacent_slots() {
        // An offer parked two slots away from the caller's home: with the
        // merge-credit score drained the probe window covers the whole
        // arena and the capture scan must find and merge with it.
        let counter = EliminationCounter::with_config(
            CentralCounter::new(),
            EliminationConfig { slots: 4, spin: 0, probe: 4, ..EliminationConfig::default() },
        );
        counter.score.store(0, Ordering::Relaxed);
        counter.slots[2].store(pack(3, OFFER), Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 2, &mut out); // home slot of thread 0 is slot 0
        assert_eq!(out, vec![3, 4], "the probed capture keeps the tail of the merged block");
        let word = counter.slots[2].load(Ordering::Acquire);
        assert_eq!(word & TAG_MASK, FILLED, "the waiter's share was deposited two slots over");
        assert_eq!(counter.collisions(), 1);
        assert_eq!(counter.fallbacks(), 0);
    }

    #[test]
    fn high_credit_keeps_the_probe_window_at_one_slot() {
        // A fresh arena (full merge credit) must *not* pay for wide scans:
        // an offer two slots away is invisible and the call goes solo.
        let counter = EliminationCounter::with_config(
            CentralCounter::new(),
            EliminationConfig { slots: 4, spin: 0, probe: 4, ..EliminationConfig::default() },
        );
        counter.slots[2].store(pack(3, OFFER), Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 2, &mut out);
        assert_eq!(out, vec![0, 1], "a narrow window reserves solo");
        assert_eq!(counter.collisions(), 0);
        assert_eq!(counter.fallbacks(), 1);
        let word = counter.slots[2].load(Ordering::Acquire);
        assert_eq!(word & TAG_MASK, OFFER, "the distant offer was never touched");
    }

    #[test]
    fn offers_spill_into_the_adjacent_slot_when_home_is_busy() {
        // Thread 0's home slot is occupied by a pair mid-merge (CLAIMED):
        // with probing, its offer lands in the next slot of the window,
        // where thread 1 (whose home *is* slot 1) captures it.
        let counter = EliminationCounter::with_config(
            CentralCounter::new(),
            EliminationConfig {
                slots: 4,
                spin: 2,
                probe: 2,
                strategy: WaitStrategy::Park,
                park_timeout: Duration::from_secs(60),
            },
        );
        counter.score.store(0, Ordering::Relaxed); // widen the window
        counter.slots[0].store(CLAIMED, Ordering::Release);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut out = Vec::new();
                counter.next_batch(0, 3, &mut out);
                out
            });
            while counter.slots[1].load(Ordering::Acquire) & TAG_MASK != OFFER {
                std::thread::yield_now();
            }
            let mut capturer = Vec::new();
            counter.next_batch(1, 5, &mut capturer);
            assert_eq!(waiter.join().expect("waiter panicked"), vec![0, 1, 2]);
            assert_eq!(capturer, vec![3, 4, 5, 6, 7]);
        });
        assert_eq!(counter.collisions(), 2, "the spilled offer still merged");
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), CLAIMED, "the busy slot was left");
    }

    #[test]
    fn probe_window_clamps_to_the_arena_size() {
        let counter = EliminationCounter::with_config(
            CentralCounter::new(),
            EliminationConfig { slots: 2, probe: 64, ..EliminationConfig::default() },
        );
        counter.score.store(-INITIAL_SCORE, Ordering::Relaxed);
        assert_eq!(counter.probe_window(), 2, "the window never exceeds the slot count");
        counter.score.store(INITIAL_SCORE, Ordering::Relaxed);
        assert_eq!(counter.probe_window(), 1, "full credit narrows to the home slot");
        counter.score.store(INITIAL_SCORE / 4, Ordering::Relaxed);
        assert_eq!(counter.probe_window(), 1, "partial credit: half of the clamped window");
    }

    // --- preemption-hostile schedules ------------------------------------

    #[test]
    fn preemption_hostile_schedule_preserves_the_exact_range() {
        // One slot, a wait bound of 1, and threads that park mid-stream
        // (sleeping stands in for preemption) so offers routinely expire
        // and retraction races with capture. Whatever mix of merge,
        // obligated wait and solo fallback results, the mixed-size values
        // must tile exactly.
        let net = counting_network(8, 8).expect("valid");
        let counter = EliminationCounter::with_arena(NetworkCounter::new("C(8,8)", &net), 1, 1);
        let threads = 8;
        let per_thread = 400;
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for op in 0..per_thread {
                        counter.next_batch(tid, 1 + (op * 7 + tid) % 5, &mut local);
                        if op % 64 == tid * 8 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        assert_exact_range(&values);
        assert_eq!(
            counter.collisions() + counter.fallbacks(),
            (threads * per_thread) as u64,
            "every operation is exactly one of merged or solo"
        );
    }

    #[test]
    fn preemption_hostile_park_schedule_preserves_the_exact_range() {
        // The Park mirror of the schedule above, in the style of the PR 2
        // prism tests: a single slot shared by 8 threads on (possibly) one
        // core, a tiny park timeout so offers expire while their
        // publishers sleep, and forced mid-stream sleeps so retraction
        // races with capture and obligated parked waits all occur.
        let counter = park_counter(CentralCounter::new(), 1, 1, Duration::from_micros(200));
        let threads = 8;
        let per_thread = 400;
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for op in 0..per_thread {
                        counter.next_batch(tid, 1 + (op * 7 + tid) % 5, &mut local);
                        if op % 64 == tid * 8 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        assert_exact_range(&values);
        assert_eq!(
            counter.collisions() + counter.fallbacks(),
            (threads * per_thread) as u64,
            "every operation is exactly one of merged or solo"
        );
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "the slot drained");
    }

    // --- the lifted restriction, on every counter -----------------------

    #[test]
    fn mixed_batches_tile_exactly_on_every_wrapped_counter() {
        // The exact mixed-size workload that breaks raw stride
        // reservations: random k per op, op count not divisible by any
        // output width. Through the layer — under every waiting strategy —
        // every counter must hand out exactly 0..m.
        type Make = fn(WaitStrategy) -> Box<dyn SharedCounter>;
        fn config(strategy: WaitStrategy) -> EliminationConfig {
            EliminationConfig { strategy, ..EliminationConfig::default() }
        }
        let make: [Make; 4] = [
            |s| {
                let net = counting_network(8, 24).expect("valid");
                Box::new(EliminationCounter::with_config(
                    NetworkCounter::new("C(8,24)", &net),
                    config(s),
                ))
            },
            |s| {
                Box::new(EliminationCounter::with_config(
                    DiffractingCounter::new(8, 4, 32),
                    config(s),
                ))
            },
            |s| Box::new(EliminationCounter::with_config(CentralCounter::new(), config(s))),
            |s| Box::new(EliminationCounter::with_config(LockCounter::new(), config(s))),
        ];
        for strategy in WaitStrategy::ALL {
            for factory in make {
                let counter = factory(strategy);
                let threads = 8;
                let batches = 101; // deliberately not a multiple of anything
                let all = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for tid in 0..threads {
                        let counter = counter.as_ref();
                        let all = &all;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            for op in 0..batches {
                                counter.next_batch(tid, 1 + (op * 13 + tid * 5) % 9, &mut local);
                            }
                            all.lock().expect("not poisoned").extend(local);
                        });
                    }
                });
                let values = all.into_inner().expect("not poisoned");
                assert_exact_range(&values);
            }
        }
    }

    #[test]
    fn collisions_happen_under_real_concurrency() {
        // The spin-then-yield wait makes rendezvous work even when all
        // threads share one core (see the module docs), so collisions
        // must show up under genuine multi-threaded load.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 4, 64);
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..8 {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for _ in 0..5_000 {
                        local.push(counter.next(tid));
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        assert_exact_range(&all.into_inner().expect("not poisoned"));
        assert!(counter.collisions() > 0, "8 threads must merge at least sometimes");
    }

    // --- plumbing --------------------------------------------------------

    #[test]
    fn next_and_zero_batches_behave() {
        let counter = EliminationCounter::new(LockCounter::new());
        let mut out = Vec::new();
        counter.next_batch(0, 0, &mut out);
        assert!(out.is_empty(), "k = 0 is a no-op");
        assert_eq!(counter.next(0), 0);
        assert_eq!(counter.reserve_block(1, 3), 1, "layers expose BlockReserve themselves");
        assert_eq!(counter.next(2), 4);
    }

    #[test]
    fn describe_names_inner_arena_and_strategy() {
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 2, 8);
        assert_eq!(counter.describe(), "central fetch_add + elim[2:spin-yield]");
        assert_eq!(counter.arena_slots(), 2);
        assert_eq!(counter.strategy(), WaitStrategy::SpinYield);
        assert_eq!(counter.config().spin, 8);
        let parked = park_counter(CentralCounter::new(), 3, 8, DEFAULT_PARK_TIMEOUT);
        assert_eq!(parked.describe(), "central fetch_add + elim[3:park]");
        assert_eq!(parked.strategy(), WaitStrategy::Park);
        let inner = parked.into_inner();
        assert_eq!(inner.describe(), "central fetch_add");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = EliminationCounter::with_arena(CentralCounter::new(), 0, 8);
    }

    #[test]
    #[should_panic(expected = "probe window needs at least one slot")]
    fn zero_probe_rejected() {
        let _ = EliminationCounter::with_config(
            CentralCounter::new(),
            EliminationConfig { probe: 0, ..EliminationConfig::default() },
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 62 bits")]
    fn oversized_payloads_are_rejected_not_corrupted() {
        let _ = pack(1 << 62, OFFER);
    }
}
