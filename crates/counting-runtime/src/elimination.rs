//! Elimination/combining layer: gap-free batched hand-outs for **mixed**
//! batch sizes.
//!
//! The combining fast path ([`SharedCounter::next_batch`]) reserves a
//! stride of `k` values in one traversal, but its exact-range guarantee
//! needs every operation to use the same `k` and the operation count to
//! divide the output width — the counting property balances *traversals*
//! across output wires, not *values*, so mixed batch sizes leave gaps.
//! This module removes the restriction with the idea behind elimination
//! and combining trees (cf. the diffracting tree's prisms in
//! [`crate::diffracting`]): colliding operations can be **merged and
//! split without touching the shared structure**.
//!
//! [`EliminationCounter`] wraps any [`BlockReserve`] counter with a small
//! arena of exchanger slots. A `next_batch(k)` caller publishes its
//! request size in a slot; a second caller arriving at the same slot
//! *captures* the offer, performs **one** combined reservation for the
//! summed sizes against the underlying counter (one network traversal for
//! the sum), and deposits the partner's share back in the slot. The
//! combined reservation is a contiguous block, so splitting it is
//! trivially gap-free: the waiter takes the first `k_w` values, the
//! combiner the rest. A caller that finds no partner within its wait
//! bound retracts the offer and falls back to a solo reservation on the
//! underlying counter.
//!
//! Because every reservation — merged or solo — is an exactly-sized
//! contiguous [`BlockReserve::reserve_block`] block, the union of all
//! values handed out is the exact range `0..m` at every quiescent point,
//! for **any** mix of batch sizes and **any** operation count. Uniqueness
//! and gap-freedom need no divisibility precondition anymore.
//!
//! The slot protocol is a single atomic word per slot (state tag in the
//! low bits, payload above), cycling `EMPTY → OFFER(k) → CLAIMED →
//! FILLED(base) → EMPTY`, in the style of the prism exchanger. A waiter
//! whose offer is captured right as its wait bound expires is *obligated*:
//! its partner is already reserving on its behalf, so it waits for the
//! deposit (bounded by the partner's single reservation, exactly like the
//! prism's `CAPTURED` state).
//!
//! Waiting is **spin-then-yield**: a short spin catches partners that
//! arrive in parallel on another core, then (on a fraction of timeouts)
//! a `yield_now` hands the core to a potential partner before one final
//! spin burst. The yield is what makes the arena effective when runnable
//! threads outnumber cores (oversubscribed boxes, 1–2 vCPU CI runners):
//! a spinning waiter owns the core, so no partner can arrive during the
//! spin — rendezvous would then only ever happen across involuntary
//! preemption, which is rare at microsecond scales. Offering is also
//! **adaptive**: successful merges refund offering credit while futile
//! timeouts drain it, so a workload whose collisions land keeps the
//! arena hot, and one where they cannot (a lone thread; a scheduler that
//! declines every yield) quiets down to near-solo fast-path cost, with a
//! periodic retry to re-detect contention.
//!
//! The arena is sized in slots: pairwise collisions serve two threads per
//! slot, so `threads / 2` slots saturate a steady workload; the default
//! of [`DEFAULT_SLOTS`] suits the 8-thread torture configurations used
//! throughout this repository. `counting-sim::elimination` models the
//! same protocol deterministically, so measured collision rates can be
//! compared against schedule-controlled predictions.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

use crate::counter::{BlockReserve, SharedCounter};

/// Default number of exchanger slots in the arena.
pub const DEFAULT_SLOTS: usize = 4;
/// Default spin bound while waiting for a collision partner (the spin is
/// followed by one yield and a second spin burst; see the module docs).
/// Kept small: when the scheduler declines the yield (one-core boxes
/// where no partner can run anyway), a timed-out offer costs only two
/// short bursts on top of the solo reservation, keeping the layer at
/// parity with the raw fast path.
pub const DEFAULT_SPIN: usize = 16;

const TAG_MASK: u64 = 0b11;
const EMPTY: u64 = 0b00;
const OFFER: u64 = 0b01;
const CLAIMED: u64 = 0b10;
const FILLED: u64 = 0b11;

/// Packs a payload (an offer's size or a fill's base) with a state tag.
fn pack(payload: u64, tag: u64) -> u64 {
    assert!(payload >> 62 == 0, "arena payload exceeds 62 bits");
    (payload << 2) | tag
}

/// An elimination/combining layer in front of a [`BlockReserve`] counter.
///
/// Implements [`SharedCounter`] (and [`BlockReserve`], so layers compose):
/// every operation — `next`, `next_batch` with *any* `k` — routes through
/// the arena and ends in a contiguous block reservation, merged with a
/// partner's when a collision succeeds. See the module docs for the
/// protocol and the guarantee.
///
/// The layer takes ownership of the counter it wraps: on network-backed
/// counters the block cursor is a value stream disjoint from the stride
/// dispensers, and exclusive routing is what keeps the hand-outs
/// gap-free (see [`BlockReserve`]).
#[derive(Debug)]
pub struct EliminationCounter<C: BlockReserve> {
    inner: C,
    slots: Box<[CachePadded<AtomicU64>]>,
    spin: usize,
    collisions: AtomicU64,
    fallbacks: AtomicU64,
    /// Counts first-burst timeouts; every [`YIELD_PERIOD`]-th one yields
    /// the core (see [`Self::reserve`]).
    timeout_ticks: CachePadded<AtomicU64>,
    /// Adaptive offering score: merges replenish it, futile timeouts
    /// drain it; offers are only published while it is positive (see
    /// [`Self::should_offer`]).
    score: CachePadded<AtomicI64>,
}

/// One in this many timed-out offers yields the core before retracting.
/// Yielding is what lets a partner run at all when threads outnumber
/// cores, but it is a syscall (~0.5 µs even when the scheduler declines),
/// so it is amortized over several offers instead of paid on every one.
const YIELD_PERIOD: u64 = 8;

/// Initial offering credit: a fresh arena publishes offers for at least
/// this many futile timeouts before going quiet.
const INITIAL_SCORE: i64 = 256;

/// Each successful merge refunds this much offering credit to each
/// partner, so a workload where collisions land keeps the arena hot.
const MERGE_BONUS: i64 = 32;

/// With the score drained, one in this many solo operations still
/// publishes an offer, so a quiet arena re-detects partner populations
/// (e.g. after a burst arrives or the scheduler starts cooperating).
const OFFER_RETRY_PERIOD: u64 = 64;

impl<C: BlockReserve> EliminationCounter<C> {
    /// Wraps `inner` with an arena of [`DEFAULT_SLOTS`] slots and a spin
    /// bound of [`DEFAULT_SPIN`].
    #[must_use]
    pub fn new(inner: C) -> Self {
        Self::with_arena(inner, DEFAULT_SLOTS, DEFAULT_SPIN)
    }

    /// Wraps `inner` with `slots` exchanger slots and a partner-wait spin
    /// bound of `spin` iterations per burst (two bursts separated by one
    /// yield; `spin` of `0` disables offering entirely, so every
    /// operation either captures an already-published offer or reserves
    /// solo).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn with_arena(inner: C, slots: usize, spin: usize) -> Self {
        assert!(slots > 0, "the arena needs at least one slot");
        Self {
            inner,
            slots: (0..slots).map(|_| CachePadded::new(AtomicU64::new(EMPTY))).collect(),
            spin,
            collisions: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            timeout_ticks: CachePadded::new(AtomicU64::new(0)),
            score: CachePadded::new(AtomicI64::new(INITIAL_SCORE)),
        }
    }

    /// The wrapped counter. Do **not** call `next`/`next_batch` on a
    /// network-backed inner counter while the layer is in use — stride
    /// dispensers and the block cursor are disjoint value streams.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the layer, returning the underlying counter.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The number of exchanger slots in the arena.
    #[must_use]
    pub fn arena_slots(&self) -> usize {
        self.slots.len()
    }

    /// Operations that merged with a partner (both sides counted, so the
    /// number of combined reservations is `collisions() / 2`).
    #[must_use]
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Operations that reserved solo — no partner within the wait bound,
    /// a busy slot, or a lost capture race.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// The arena slot a thread probes, spread by a Fibonacci hash so
    /// consecutive thread ids land on distinct slots.
    fn slot_of(&self, thread_id: usize) -> &AtomicU64 {
        &self.slots[thread_id.wrapping_mul(0x9E37_79B9) % self.slots.len()]
    }

    /// Whether an operation finding an empty slot should publish an
    /// offer. Offering costs a CAS pair and a bounded wait, which only
    /// pays off when partners actually arrive — the score tracks that
    /// (merges refund credit, futile timeouts drain it), and a drained
    /// arena still retries periodically to notice new contention.
    fn should_offer(&self) -> bool {
        self.score.load(Ordering::Relaxed) > 0
            || self.fallbacks.load(Ordering::Relaxed).is_multiple_of(OFFER_RETRY_PERIOD)
    }

    /// Credits one side of a successful merge.
    fn credit_merge(&self) {
        self.collisions.fetch_add(1, Ordering::Relaxed);
        self.score.fetch_add(MERGE_BONUS, Ordering::Relaxed);
    }

    /// Consumes a `FILLED` word: takes the deposited base and recycles the
    /// slot.
    fn take_fill(&self, slot: &AtomicU64, word: u64) -> u64 {
        debug_assert_eq!(word & TAG_MASK, FILLED);
        slot.store(EMPTY, Ordering::Release);
        self.credit_merge();
        word >> 2
    }

    /// The arena protocol: returns the base of this operation's contiguous
    /// block of `k` values, merged with a partner's when a collision
    /// succeeds.
    fn reserve(&self, thread_id: usize, k: usize) -> u64 {
        debug_assert!(k > 0);
        let slot = self.slot_of(thread_id);

        let observed = slot.load(Ordering::Acquire);
        if observed & TAG_MASK == OFFER {
            // A partner is waiting: try to capture its offer and combine.
            if slot.compare_exchange(observed, CLAIMED, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                let partner_k = (observed >> 2) as usize;
                // One reservation for the sum; the waiter gets the first
                // sub-block (it arrived first), we take the rest.
                let base = self.inner.reserve_block(thread_id, partner_k + k);
                slot.store(pack(base, FILLED), Ordering::Release);
                self.credit_merge();
                return base + partner_k as u64;
            }
            // Lost the capture race — reserve solo below.
        } else if observed == EMPTY && self.spin > 0 && self.should_offer() {
            // Publish our own offer and wait for a capturer: spin briefly
            // for a partner running on another core, yield the core once
            // so a partner can run at all when threads outnumber cores
            // (spinning alone can never rendezvous there — see the module
            // docs), then give the returned-from-yield slice one more
            // spin burst.
            let offer = pack(k as u64, OFFER);
            if slot.compare_exchange(EMPTY, offer, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                let mut yielded = false;
                'wait: loop {
                    for _ in 0..self.spin {
                        let word = slot.load(Ordering::Acquire);
                        if word & TAG_MASK == FILLED {
                            return self.take_fill(slot, word);
                        }
                        std::hint::spin_loop();
                    }
                    if yielded {
                        break 'wait;
                    }
                    // Drain offering credit, floored so a long cold phase
                    // cannot dig a hole that takes hundreds of merges to
                    // climb out of — re-detection stays O(1).
                    if self.score.fetch_sub(1, Ordering::Relaxed) <= -INITIAL_SCORE {
                        self.score.store(-INITIAL_SCORE, Ordering::Relaxed);
                    }
                    if !self
                        .timeout_ticks
                        .fetch_add(1, Ordering::Relaxed)
                        .is_multiple_of(YIELD_PERIOD)
                    {
                        break 'wait;
                    }
                    std::thread::yield_now();
                    yielded = true;
                }
                // Timed out: retract the offer — unless a partner claimed
                // it concurrently, in which case the combined reservation
                // is already being made on our behalf and we must take the
                // deposit (cf. the prism's CAPTURED state).
                if slot.compare_exchange(offer, EMPTY, Ordering::AcqRel, Ordering::Acquire).is_err()
                {
                    let mut spins = 0u32;
                    loop {
                        let word = slot.load(Ordering::Acquire);
                        if word & TAG_MASK == FILLED {
                            return self.take_fill(slot, word);
                        }
                        spins = spins.wrapping_add(1);
                        if spins.is_multiple_of(1024) {
                            // The partner holds no lock, but it may be
                            // preempted mid-reservation; yield rather than
                            // burn the core.
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                }
                // Retraction succeeded — reserve solo below.
            }
            // Lost the publish race — reserve solo below.
        }
        // Busy slot, lost race, or timeout: one solo reservation against
        // the underlying counter keeps the layer obstruction-free.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.inner.reserve_block(thread_id, k)
    }
}

impl<C: BlockReserve> SharedCounter for EliminationCounter<C> {
    fn next(&self, thread_id: usize) -> u64 {
        self.reserve(thread_id, 1)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        if k == 0 {
            return;
        }
        // Unlike stride reservations, the batch is contiguous:
        // `base..base + k`.
        let base = self.reserve(thread_id, k);
        out.extend(base..base + k as u64);
    }

    fn describe(&self) -> String {
        format!("{} + elim[{}]", self.inner.describe(), self.slots.len())
    }
}

impl<C: BlockReserve> BlockReserve for EliminationCounter<C> {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        self.reserve(thread_id, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, LockCounter, NetworkCounter};
    use crate::diffracting::DiffractingCounter;
    use counting::counting_network;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn assert_exact_range(values: &[u64]) {
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicate values handed out");
        assert!(values.iter().all(|&v| v < m), "values must tile 0..{m}");
    }

    // --- deterministic collide / merge / split --------------------------

    #[test]
    fn parked_waiter_and_capturer_split_one_contiguous_block() {
        // A waiter parks its offer of 3 (a huge spin bound stands in for a
        // preempted thread); a second caller captures it with a request of
        // 5. One combined reservation of 8 must be split gap-free: the
        // waiter takes 0..3, the capturer 3..8, and the inner cursor moved
        // exactly once.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 2_000_000_000);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut out = Vec::new();
                counter.next_batch(0, 3, &mut out);
                out
            });
            while counter.slots[0].load(Ordering::Acquire) & TAG_MASK != OFFER {
                std::thread::yield_now();
            }
            let mut capturer = Vec::new();
            counter.next_batch(1, 5, &mut capturer);
            let waiter = waiter.join().expect("waiter panicked");
            assert_eq!(waiter, vec![0, 1, 2], "the waiter takes the first sub-block");
            assert_eq!(capturer, vec![3, 4, 5, 6, 7], "the capturer takes the rest");
        });
        assert_eq!(counter.collisions(), 2, "both sides count the merge");
        assert_eq!(counter.fallbacks(), 0);
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "the slot was recycled");
        assert_eq!(counter.inner().next(0), 8, "exactly one combined reservation of 8");
    }

    #[test]
    fn capturing_a_planted_offer_merges_and_deposits_the_first_sub_block() {
        // Drive the claim path deterministically: plant an OFFER word of
        // size 4 as if a waiter had parked it, then call with k = 2. The
        // call must capture, reserve 6 in one block, deposit base 0 for
        // the "waiter" and keep 4..6 for itself.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 64);
        counter.slots[0].store(pack(4, OFFER), Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 2, &mut out);
        assert_eq!(out, vec![4, 5], "the capturer's share starts after the waiter's 4");
        let word = counter.slots[0].load(Ordering::Acquire);
        assert_eq!(word & TAG_MASK, FILLED, "the waiter's share was deposited");
        assert_eq!(word >> 2, 0, "the deposited base is the block start");
        assert_eq!(counter.collisions(), 1, "only the capturer has counted so far");
        assert_eq!(counter.inner().next(0), 6, "one reservation of 4 + 2");
    }

    #[test]
    fn busy_slot_falls_back_to_a_solo_reservation() {
        // A CLAIMED slot belongs to a pair mid-merge: a third caller must
        // not interfere — it reserves solo and leaves the word alone.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 64);
        counter.slots[0].store(CLAIMED, Ordering::Release);
        let mut out = Vec::new();
        counter.next_batch(0, 3, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(counter.fallbacks(), 1);
        assert_eq!(counter.collisions(), 0);
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), CLAIMED, "the slot was not touched");
    }

    // --- timeout fallback ----------------------------------------------

    #[test]
    fn no_partner_within_the_wait_bound_retracts_and_reserves_solo() {
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 3);
        let mut values = Vec::new();
        for op in 0..10 {
            counter.next_batch(op, 2, &mut values);
        }
        assert_exact_range(&values);
        assert_eq!(counter.collisions(), 0, "no partner, no merge");
        assert_eq!(counter.fallbacks(), 10, "every operation fell back");
        assert_eq!(counter.slots[0].load(Ordering::Relaxed), EMPTY, "offers were retracted");
    }

    #[test]
    fn zero_spin_never_offers_but_still_captures() {
        // spin = 0: the caller will not wait, but a published offer from
        // someone else is still capturable. With a planted offer the call
        // merges; without one it goes straight to solo.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 1, 0);
        let mut solo = Vec::new();
        counter.next_batch(0, 2, &mut solo);
        assert_eq!(solo, vec![0, 1]);
        assert_eq!(counter.fallbacks(), 1);
        counter.slots[0].store(pack(3, OFFER), Ordering::Release);
        let mut merged = Vec::new();
        counter.next_batch(0, 1, &mut merged);
        assert_eq!(merged, vec![5], "captured the planted offer of 3 after base 2");
        assert_eq!(counter.collisions(), 1);
    }

    // --- preemption-hostile schedule ------------------------------------

    #[test]
    fn preemption_hostile_schedule_preserves_the_exact_range() {
        // One slot, a wait bound of 1, and threads that park mid-stream
        // (sleeping stands in for preemption) so offers routinely expire
        // and retraction races with capture. Whatever mix of merge,
        // obligated wait and solo fallback results, the mixed-size values
        // must tile exactly.
        let net = counting_network(8, 8).expect("valid");
        let counter = EliminationCounter::with_arena(NetworkCounter::new("C(8,8)", &net), 1, 1);
        let threads = 8;
        let per_thread = 400;
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for op in 0..per_thread {
                        counter.next_batch(tid, 1 + (op * 7 + tid) % 5, &mut local);
                        if op % 64 == tid * 8 {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        assert_exact_range(&values);
        assert_eq!(
            counter.collisions() + counter.fallbacks(),
            (threads * per_thread) as u64,
            "every operation is exactly one of merged or solo"
        );
    }

    // --- the lifted restriction, on every counter -----------------------

    #[test]
    fn mixed_batches_tile_exactly_on_every_wrapped_counter() {
        // The exact mixed-size workload that breaks raw stride
        // reservations: random k per op, op count not divisible by any
        // output width. Through the layer, every counter must hand out
        // exactly 0..m.
        type Make = fn() -> Box<dyn SharedCounter>;
        let make: [Make; 4] = [
            || {
                let net = counting_network(8, 24).expect("valid");
                Box::new(EliminationCounter::new(NetworkCounter::new("C(8,24)", &net)))
            },
            || Box::new(EliminationCounter::new(DiffractingCounter::new(8, 4, 32))),
            || Box::new(EliminationCounter::new(CentralCounter::new())),
            || Box::new(EliminationCounter::new(LockCounter::new())),
        ];
        for factory in make {
            let counter = factory();
            let threads = 8;
            let batches = 101; // deliberately not a multiple of anything
            let all = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for tid in 0..threads {
                    let counter = counter.as_ref();
                    let all = &all;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        for op in 0..batches {
                            counter.next_batch(tid, 1 + (op * 13 + tid * 5) % 9, &mut local);
                        }
                        all.lock().expect("not poisoned").extend(local);
                    });
                }
            });
            let values = all.into_inner().expect("not poisoned");
            assert_exact_range(&values);
        }
    }

    #[test]
    fn collisions_happen_under_real_concurrency() {
        // The spin-then-yield wait makes rendezvous work even when all
        // threads share one core (see the module docs), so collisions
        // must show up under genuine multi-threaded load.
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 4, 64);
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..8 {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for _ in 0..5_000 {
                        local.push(counter.next(tid));
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        assert_exact_range(&all.into_inner().expect("not poisoned"));
        assert!(counter.collisions() > 0, "8 threads must merge at least sometimes");
    }

    // --- plumbing --------------------------------------------------------

    #[test]
    fn next_and_zero_batches_behave() {
        let counter = EliminationCounter::new(LockCounter::new());
        let mut out = Vec::new();
        counter.next_batch(0, 0, &mut out);
        assert!(out.is_empty(), "k = 0 is a no-op");
        assert_eq!(counter.next(0), 0);
        assert_eq!(counter.reserve_block(1, 3), 1, "layers expose BlockReserve themselves");
        assert_eq!(counter.next(2), 4);
    }

    #[test]
    fn describe_names_inner_and_arena() {
        let counter = EliminationCounter::with_arena(CentralCounter::new(), 2, 8);
        assert_eq!(counter.describe(), "central fetch_add + elim[2]");
        assert_eq!(counter.arena_slots(), 2);
        let inner = counter.into_inner();
        assert_eq!(inner.describe(), "central fetch_add");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = EliminationCounter::with_arena(CentralCounter::new(), 0, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds 62 bits")]
    fn oversized_payloads_are_rejected_not_corrupted() {
        let _ = pack(1 << 62, OFFER);
    }
}
