//! Pluggable waiting strategies for rendezvous-based combining layers.
//!
//! The elimination arena ([`crate::elimination`]) and the diffracting
//! tree's prisms both hinge on the same event: a thread that has
//! *published* an offer must stay observable until a partner *claims* it.
//! How the publisher spends that interval is a scheduling decision, and
//! the right answer depends on the machine:
//!
//! * [`WaitStrategy::Spin`] — a bounded busy-wait. Optimal when every
//!   thread owns a core: the partner is genuinely running in parallel and
//!   arrives within nanoseconds, so any syscall would only add latency.
//! * [`WaitStrategy::SpinYield`] — spin, then (on an amortized fraction
//!   of timeouts) `yield_now` once and spin again. A cheap hedge for mild
//!   oversubscription, but fundamentally best-effort: the scheduler is
//!   free to decline the yield, and under CFS it frequently does, so on a
//!   1–2 cpu box most offers still expire unclaimed.
//! * [`WaitStrategy::Park`] — spin briefly, then **sleep** on a
//!   futex-style side table ([`ParkTable`], `parking_lot`-backed, one
//!   seat per arena slot) until the claimer wakes the publisher after
//!   depositing its share. Parking surrenders the core *to* the potential
//!   partner instead of hoping the scheduler takes it, which is what
//!   makes rendezvous land when runnable threads outnumber cpus. The
//!   price is a park/unpark syscall pair per merge — worth paying exactly
//!   when spinning could never rendezvous anyway.
//!
//! The strategy is a property of the combining layer instance (every
//! participant of one arena must agree on who wakes whom), so it is
//! carried by [`crate::elimination::EliminationConfig`] and threaded from
//! there through the stress matrix and the `exp_elimination` experiment
//! (`--strategy` flag).
//!
//! # Worked example: a parked offer woken by its claimer
//!
//! Two threads collide on a single-slot arena. Whichever publishes
//! first parks (the one-minute timeout stands in for "sleep until
//! woken" — completing at all proves the wakeup); the other captures
//! the offer, performs **one** combined reservation of `3 + 5 = 8`
//! values against the wrapped counter, deposits the partner's
//! sub-block, and wakes the sleeper. The split is contiguous and
//! gap-free whichever thread the scheduler runs first:
//!
//! ```
//! use std::time::Duration;
//! use counting_runtime::{
//!     CentralCounter, EliminationConfig, EliminationCounter, SharedCounter, WaitStrategy,
//! };
//!
//! let config = EliminationConfig {
//!     slots: 1, // force both threads onto the same exchanger slot
//!     strategy: WaitStrategy::Park,
//!     park_timeout: Duration::from_secs(60),
//!     ..EliminationConfig::default()
//! };
//! let counter = EliminationCounter::with_config(CentralCounter::new(), config);
//!
//! let (first, second) = std::thread::scope(|scope| {
//!     let first = scope.spawn(|| {
//!         let mut out = Vec::new();
//!         counter.next_batch(0, 3, &mut out); // offers 3, parks
//!         out
//!     });
//!     // Usually arrives long after the offer is parked — but the
//!     // assertions below hold for either arrival order.
//!     std::thread::sleep(Duration::from_millis(100));
//!     let mut out = Vec::new();
//!     counter.next_batch(1, 5, &mut out); // captures, reserves 8, unparks
//!     (first.join().expect("no panic"), out)
//! });
//!
//! // One combined reservation of 8, split gap-free between the two
//! // threads (each share is itself contiguous).
//! assert_eq!(counter.collisions(), 2, "both sides merged");
//! assert_eq!(counter.fallbacks(), 0, "nobody fell back to a solo reservation");
//! let mut all = [first, second].concat();
//! all.sort();
//! assert_eq!(all, (0..8).collect::<Vec<u64>>(), "the block tiles 0..8 exactly");
//! assert_eq!(counter.into_inner().next(0), 8, "the inner counter moved exactly once");
//! ```

use std::str::FromStr;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// How a thread that published a rendezvous offer waits for a partner.
///
/// See the [module docs](self) for when each strategy wins; the default
/// is [`WaitStrategy::SpinYield`], the behaviour combining layers shipped
/// with before the strategy became pluggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitStrategy {
    /// Bounded busy-wait only. Best when threads do not outnumber cores.
    Spin,
    /// Busy-wait, then one amortized `yield_now` and a second busy-wait.
    /// A best-effort hedge for mild oversubscription.
    #[default]
    SpinYield,
    /// Busy-wait briefly, then sleep on the arena's [`ParkTable`] until
    /// the claimer wakes the offer (or a timeout retracts it). The robust
    /// choice when runnable threads outnumber cpus.
    Park,
}

impl WaitStrategy {
    /// Every strategy, in escalation order — handy for experiment axes.
    pub const ALL: [WaitStrategy; 3] =
        [WaitStrategy::Spin, WaitStrategy::SpinYield, WaitStrategy::Park];

    /// A short stable label used in tables, JSON output and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WaitStrategy::Spin => "spin",
            WaitStrategy::SpinYield => "spin-yield",
            WaitStrategy::Park => "park",
        }
    }
}

impl std::fmt::Display for WaitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for WaitStrategy {
    type Err = String;

    /// Parses the labels produced by [`WaitStrategy::label`] (plus the
    /// underscore spelling `spin_yield`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spin" => Ok(WaitStrategy::Spin),
            "spin-yield" | "spin_yield" | "spinyield" => Ok(WaitStrategy::SpinYield),
            "park" => Ok(WaitStrategy::Park),
            other => {
                Err(format!("unknown wait strategy `{other}` (expected spin, spin-yield or park)"))
            }
        }
    }
}

/// One parking seat: a mutex/condvar pair guarding wakeups for one arena
/// slot. The mutex protects no data of its own — the protocol state lives
/// in the slot's atomic word — it exists purely to close the lost-wakeup
/// race (see [`ParkTable::park_until`]).
#[derive(Debug, Default)]
struct Seat {
    lock: Mutex<()>,
    wakeups: Condvar,
}

/// A futex-style side table of parking seats, keyed by arena slot.
///
/// A publisher parks on the seat of the slot holding its offer
/// ([`Self::park_until`]); the claimer, after depositing into that slot,
/// wakes the seat ([`Self::unpark`]). At most one thread is ever parked
/// per seat — a slot holds at most one live offer — but the table makes
/// no use of that fact and `unpark` wakes all sleepers.
///
/// Correctness of the handoff: the parker re-checks `filled()` while
/// holding the seat lock before every sleep, and the waker takes the same
/// lock before notifying. A deposit therefore either happens-before the
/// parker's check (which then observes it and never sleeps) or the
/// notification reaches a thread already inside `wait` — the wakeup
/// cannot fall into the gap between check and sleep. Spurious wakeups are
/// expected and harmless: the loop simply re-checks the condition.
#[derive(Debug)]
pub struct ParkTable {
    seats: Box<[Seat]>,
}

impl ParkTable {
    /// Creates a table with one seat per arena slot.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "the park table needs at least one seat");
        Self { seats: (0..slots).map(|_| Seat::default()).collect() }
    }

    /// The number of seats (equal to the arena's slot count).
    #[must_use]
    pub fn seats(&self) -> usize {
        self.seats.len()
    }

    /// Parks the calling thread on `slot`'s seat until `filled()` returns
    /// `true` or `timeout` elapses, whichever comes first. Returns whether
    /// the condition was observed (`false` = timed out). Wakeups with the
    /// condition still false — spurious or stale — simply re-check and
    /// sleep again for the remaining time. A `timeout` too large to
    /// represent as a deadline (e.g. [`Duration::MAX`]) means "park until
    /// filled", with no timeout at all.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn park_until(&self, slot: usize, timeout: Duration, filled: impl Fn() -> bool) -> bool {
        let seat = &self.seats[slot];
        if crate::sync::in_model() {
            // Under the interleaving model, OS blocking would deadlock
            // the cooperative scheduler (a parked thread never reaches a
            // scheduling point). A bounded poll with voluntary yields
            // models the same contract: either the condition is observed
            // or the park "times out".
            return crate::sync::park_poll(filled);
        }
        // `None` = unrepresentable deadline = wait indefinitely.
        let deadline = Instant::now().checked_add(timeout);
        let mut guard = seat.lock.lock();
        loop {
            if filled() {
                return true;
            }
            match deadline {
                Some(deadline) => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        return false;
                    };
                    if remaining.is_zero() {
                        return false;
                    }
                    let _ = seat.wakeups.wait_for(&mut guard, remaining);
                }
                None => seat.wakeups.wait(&mut guard),
            }
        }
    }

    /// Wakes whoever is parked on `slot`'s seat (a no-op if nobody is).
    /// Call *after* making the parker's condition observable — the seat
    /// lock taken here is what guarantees the parker cannot miss it.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn unpark(&self, slot: usize) {
        if crate::sync::in_model() {
            // Model parking is a poll loop (see park_until): there is no
            // sleeper to wake, and taking a real OS lock here could block
            // while holding the model scheduler's grant.
            return;
        }
        let seat = &self.seats[slot];
        let _guard = seat.lock.lock();
        seat.wakeups.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn strategy_labels_round_trip_through_from_str() {
        for strategy in WaitStrategy::ALL {
            assert_eq!(strategy.label().parse::<WaitStrategy>(), Ok(strategy));
            assert_eq!(strategy.to_string(), strategy.label());
        }
        assert_eq!("SPIN_YIELD".parse::<WaitStrategy>(), Ok(WaitStrategy::SpinYield));
        assert!("nap".parse::<WaitStrategy>().unwrap_err().contains("nap"));
        assert_eq!(WaitStrategy::default(), WaitStrategy::SpinYield);
    }

    #[test]
    fn parked_thread_is_woken_by_unpark() {
        let table = ParkTable::new(2);
        let filled = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let parker = scope.spawn(|| {
                table.park_until(1, Duration::from_secs(60), || filled.load(Ordering::Acquire))
            });
            std::thread::sleep(Duration::from_millis(10));
            filled.store(true, Ordering::Release);
            table.unpark(1);
            // Returning at all (well before the 60 s timeout) proves the
            // wakeup; `true` proves the condition was observed.
            assert!(parker.join().expect("parker panicked"));
        });
    }

    #[test]
    fn park_times_out_when_nobody_unparks() {
        let table = ParkTable::new(1);
        let start = Instant::now();
        let woken = table.park_until(0, Duration::from_millis(5), || false);
        assert!(!woken, "no unpark, no condition: the park must time out");
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn spurious_unparks_re_check_and_keep_parking() {
        // A stream of unparks with the condition still false must not let
        // the parker return early: every wakeup re-checks and goes back to
        // sleep until the condition truly flips.
        let table = ParkTable::new(1);
        let filled = AtomicBool::new(false);
        let checks = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let parker = scope.spawn(|| {
                table.park_until(0, Duration::from_secs(60), || {
                    checks.fetch_add(1, Ordering::Relaxed);
                    filled.load(Ordering::Acquire)
                })
            });
            // Spurious phase: wake repeatedly without satisfying the
            // condition.
            for _ in 0..20 {
                table.unpark(0);
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(!parker.is_finished(), "spurious wakeups must not end the park");
            filled.store(true, Ordering::Release);
            table.unpark(0);
            assert!(parker.join().expect("parker panicked"));
        });
        assert!(
            checks.load(Ordering::Relaxed) >= 2,
            "the condition must be re-checked on wakeups, not assumed"
        );
    }

    #[test]
    fn unbounded_timeouts_park_until_filled_instead_of_panicking() {
        // Duration::MAX cannot be added to Instant::now(); it must mean
        // "no timeout" rather than an arithmetic panic on first park.
        let table = ParkTable::new(1);
        let filled = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let parker = scope
                .spawn(|| table.park_until(0, Duration::MAX, || filled.load(Ordering::Acquire)));
            std::thread::sleep(Duration::from_millis(10));
            filled.store(true, Ordering::Release);
            table.unpark(0);
            assert!(parker.join().expect("parker panicked"));
        });
    }

    #[test]
    fn condition_true_before_parking_returns_without_sleeping() {
        let table = ParkTable::new(1);
        let start = Instant::now();
        assert!(table.park_until(0, Duration::from_secs(60), || true));
        assert!(start.elapsed() < Duration::from_secs(1), "no sleep when already filled");
    }

    #[test]
    fn zero_timeout_is_a_bounded_condition_poll() {
        let table = ParkTable::new(1);
        assert!(!table.park_until(0, Duration::ZERO, || false));
        assert!(table.park_until(0, Duration::ZERO, || true));
    }

    #[test]
    #[should_panic(expected = "at least one seat")]
    fn zero_seats_rejected() {
        let _ = ParkTable::new(0);
    }

    #[test]
    fn seats_match_the_slot_count() {
        assert_eq!(ParkTable::new(3).seats(), 3);
    }
}
