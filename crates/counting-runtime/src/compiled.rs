//! Compilation of a network topology into a lock-free shared data
//! structure.
//!
//! A [`balnet::Network`] is a validated DAG description. For concurrent
//! execution we flatten it: each balancer becomes one cache-padded atomic
//! word holding the number of tokens it has processed (its state is that
//! count modulo its fan-out), and each wire becomes a pre-resolved route
//! to either another balancer or an output wire. A token traversal is then
//! a short loop of `fetch_add` operations with no locks and no allocation.

use std::sync::atomic::{AtomicU64, Ordering};

use balnet::{Network, Port};
use crossbeam::utils::CachePadded;

/// Where a wire leads in the compiled form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// The wire feeds the balancer with this index.
    Balancer(u32),
    /// The wire is the network output wire with this index.
    Output(u32),
}

fn compile_port(port: Port) -> Route {
    match port {
        Port::Balancer { balancer, .. } => Route::Balancer(balancer as u32),
        Port::Output(o) => Route::Output(o as u32),
    }
}

/// One balancer in compiled form.
#[derive(Debug)]
struct CompiledBalancer {
    /// Number of tokens processed so far. The balancer's state is
    /// `processed % fan_out`.
    processed: CachePadded<AtomicU64>,
    fan_out: u32,
    /// Route of each output wire (`outputs.len() == fan_out`).
    outputs: Box<[Route]>,
}

/// A lock-free compiled balancing network, shareable across threads.
///
/// The compiled network only captures topology and balancer state; value
/// dispensing (Fetch&Increment) is layered on top by
/// [`crate::NetworkCounter`].
#[derive(Debug)]
pub struct CompiledNetwork {
    input_width: usize,
    output_width: usize,
    inputs: Box<[Route]>,
    balancers: Box<[CompiledBalancer]>,
}

impl CompiledNetwork {
    /// Compiles a validated topology.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        let balancers = network
            .balancers()
            .iter()
            .map(|b| CompiledBalancer {
                processed: CachePadded::new(AtomicU64::new(0)),
                fan_out: b.fan_out as u32,
                outputs: b.outputs.iter().map(|&p| compile_port(p)).collect(),
            })
            .collect();
        Self {
            input_width: network.input_width(),
            output_width: network.output_width(),
            inputs: network.inputs().iter().map(|&p| compile_port(p)).collect(),
            balancers,
        }
    }

    /// The network's input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The network's output width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Shepherds one token from `input_wire` to an output wire and returns
    /// the output wire index. Lock-free: one `fetch_add` per traversed
    /// balancer.
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= input_width()`.
    #[must_use]
    pub fn traverse(&self, input_wire: usize) -> usize {
        assert!(input_wire < self.input_width, "input wire {input_wire} out of range");
        let mut route = self.inputs[input_wire];
        loop {
            match route {
                Route::Balancer(idx) => {
                    let b = &self.balancers[idx as usize];
                    // Relaxed suffices: correctness relies only on the
                    // atomicity (per-location total order) of the RMW.
                    let ticket = b.processed.fetch_add(1, Ordering::Relaxed);
                    let out = (ticket % u64::from(b.fan_out)) as usize;
                    route = b.outputs[out];
                }
                Route::Output(o) => return o as usize,
            }
        }
    }

    /// The number of tokens each balancer has processed so far (a snapshot;
    /// exact only in a quiescent state).
    #[must_use]
    pub fn balancer_loads(&self) -> Vec<u64> {
        // Relaxed: reporting-only snapshot, exact at quiescence.
        self.balancers.iter().map(|b| b.processed.load(Ordering::Relaxed)).collect()
    }

    /// The number of tokens that have exited on each output wire so far,
    /// reconstructed from the balancer states feeding the outputs. Exact
    /// only in a quiescent state (no token mid-traversal); intended for
    /// post-run verification in tests and benches.
    #[must_use]
    pub fn quiescent_output_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.output_width];
        // Tokens that entered each balancer: recompute by replaying the
        // step distribution of each balancer's processed count in topo
        // order is unnecessary here — each balancer records its own total,
        // so we can directly add its per-output distribution.
        for b in self.balancers.iter() {
            // Relaxed: reporting-only snapshot, exact at quiescence.
            let total = b.processed.load(Ordering::Relaxed);
            for (i, route) in b.outputs.iter().enumerate() {
                if let Route::Output(o) = route {
                    out[*o as usize] += balnet::seq::step_value(total, i, b.fan_out as usize);
                }
            }
        }
        // Plus tokens that went straight from an input wire to an output
        // wire (no balancer): those are not tracked here — compiled
        // networks with balancer-free paths should be verified via
        // `NetworkCounter` value sets instead.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::quiescent_output;
    use counting::counting_network;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_traversal_matches_quiescent_evaluation() {
        let net = counting_network(8, 16).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let input = [5u64, 3, 0, 7, 2, 2, 9, 1];
        let mut counts = vec![0u64; 16];
        for (wire, &tokens) in input.iter().enumerate() {
            for _ in 0..tokens {
                counts[compiled.traverse(wire)] += 1;
            }
        }
        assert_eq!(counts, quiescent_output(&net, &input));
        assert_eq!(compiled.quiescent_output_counts(), counts);
    }

    #[test]
    fn concurrent_traversal_preserves_token_count_and_step_property() {
        let w = 8;
        let net = counting_network(w, 2 * w).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let threads = 8;
        let per_thread = 2_000u64;
        let exit_counts: Vec<AtomicUsize> =
            (0..compiled.output_width()).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let compiled = &compiled;
                let exit_counts = &exit_counts;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let o = compiled.traverse(tid % w);
                        exit_counts[o].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let counts: Vec<u64> =
            exit_counts.iter().map(|c| c.load(Ordering::Relaxed) as u64).collect();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, threads as u64 * per_thread);
        // In the quiescent state after all threads joined, the output must
        // satisfy the step property (Theorem 4.2 under real concurrency).
        assert!(balnet::is_step(&counts), "concurrent output not step: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn traverse_checks_bounds() {
        let net = counting_network(4, 4).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let _ = compiled.traverse(4);
    }
}
