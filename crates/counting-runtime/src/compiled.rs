//! Compilation of a network topology into a lock-free shared data
//! structure.
//!
//! A [`balnet::Network`] is a validated DAG description. For concurrent
//! execution we flatten it: each balancer becomes one cache-padded atomic
//! word holding the number of tokens it has processed (its state is that
//! count modulo its fan-out), and each wire becomes a pre-resolved route
//! to either another balancer or an output wire. A token traversal is then
//! a short loop of `fetch_add` operations with no locks and no allocation.
//!
//! ## Flat route layout
//!
//! [`CompiledNetwork`] stores **all** balancer output routes in one
//! contiguous route table. Each balancer owns a single packed `u64` word
//! carrying its slice offset into that table, its fan-out, and a
//! power-of-two flag; a traversal step is then `meta word → fetch_add →
//! mask-or-modulo → route table index`, touching two flat arrays instead
//! of chasing a per-balancer `Box<[Route]>` allocation. The older
//! pointer-per-balancer form is retained as [`BoxedRouteNetwork`] — it is
//! the equivalence oracle for the flat layout (see
//! `crates/bench/tests/flat_route_equivalence.rs`) and the measured
//! baseline in the recorded benchmark trajectory (`exp_bench`,
//! `BENCH_*.json`).

use std::sync::atomic::{AtomicU64, Ordering};

use balnet::{Network, Port};
use crossbeam::utils::CachePadded;

/// Routes pack a wire target into one `u32`: the low 31 bits hold a
/// balancer or output-wire index, the top bit marks an output wire.
const OUTPUT_BIT: u32 = 1 << 31;

/// Converts a topology index into the 31-bit route encoding, panicking
/// with a clear message instead of silently truncating (`as u32` would
/// wrap on a pathological topology and compile a wrong network).
fn route_index(index: usize, what: &str) -> u32 {
    match u32::try_from(index) {
        Ok(v) if v < OUTPUT_BIT => v,
        _ => panic!(
            "{what} {index} exceeds the compiled route limit of {} (indices must fit in 31 bits)",
            OUTPUT_BIT - 1
        ),
    }
}

/// Where a wire leads in the compiled form (packed, see [`OUTPUT_BIT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Route(u32);

impl Route {
    fn balancer(index: usize) -> Self {
        Self(route_index(index, "balancer index"))
    }

    fn output(index: usize) -> Self {
        Self(route_index(index, "output wire index") | OUTPUT_BIT)
    }

    /// `Some(balancer index)` if the route feeds a balancer.
    #[inline]
    fn balancer_index(self) -> Option<usize> {
        (self.0 & OUTPUT_BIT == 0).then_some(self.0 as usize)
    }

    /// `Some(output wire index)` if the route exits the network.
    #[inline]
    fn output_wire(self) -> Option<usize> {
        (self.0 & OUTPUT_BIT != 0).then_some((self.0 & !OUTPUT_BIT) as usize)
    }
}

fn compile_port(port: Port) -> Route {
    match port {
        Port::Balancer { balancer, .. } => Route::balancer(balancer),
        Port::Output(o) => Route::output(o),
    }
}

// Packed per-balancer metadata word: `offset << 32 | pow2 << 31 | fan_out`.
// The offset points into the shared route table; the pow2 flag selects the
// bitmask fast path over `%` in `traverse`.
const META_OFFSET_SHIFT: u32 = 32;
const META_POW2_FLAG: u64 = 1 << 31;
const META_FAN_OUT_MASK: u64 = META_POW2_FLAG - 1;

fn pack_meta(offset: usize, fan_out: usize) -> u64 {
    let offset = route_index(offset, "route-table offset");
    let fan_out_bits = route_index(fan_out, "balancer fan-out");
    let pow2 = if fan_out.is_power_of_two() { META_POW2_FLAG } else { 0 };
    (u64::from(offset) << META_OFFSET_SHIFT) | pow2 | u64::from(fan_out_bits)
}

/// A lock-free compiled balancing network, shareable across threads.
///
/// The compiled network only captures topology and balancer state; value
/// dispensing (Fetch&Increment) is layered on top by
/// [`crate::NetworkCounter`]. All balancer output routes live in one
/// contiguous table (see the module docs); per-balancer state is one
/// cache-padded atomic so concurrent tokens on different balancers never
/// share a line.
#[derive(Debug)]
pub struct CompiledNetwork {
    input_width: usize,
    output_width: usize,
    inputs: Box<[Route]>,
    /// All balancer output routes, contiguous: balancer `i`'s routes are
    /// `routes[offset_i .. offset_i + fan_out_i]` as packed in `meta[i]`.
    routes: Box<[Route]>,
    /// One packed word per balancer (`pack_meta`), read once per step.
    meta: Box<[u64]>,
    /// Tokens processed per balancer; state is `processed % fan_out`.
    processed: Box<[CachePadded<AtomicU64>]>,
}

impl CompiledNetwork {
    /// Compiles a validated topology.
    ///
    /// # Panics
    ///
    /// Panics if any balancer, output-wire, or route-table index does not
    /// fit in the 31-bit route encoding (never the case for realistic
    /// topologies; checked rather than truncated).
    #[must_use]
    pub fn new(network: &Network) -> Self {
        let balancers = network.balancers();
        let mut routes = Vec::new();
        let mut meta = Vec::with_capacity(balancers.len());
        for b in balancers {
            meta.push(pack_meta(routes.len(), b.fan_out));
            routes.extend(b.outputs.iter().map(|&p| compile_port(p)));
        }
        Self {
            input_width: network.input_width(),
            output_width: network.output_width(),
            inputs: network.inputs().iter().map(|&p| compile_port(p)).collect(),
            routes: routes.into_boxed_slice(),
            meta: meta.into_boxed_slice(),
            processed: (0..balancers.len()).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
        }
    }

    /// The network's input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The network's output width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Shepherds one token from `input_wire` to an output wire and returns
    /// the output wire index. Lock-free: one `fetch_add` per traversed
    /// balancer, plus one packed-word and one route-table read — no
    /// per-balancer pointer chase. Power-of-two fan-outs take a bitmask
    /// instead of `%`.
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= input_width()`.
    #[must_use]
    pub fn traverse(&self, input_wire: usize) -> usize {
        assert!(input_wire < self.input_width, "input wire {input_wire} out of range");
        let mut route = self.inputs[input_wire];
        loop {
            match route.balancer_index() {
                Some(idx) => {
                    let meta = self.meta[idx];
                    // Relaxed suffices: correctness relies only on the
                    // atomicity (per-location total order) of the RMW.
                    let ticket = self.processed[idx].fetch_add(1, Ordering::Relaxed);
                    let fan_out = meta & META_FAN_OUT_MASK;
                    let out = if meta & META_POW2_FLAG != 0 {
                        ticket & (fan_out - 1)
                    } else {
                        ticket % fan_out
                    };
                    route = self.routes[(meta >> META_OFFSET_SHIFT) as usize + out as usize];
                }
                None => return route.output_wire().expect("non-balancer route is an output"),
            }
        }
    }

    /// The number of tokens each balancer has processed so far (a snapshot;
    /// exact only in a quiescent state).
    #[must_use]
    pub fn balancer_loads(&self) -> Vec<u64> {
        // Relaxed: reporting-only snapshot, exact at quiescence.
        self.processed.iter().map(|p| p.load(Ordering::Relaxed)).collect()
    }

    /// The number of tokens that have exited on each output wire so far,
    /// reconstructed from the balancer states feeding the outputs. Exact
    /// only in a quiescent state (no token mid-traversal); intended for
    /// post-run verification in tests and benches.
    #[must_use]
    pub fn quiescent_output_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.output_width];
        // Each balancer records its own total, so we can directly add its
        // per-output step distribution.
        for (idx, &meta) in self.meta.iter().enumerate() {
            // Relaxed: reporting-only snapshot, exact at quiescence.
            let total = self.processed[idx].load(Ordering::Relaxed);
            let fan_out = (meta & META_FAN_OUT_MASK) as usize;
            let offset = (meta >> META_OFFSET_SHIFT) as usize;
            for (i, route) in self.routes[offset..offset + fan_out].iter().enumerate() {
                if let Some(o) = route.output_wire() {
                    out[o] += balnet::seq::step_value(total, i, fan_out);
                }
            }
        }
        // Plus tokens that went straight from an input wire to an output
        // wire (no balancer): those are not tracked here — compiled
        // networks with balancer-free paths should be verified via
        // `NetworkCounter` value sets instead.
        out
    }
}

/// One balancer in the boxed-route compiled form (see
/// [`BoxedRouteNetwork`]).
#[derive(Debug)]
struct CompiledBalancer {
    /// Number of tokens processed so far. The balancer's state is
    /// `processed % fan_out`.
    processed: CachePadded<AtomicU64>,
    fan_out: u32,
    /// Route of each output wire (`outputs.len() == fan_out`).
    outputs: Box<[Route]>,
}

/// The pre-flattening compiled form: each balancer owns its routes in a
/// separate `Box<[Route]>`, so every traversal step chases one heap
/// pointer and pays `ticket % fan_out`.
///
/// Retained deliberately — not dead code: it is the equivalence oracle
/// the flat [`CompiledNetwork`] is tested against on every seed topology,
/// and the measured baseline for the `hot-path` suite in the recorded
/// benchmark trajectory (`exp_bench`). Use [`CompiledNetwork`] everywhere
/// else.
#[derive(Debug)]
pub struct BoxedRouteNetwork {
    input_width: usize,
    output_width: usize,
    inputs: Box<[Route]>,
    balancers: Box<[CompiledBalancer]>,
}

impl BoxedRouteNetwork {
    /// Compiles a validated topology into the boxed-route form.
    ///
    /// # Panics
    ///
    /// Panics on indices that do not fit the route encoding, exactly like
    /// [`CompiledNetwork::new`].
    #[must_use]
    pub fn new(network: &Network) -> Self {
        let balancers = network
            .balancers()
            .iter()
            .map(|b| CompiledBalancer {
                processed: CachePadded::new(AtomicU64::new(0)),
                fan_out: route_index(b.fan_out, "balancer fan-out"),
                outputs: b.outputs.iter().map(|&p| compile_port(p)).collect(),
            })
            .collect();
        Self {
            input_width: network.input_width(),
            output_width: network.output_width(),
            inputs: network.inputs().iter().map(|&p| compile_port(p)).collect(),
            balancers,
        }
    }

    /// The network's input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The network's output width.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Shepherds one token from `input_wire` to an output wire — the
    /// boxed-route (pointer-chasing, `%`-only) traversal.
    ///
    /// # Panics
    ///
    /// Panics if `input_wire >= input_width()`.
    #[must_use]
    pub fn traverse(&self, input_wire: usize) -> usize {
        assert!(input_wire < self.input_width, "input wire {input_wire} out of range");
        let mut route = self.inputs[input_wire];
        loop {
            match route.balancer_index() {
                Some(idx) => {
                    let b = &self.balancers[idx];
                    // Relaxed: see `CompiledNetwork::traverse`.
                    let ticket = b.processed.fetch_add(1, Ordering::Relaxed);
                    let out = (ticket % u64::from(b.fan_out)) as usize;
                    route = b.outputs[out];
                }
                None => return route.output_wire().expect("non-balancer route is an output"),
            }
        }
    }

    /// The number of tokens each balancer has processed so far (a snapshot;
    /// exact only in a quiescent state).
    #[must_use]
    pub fn balancer_loads(&self) -> Vec<u64> {
        // Relaxed: reporting-only snapshot, exact at quiescence.
        self.balancers.iter().map(|b| b.processed.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::quiescent_output;
    use counting::counting_network;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_traversal_matches_quiescent_evaluation() {
        let net = counting_network(8, 16).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let input = [5u64, 3, 0, 7, 2, 2, 9, 1];
        let mut counts = vec![0u64; 16];
        for (wire, &tokens) in input.iter().enumerate() {
            for _ in 0..tokens {
                counts[compiled.traverse(wire)] += 1;
            }
        }
        assert_eq!(counts, quiescent_output(&net, &input));
        assert_eq!(compiled.quiescent_output_counts(), counts);
    }

    #[test]
    fn concurrent_traversal_preserves_token_count_and_step_property() {
        let w = 8;
        let net = counting_network(w, 2 * w).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let threads = 8;
        let per_thread = 2_000u64;
        let exit_counts: Vec<AtomicUsize> =
            (0..compiled.output_width()).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let compiled = &compiled;
                let exit_counts = &exit_counts;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let o = compiled.traverse(tid % w);
                        exit_counts[o].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let counts: Vec<u64> =
            exit_counts.iter().map(|c| c.load(Ordering::Relaxed) as u64).collect();
        let total: u64 = counts.iter().sum();
        assert_eq!(total, threads as u64 * per_thread);
        // In the quiescent state after all threads joined, the output must
        // satisfy the step property (Theorem 4.2 under real concurrency).
        assert!(balnet::is_step(&counts), "concurrent output not step: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn traverse_checks_bounds() {
        let net = counting_network(4, 4).expect("valid");
        let compiled = CompiledNetwork::new(&net);
        let _ = compiled.traverse(4);
    }

    #[test]
    #[should_panic(expected = "balancer index 2147483648 exceeds the compiled route limit")]
    fn oversized_balancer_index_rejected_not_truncated() {
        let _ = Route::balancer(1 << 31);
    }

    #[test]
    #[should_panic(expected = "output wire index 4294967296 exceeds the compiled route limit")]
    fn oversized_output_index_rejected_not_truncated() {
        // Above u32::MAX entirely: the old `as u32` silently wrapped this
        // to 0; the checked conversion refuses.
        let _ = Route::output(1 << 32);
    }

    #[test]
    fn meta_packing_round_trips_and_flags_powers_of_two() {
        for (offset, fan_out) in [(0usize, 2usize), (7, 3), (1024, 16), (5, 6), (99, 1)] {
            let meta = pack_meta(offset, fan_out);
            assert_eq!((meta >> META_OFFSET_SHIFT) as usize, offset);
            assert_eq!((meta & META_FAN_OUT_MASK) as usize, fan_out);
            assert_eq!(meta & META_POW2_FLAG != 0, fan_out.is_power_of_two());
            // The mask fast path must agree with `%` whenever the flag is
            // set.
            if fan_out.is_power_of_two() {
                for ticket in [0u64, 1, 2, 13, 1 << 40, u64::MAX] {
                    assert_eq!(ticket & (fan_out as u64 - 1), ticket % fan_out as u64);
                }
            }
        }
    }

    #[test]
    fn boxed_route_form_agrees_with_flat_form() {
        // Full cross-family equivalence lives in
        // crates/bench/tests/flat_route_equivalence.rs; this is the unit
        // smoke on one topology.
        let net = counting_network(4, 8).expect("valid");
        let flat = CompiledNetwork::new(&net);
        let boxed = BoxedRouteNetwork::new(&net);
        for i in 0..200usize {
            let wire = (i * 7 + 3) % 4;
            assert_eq!(flat.traverse(wire), boxed.traverse(wire), "token {i}");
        }
        assert_eq!(flat.balancer_loads(), boxed.balancer_loads());
    }
}
