//! Real-thread stress driver with online invariant checking.
//!
//! The simulator in `counting-sim` explores adversarial *schedules*; this
//! module is its hardware counterpart: it tortures any [`SharedCounter`]
//! with real threads under configurable workload [`Scenario`]s — steady
//! saturation, barrier-aligned bursts, skewed thread-to-wire assignment,
//! thread arrival/departure churn, oscillating thread counts, and
//! NUMA-style wire pinning — while checking the Fetch&Increment contract
//! *online*:
//!
//! * every issued value is marked in a [`ValueBitmap`] (an array of atomic
//!   words, one `fetch_or` per value), so duplicates are detected the
//!   moment they happen and the exact-range property (`0..m` with no gaps
//!   at quiescence) is verified for millions of operations without a
//!   mutex-guarded `HashSet` — and the *first offending values* (not just
//!   counts) are reported, so a broken run is debuggable from CI logs;
//! * optionally, every operation is timestamped and the records are fed
//!   to [`counting_sim::linearizability::violations`], measuring (not
//!   just asserting) how non-linearizable a counter is on real hardware
//!   (Section 1.4.2: counting networks trade linearizability for
//!   throughput).
//!
//! Operations are either uniformly batched or, via [`Batching::Mixed`],
//! drawn from the deterministic mixed-size stream shared with
//! `counting-sim`'s arena model — the workload that requires the
//! elimination layer ([`crate::elimination`]) for gap-free hand-outs.
//! When the counter under test is an elimination-wrapped one, its
//! [`crate::waiting::WaitStrategy`] forms a third matrix axis next to
//! batching and scenario (the strategy is carried by the counter and
//! named by its `describe()` string): the torture suite and
//! `exp_elimination`'s E14c table drive the full counter × scenario ×
//! strategy grid.
//!
//! All scenarios exclude thread start-up from the measured window via a
//! start barrier, so the reported rates are steady-state.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use counting_sim::linearizability::violations;
use counting_sim::TokenRecord;
use parking_lot::Mutex;
use serde::Serialize;

use crate::counter::SharedCounter;
use crate::throughput::MeasuredWindow;

/// A concurrent bitmap over the value range `0..capacity`, used to check
/// uniqueness online and exact-range coverage at quiescence.
///
/// The bitmap is sharded at word granularity: marking value `v` is a
/// single `fetch_or` on word `v / 64`, so two marks contend only when
/// their values fall into the same 64-value shard — negligible for the
/// scattered value streams a counting network produces.
#[derive(Debug)]
pub struct ValueBitmap {
    words: Box<[AtomicU64]>,
    capacity: u64,
}

impl ValueBitmap {
    /// Creates a bitmap able to track the values `0..capacity`.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let words = (0..capacity.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, capacity }
    }

    /// The tracked value range `0..capacity`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Marks `value` as seen. Returns `true` if it was new, `false` if it
    /// had already been marked — i.e. a duplicate hand-out.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn mark(&self, value: u64) -> bool {
        assert!(value < self.capacity, "value {value} outside bitmap capacity {}", self.capacity);
        let bit = 1u64 << (value % 64);
        // Relaxed: first-marker detection needs only the fetch_or's
        // per-location atomicity — exactly one caller sees the bit clear.
        self.words[(value / 64) as usize].fetch_or(bit, Ordering::Relaxed) & bit == 0
    }

    /// Whether `value` has been marked.
    #[must_use]
    pub fn contains(&self, value: u64) -> bool {
        // Relaxed: reporting-only query, exact at quiescence.
        value < self.capacity
            && self.words[(value / 64) as usize].load(Ordering::Relaxed) & (1 << (value % 64)) != 0
    }

    /// The number of values in `0..capacity` not marked yet. Exact only at
    /// quiescence (no `mark` in flight).
    #[must_use]
    pub fn missing(&self) -> u64 {
        // Relaxed: reporting-only query, exact at quiescence.
        let set: u64 =
            self.words.iter().map(|w| u64::from(w.load(Ordering::Relaxed).count_ones())).sum();
        self.capacity - set
    }

    /// The first `limit` values in `0..capacity` not marked yet, in
    /// ascending order. Exact only at quiescence. This is what makes a
    /// gap debuggable: *which* values are missing localizes the broken
    /// reservation (e.g. one dispenser's stride), where a bare count
    /// cannot.
    #[must_use]
    pub fn missing_values(&self, limit: usize) -> Vec<u64> {
        let mut missing = Vec::new();
        if limit == 0 {
            return missing;
        }
        'words: for (idx, word) in self.words.iter().enumerate() {
            // Relaxed: reporting-only query, exact at quiescence.
            let set = word.load(Ordering::Relaxed);
            if set == u64::MAX {
                continue;
            }
            for bit in 0..64 {
                let value = idx as u64 * 64 + bit;
                if value >= self.capacity {
                    break 'words;
                }
                if set & (1 << bit) == 0 {
                    missing.push(value);
                    if missing.len() == limit {
                        break 'words;
                    }
                }
            }
        }
        missing
    }
}

/// A workload shape for [`run_stress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Every thread issues its operations back to back.
    Steady,
    /// Operations happen in barrier-aligned bursts: the threads blast a
    /// slice of their quota, meet at a barrier, and repeat — the
    /// high-contention wave regime the paper's bounds are stated for.
    Bursty {
        /// Number of aligned bursts the run is divided into.
        phases: usize,
    },
    /// Skewed thread-to-wire assignment: thread `i` presents identity
    /// `i % groups`, so `groups < threads` piles several threads onto the
    /// same input wire of a network-backed counter.
    Skewed {
        /// Number of distinct identities presented (`>= 1`).
        groups: usize,
    },
    /// Thread arrival/departure churn: thread `i` delays its start by
    /// `i * stagger_micros` and leaves as soon as its quota is done, so
    /// the active thread count ramps up and back down during the run.
    Churn {
        /// Arrival stagger between consecutive threads, in microseconds.
        stagger_micros: u64,
    },
    /// Oscillating thread counts: the run is divided into barrier-aligned
    /// pulses in which the two halves of the thread pool alternate — one
    /// half works while the other blocks at the pulse barrier — so the
    /// active thread count swings between `threads / 2` and `threads`
    /// over and over (everyone works the final pulse to drain quotas).
    /// This is the repeated ramp-up/ramp-down regime that exposes stale
    /// parked offers in collision layers.
    Oscillating {
        /// Number of barrier-aligned pulses (`>= 1`).
        pulses: usize,
    },
    /// NUMA-style wire pinning: the thread pool is split into `nodes`
    /// contiguous blocks and every thread of a block presents its node id
    /// as identity, so each "socket"'s threads funnel into one node-local
    /// input wire while the remaining wires sit idle — maximal per-wire
    /// pressure with node-local collision partners.
    Pinned {
        /// Number of NUMA nodes modeled (`1..=threads`).
        nodes: usize,
    },
}

impl Scenario {
    /// A short stable label used in tables and JSON output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Scenario::Steady => "steady".to_owned(),
            Scenario::Bursty { phases } => format!("bursty/{phases}"),
            Scenario::Skewed { groups } => format!("skewed/{groups}"),
            Scenario::Churn { stagger_micros } => format!("churn/{stagger_micros}us"),
            Scenario::Oscillating { pulses } => format!("oscillating/{pulses}"),
            Scenario::Pinned { nodes } => format!("pinned/{nodes}"),
        }
    }
}

/// How many values each operation obtains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// Every operation obtains exactly `k` values: `1` uses
    /// [`SharedCounter::next`], `k > 1` uses [`SharedCounter::next_batch`].
    Fixed(usize),
    /// Every operation draws its size from `1..=max_k`, deterministically
    /// per thread via [`counting_sim::batch_size_sequence`] — the same
    /// stream the simulator's arena model replays, so simulated and
    /// real-hardware runs process identical request sequences. This is
    /// the workload whose exact-range guarantee needs the elimination
    /// layer (raw stride reservations leave gaps under mixed sizes).
    Mixed {
        /// Largest batch size drawn (sizes are uniform in `1..=max_k`).
        max_k: usize,
        /// Seed of the deterministic size stream.
        seed: u64,
    },
}

impl Batching {
    /// A short stable label used in tables and JSON output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Batching::Fixed(k) => k.to_string(),
            Batching::Mixed { max_k, .. } => format!("mixed/{max_k}"),
        }
    }

    /// The infinite per-thread sequence of operation sizes.
    fn sizes(&self, thread_id: usize) -> Box<dyn Iterator<Item = usize>> {
        match *self {
            Batching::Fixed(k) => Box::new(std::iter::repeat(k)),
            Batching::Mixed { max_k, seed } => {
                Box::new(counting_sim::batch_size_sequence(seed, thread_id as u64, max_k))
            }
        }
    }

    /// Total values obtained by one thread over `ops` operations.
    fn values_per_thread(&self, thread_id: usize, ops: u64) -> u64 {
        match *self {
            Batching::Fixed(k) => ops * k as u64,
            Batching::Mixed { .. } => {
                self.sizes(thread_id).take(ops as usize).map(|k| k as u64).sum()
            }
        }
    }
}

/// Configuration of one stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Number of real threads driving the counter.
    pub threads: usize,
    /// Operations (calls to `next` or `next_batch`) per thread.
    pub ops_per_thread: u64,
    /// Values per operation: uniform [`Batching::Fixed`] or the
    /// deterministic mixed-size stream [`Batching::Mixed`].
    pub batch: Batching,
    /// The workload shape.
    pub scenario: Scenario,
    /// Whether to timestamp every operation and measure linearizability
    /// violations (costs two clock reads per operation plus memory
    /// proportional to the number of values).
    pub record_tokens: bool,
}

impl StressConfig {
    /// A steady workload with `threads` threads and `ops_per_thread`
    /// unbatched operations each; invariant checking only.
    #[must_use]
    pub fn steady(threads: usize, ops_per_thread: u64) -> Self {
        Self {
            threads,
            ops_per_thread,
            batch: Batching::Fixed(1),
            scenario: Scenario::Steady,
            record_tokens: false,
        }
    }

    /// The total number of values the run hands out (for mixed batching,
    /// computed by replaying the deterministic size streams).
    #[must_use]
    pub fn total_values(&self) -> u64 {
        (0..self.threads).map(|tid| self.batch.values_per_thread(tid, self.ops_per_thread)).sum()
    }
}

/// The outcome of one stress run: rates plus the online invariant checks.
///
/// The three offender *lists* (`first_duplicates`, `first_missing`,
/// `first_out_of_range`) all share one cap, [`OFFENDER_REPORT_LIMIT`]:
/// each names at most that many example values, while the corresponding
/// *counts* (`duplicates`, `missing`, `out_of_range`) are always exact.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StressReport {
    /// Description of the counter under test.
    pub counter: String,
    /// The scenario label (see [`Scenario::label`]).
    pub scenario: String,
    /// Number of threads that drove the counter.
    pub threads: usize,
    /// The batching label (see [`Batching::label`]; `"1"` = unbatched).
    pub batch: String,
    /// Total values handed out.
    pub total_values: u64,
    /// Values handed out more than once (must be `0` for a correct
    /// counter).
    pub duplicates: u64,
    /// Values in `0..total_values` never handed out at quiescence (must
    /// be `0` when the run satisfies the range precondition of
    /// [`SharedCounter::next_batch`] — or unconditionally through the
    /// elimination layer).
    pub missing: u64,
    /// Values `>= total_values` handed out (must be `0`).
    pub out_of_range: u64,
    /// The first duplicated values, in hand-out order (at most
    /// [`OFFENDER_REPORT_LIMIT`]) — which values collided, not just how
    /// many.
    pub first_duplicates: Vec<u64>,
    /// The smallest missing values at quiescence (at most
    /// [`OFFENDER_REPORT_LIMIT`]) — which part of the range has the gap.
    pub first_missing: Vec<u64>,
    /// The first out-of-range values, in hand-out order (at most
    /// [`OFFENDER_REPORT_LIMIT`]).
    pub first_out_of_range: Vec<u64>,
    /// Wall-clock seconds of the measured window (start barrier to last
    /// thread done).
    pub elapsed_secs: f64,
    /// Aggregate values handed out per second; `None` when the window was
    /// degenerate (shorter than [`crate::MIN_MEASURED_WINDOW`]), so a
    /// near-zero `--quick` window can never report an absurd rate.
    pub values_per_second: Option<f64>,
    /// Linearizability violations measured from the timestamped records
    /// (`None` unless `record_tokens` was set).
    pub linearizability_violations: Option<u64>,
}

impl StressReport {
    /// `true` if the run handed out exactly the values `0..total_values`,
    /// each once.
    #[must_use]
    pub fn is_exact_range(&self) -> bool {
        self.duplicates == 0 && self.missing == 0 && self.out_of_range == 0
    }

    /// The measured window as a [`Duration`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_secs)
    }
}

/// How many offending values a [`StressReport`] retains verbatim —
/// the one cap shared by **all three** offender lists
/// ([`StressReport::first_duplicates`], [`StressReport::first_missing`],
/// [`StressReport::first_out_of_range`]). Counts are always exact; only
/// the listed examples are capped, and once the cap is reached the
/// mutex-guarded lists are never touched again, so a torrent of
/// violations cannot serialize the workers.
pub const OFFENDER_REPORT_LIMIT: usize = 16;

/// Per-thread bookkeeping shared with the invariant checker.
struct Inspector<'a> {
    bitmap: &'a ValueBitmap,
    duplicates: AtomicU64,
    out_of_range: AtomicU64,
    /// First offending values. Mutex-guarded, but only ever touched on
    /// the (supposedly impossible) failure paths — healthy runs stay
    /// lock-free.
    first_duplicates: Mutex<Vec<u64>>,
    first_out_of_range: Mutex<Vec<u64>>,
}

impl Inspector<'_> {
    fn check(&self, value: u64) {
        if value >= self.bitmap.capacity() {
            // Relaxed: monotone violation tally; the offender list is
            // serialized by its own mutex.
            let seen = self.out_of_range.fetch_add(1, Ordering::Relaxed);
            record_offender(seen, &self.first_out_of_range, value);
        } else if !self.bitmap.mark(value) {
            // Relaxed: monotone violation tally (see above).
            let seen = self.duplicates.fetch_add(1, Ordering::Relaxed);
            record_offender(seen, &self.first_duplicates, value);
        }
    }
}

/// Appends `value` to a capped offender list. `seen` is the number of
/// offenders counted before this one: once the cap is reached the mutex
/// is never touched again, so a torrent of violations (e.g. the
/// expected-gaps demonstration runs) does not serialize the workers.
fn record_offender(seen: u64, list: &Mutex<Vec<u64>>, value: u64) {
    if seen >= OFFENDER_REPORT_LIMIT as u64 {
        return;
    }
    let mut list = list.lock();
    if list.len() < OFFENDER_REPORT_LIMIT {
        list.push(value);
    }
}

/// Drives `counter` through the configured scenario and verifies the
/// Fetch&Increment contract online.
///
/// All threads are released together by a start barrier; the measured
/// window — assembled from worker-side timestamps so it stays accurate
/// even when the coordinating thread is descheduled on an oversubscribed
/// machine — runs from that release to the last thread's completion, so
/// start-up cost is excluded (churn stagger, which is part of the
/// workload, is not).
///
/// # Panics
///
/// Panics if the configuration is degenerate (no threads, no operations,
/// a batch of zero, a skew of zero groups, zero bursty phases or
/// oscillating pulses, or a pinned node count outside `1..=threads`) or
/// if a worker thread panics.
#[must_use]
pub fn run_stress<C: SharedCounter + ?Sized>(counter: &C, config: &StressConfig) -> StressReport {
    assert!(config.threads > 0, "at least one thread is required");
    assert!(config.ops_per_thread > 0, "at least one operation per thread is required");
    match config.batch {
        Batching::Fixed(k) => assert!(k > 0, "batch must be at least 1"),
        Batching::Mixed { max_k, .. } => assert!(max_k > 0, "batch must be at least 1"),
    }
    match config.scenario {
        Scenario::Skewed { groups } => {
            assert!(groups > 0, "skew needs at least one identity group");
        }
        Scenario::Bursty { phases } => assert!(phases > 0, "bursty needs at least one phase"),
        Scenario::Oscillating { pulses } => {
            assert!(pulses > 0, "oscillating needs at least one pulse");
        }
        Scenario::Pinned { nodes } => assert!(
            nodes >= 1 && nodes <= config.threads,
            "pinning needs between 1 and `threads` nodes"
        ),
        Scenario::Steady | Scenario::Churn { .. } => {}
    }

    let m = config.total_values();
    let bitmap = ValueBitmap::new(m);
    let inspector = Inspector {
        bitmap: &bitmap,
        duplicates: AtomicU64::new(0),
        out_of_range: AtomicU64::new(0),
        first_duplicates: Mutex::new(Vec::new()),
        first_out_of_range: Mutex::new(Vec::new()),
    };
    let sync = WorkerSync {
        window: MeasuredWindow::new(config.threads),
        phase_barrier: Barrier::new(config.threads),
    };
    let records: Mutex<Vec<TokenRecord>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for tid in 0..config.threads {
            let inspector = &inspector;
            let sync = &sync;
            let records = &records;
            scope.spawn(move || {
                run_worker(counter, config, tid, inspector, sync, records);
            });
        }
    });
    let elapsed = sync.window.elapsed();

    let linearizability_violations = if config.record_tokens {
        Some(violations(&records.into_inner()).len() as u64)
    } else {
        None
    };
    let elapsed_secs = elapsed.as_secs_f64();
    StressReport {
        counter: counter.describe(),
        scenario: config.scenario.label(),
        threads: config.threads,
        batch: config.batch.label(),
        total_values: m,
        // Relaxed loads: post-join quiescent reads.
        duplicates: inspector.duplicates.load(Ordering::Relaxed),
        missing: bitmap.missing(),
        out_of_range: inspector.out_of_range.load(Ordering::Relaxed),
        first_duplicates: inspector.first_duplicates.into_inner(),
        first_missing: bitmap.missing_values(OFFENDER_REPORT_LIMIT),
        first_out_of_range: inspector.first_out_of_range.into_inner(),
        elapsed_secs,
        values_per_second: crate::rate_over(m, elapsed),
        linearizability_violations,
    }
}

/// Synchronization shared by the stress workers: the measured window
/// (start barrier + worker-side timestamps) and the bursty phase barrier.
struct WorkerSync {
    window: MeasuredWindow,
    phase_barrier: Barrier,
}

/// Whether thread `tid` works during an oscillating pulse: the two halves
/// of the pool alternate, and everyone works the final pulse so the
/// quotas drain.
fn oscillating_active(tid: usize, pulse: usize, pulses: usize) -> bool {
    (pulse + tid).is_multiple_of(2) || pulse + 1 == pulses
}

/// The body of one stress thread.
fn run_worker<C: SharedCounter + ?Sized>(
    counter: &C,
    config: &StressConfig,
    tid: usize,
    inspector: &Inspector<'_>,
    sync: &WorkerSync,
    records: &Mutex<Vec<TokenRecord>>,
) {
    // The identity presented to the counter (input-wire choice).
    let identity = match config.scenario {
        Scenario::Skewed { groups } => tid % groups,
        // All threads of a node funnel into the node's wire.
        Scenario::Pinned { nodes } => tid * nodes / config.threads,
        _ => tid,
    };
    let mut local_records = if config.record_tokens {
        Vec::with_capacity(config.batch.values_per_thread(tid, config.ops_per_thread) as usize)
    } else {
        Vec::new()
    };
    let mut sizes = config.batch.sizes(tid);
    let mut batch_buf: Vec<u64> = Vec::new();

    sync.window.enter();
    if let Scenario::Churn { stagger_micros } = config.scenario {
        // Staggered arrival (inside the measured window — the stagger is
        // part of the workload); departure churn follows from each thread
        // leaving as soon as its quota is done.
        std::thread::sleep(Duration::from_micros(tid as u64 * stagger_micros));
    }

    let phases = match config.scenario {
        Scenario::Bursty { phases } => phases,
        Scenario::Oscillating { pulses } => pulses,
        _ => 1,
    };
    let mut remaining = config.ops_per_thread;
    for phase in 0..phases {
        // Spread the quota over the phases the thread participates in,
        // giving the remainder to the early bursts. An oscillating thread
        // sits out every other pulse (blocked at the pulse barrier), so
        // the active thread count swings while per-thread quotas drain.
        let burst = match config.scenario {
            Scenario::Oscillating { pulses } if !oscillating_active(tid, phase, pulses) => 0,
            Scenario::Oscillating { pulses } => {
                let active_left =
                    (phase..pulses).filter(|&p| oscillating_active(tid, p, pulses)).count() as u64;
                remaining.div_ceil(active_left).min(remaining)
            }
            _ => remaining.div_ceil((phases - phase) as u64).min(remaining),
        };
        for _ in 0..burst {
            let batch = sizes.next().expect("size streams are infinite");
            // SeqCst fences pin the counter operation between its two
            // timestamps on weakly ordered hardware: without them a
            // Relaxed fetch_add could become globally visible after the
            // exit-time clock read, and the linearizability measurement
            // would report phantom violations for the centralized
            // (linearizable) counters.
            let enter_time = if config.record_tokens {
                let t = sync.window.nanos();
                fence(Ordering::SeqCst);
                t
            } else {
                0
            };
            if batch == 1 {
                let value = counter.next(identity);
                if config.record_tokens {
                    // Take the exit timestamp before the bitmap check so
                    // the recorded interval covers only the counter
                    // operation (a widened interval would hide genuine
                    // non-overlap inversions from the violation count).
                    fence(Ordering::SeqCst);
                    let exit_time = sync.window.nanos();
                    inspector.check(value);
                    local_records.push(TokenRecord { process: tid, enter_time, exit_time, value });
                } else {
                    inspector.check(value);
                }
            } else {
                batch_buf.clear();
                counter.next_batch(identity, batch, &mut batch_buf);
                let exit_time = if config.record_tokens {
                    fence(Ordering::SeqCst);
                    sync.window.nanos()
                } else {
                    0
                };
                for &value in &batch_buf {
                    inspector.check(value);
                    if config.record_tokens {
                        local_records.push(TokenRecord {
                            process: tid,
                            enter_time,
                            exit_time,
                            value,
                        });
                    }
                }
            }
        }
        remaining -= burst;
        if phase + 1 < phases {
            // Align the next burst or pulse across all threads (no
            // rendezvous after the last one — it would only stretch the
            // measured window to the slowest thread plus a barrier wake).
            sync.phase_barrier.wait();
        }
    }
    debug_assert_eq!(remaining, 0);
    sync.window.exit();

    if config.record_tokens {
        records.lock().extend(local_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, LockCounter, NetworkCounter};
    use crate::diffracting::DiffractingCounter;
    use crate::elimination::EliminationCounter;
    use counting::counting_network;

    #[test]
    fn bitmap_marks_detect_duplicates_and_gaps() {
        let bitmap = ValueBitmap::new(130);
        assert_eq!(bitmap.capacity(), 130);
        assert!(bitmap.mark(0));
        assert!(bitmap.mark(129));
        assert!(!bitmap.mark(0), "second mark is a duplicate");
        assert!(bitmap.contains(129));
        assert!(!bitmap.contains(64));
        assert!(!bitmap.contains(4_000), "out of capacity is never contained");
        assert_eq!(bitmap.missing(), 128);
        for v in 0..130 {
            let _ = bitmap.mark(v);
        }
        assert_eq!(bitmap.missing(), 0);
    }

    #[test]
    #[should_panic(expected = "outside bitmap capacity")]
    fn bitmap_rejects_values_beyond_capacity() {
        let _ = ValueBitmap::new(10).mark(10);
    }

    #[test]
    fn bitmap_reports_which_values_are_missing() {
        let bitmap = ValueBitmap::new(200);
        for v in 0..200 {
            if v != 3 && v != 64 && v != 199 {
                let _ = bitmap.mark(v);
            }
        }
        assert_eq!(bitmap.missing_values(16), vec![3, 64, 199]);
        assert_eq!(bitmap.missing_values(2), vec![3, 64], "the limit caps the listing");
        assert_eq!(bitmap.missing_values(0), Vec::<u64>::new());
        let _ = bitmap.mark(3);
        let _ = bitmap.mark(64);
        let _ = bitmap.mark(199);
        assert!(bitmap.missing_values(16).is_empty());
    }

    #[test]
    fn steady_run_verifies_exact_range() {
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let report = run_stress(&counter, &StressConfig::steady(8, 500));
        assert_eq!(report.total_values, 4_000);
        assert!(report.is_exact_range(), "{report:?}");
        assert!(report.values_per_second.expect("window long enough to measure") > 0.0);
        assert_eq!(report.counter, "C(8,8)");
        assert_eq!(report.scenario, "steady");
        assert!(report.linearizability_violations.is_none());
        assert!(report.elapsed() > Duration::ZERO);
    }

    #[test]
    fn every_scenario_passes_on_every_runtime_counter() {
        type CounterFactory = fn(&balnet::Network) -> Box<dyn SharedCounter>;
        let net = counting_network(4, 8).expect("valid");
        // A counter hands out each value once, so every run needs a fresh
        // instance.
        let make: [CounterFactory; 4] = [
            |net| Box::new(NetworkCounter::new("C(4,8)", net)),
            |_| Box::new(DiffractingCounter::new(8, 2, 16)),
            |_| Box::new(CentralCounter::new()),
            |_| Box::new(LockCounter::new()),
        ];
        let scenarios = [
            Scenario::Steady,
            Scenario::Bursty { phases: 4 },
            Scenario::Skewed { groups: 2 },
            Scenario::Churn { stagger_micros: 100 },
            Scenario::Oscillating { pulses: 4 },
            Scenario::Pinned { nodes: 2 },
        ];
        for factory in make {
            for scenario in scenarios {
                let counter = factory(&net);
                let config = StressConfig {
                    threads: 8,
                    ops_per_thread: 120,
                    batch: Batching::Fixed(1),
                    scenario,
                    record_tokens: false,
                };
                let report = run_stress(counter.as_ref(), &config);
                assert!(
                    report.is_exact_range(),
                    "{} under {}: {report:?}",
                    counter.describe(),
                    scenario.label()
                );
            }
        }
    }

    #[test]
    fn batched_runs_verify_exact_range_when_traversals_divide_evenly() {
        // 8 threads × 16 ops = 128 traversals — a multiple of the output
        // width 8 — so stride reservations tile the range exactly.
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let config = StressConfig {
            threads: 8,
            ops_per_thread: 16,
            batch: Batching::Fixed(6),
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress(&counter, &config);
        assert_eq!(report.total_values, 8 * 16 * 6);
        assert!(report.is_exact_range(), "{report:?}");
    }

    #[test]
    fn recorded_runs_measure_linearizability() {
        // The centralized counter is linearizable: its fetch_add happens
        // between the two timestamps, so non-overlapping operations can
        // never invert values.
        let counter = CentralCounter::new();
        let config = StressConfig {
            threads: 8,
            ops_per_thread: 300,
            batch: Batching::Fixed(1),
            scenario: Scenario::Steady,
            record_tokens: true,
        };
        let report = run_stress(&counter, &config);
        assert_eq!(report.linearizability_violations, Some(0));
        assert!(report.is_exact_range());
        // A network counter yields a measurement too (any count is legal —
        // non-linearizability is a possibility, not a certainty, on a
        // given run).
        let net = counting_network(4, 4).expect("valid");
        let network = NetworkCounter::new("C(4,4)", &net);
        let report = run_stress(&network, &config);
        assert!(report.linearizability_violations.is_some());
        assert!(report.is_exact_range());
    }

    #[test]
    fn duplicate_and_gap_detection_actually_fires() {
        // A deliberately broken counter: every thread re-hands the same
        // values. The harness must report duplicates and gaps, not panic.
        struct Broken(AtomicU64);
        impl SharedCounter for Broken {
            fn next(&self, _thread_id: usize) -> u64 {
                // Hands out 0, 1, 0, 1, ... and occasionally escapes the
                // range entirely.
                let n = self.0.fetch_add(1, Ordering::Relaxed);
                if n % 10 == 9 {
                    u64::MAX
                } else {
                    n % 2
                }
            }
            fn describe(&self) -> String {
                "broken".into()
            }
        }
        let report = run_stress(&Broken(AtomicU64::new(0)), &StressConfig::steady(4, 100));
        assert!(!report.is_exact_range());
        assert!(report.duplicates > 0, "{report:?}");
        assert!(report.out_of_range > 0, "{report:?}");
        assert!(report.missing > 0, "{report:?}");
        // The offenders themselves are named (capped), not just counted.
        assert!(!report.first_duplicates.is_empty());
        assert!(report.first_duplicates.len() <= OFFENDER_REPORT_LIMIT);
        assert!(report.first_duplicates.iter().all(|&v| v <= 1), "only 0 and 1 repeat");
        assert_eq!(report.first_out_of_range, vec![u64::MAX; report.first_out_of_range.len()]);
        assert!(!report.first_out_of_range.is_empty());
        assert!(report.first_missing.first().is_some_and(|&v| v >= 2), "0 and 1 were handed out");
    }

    #[test]
    fn offender_lists_share_one_cap_and_counts_stay_exact() {
        // A counter that hands out nothing but zeros floods every failure
        // channel far past the cap: each list must stop at exactly
        // OFFENDER_REPORT_LIMIT examples while the counts remain exact.
        struct AlwaysZero;
        impl SharedCounter for AlwaysZero {
            fn next(&self, _thread_id: usize) -> u64 {
                0
            }
            fn describe(&self) -> String {
                "always zero".into()
            }
        }
        let threads = 4;
        let ops = 100;
        let report = run_stress(&AlwaysZero, &StressConfig::steady(threads, ops));
        let m = (threads as u64) * ops;
        // One thread marked 0 first; every other hand-out is a duplicate.
        assert_eq!(report.duplicates, m - 1, "counts are exact, not capped");
        assert_eq!(report.missing, m - 1, "only value 0 was ever produced");
        assert_eq!(report.first_duplicates.len(), OFFENDER_REPORT_LIMIT);
        assert_eq!(report.first_missing.len(), OFFENDER_REPORT_LIMIT);
        assert!(report.first_duplicates.iter().all(|&v| v == 0));
        assert_eq!(
            report.first_missing,
            (1..=OFFENDER_REPORT_LIMIT as u64).collect::<Vec<_>>(),
            "the smallest missing values, in order, up to the shared cap"
        );
        assert!(report.first_out_of_range.is_empty(), "nothing escaped the range");
        assert_eq!(report.out_of_range, 0);
    }

    #[test]
    fn scenario_and_batching_labels_are_stable() {
        assert_eq!(Scenario::Steady.label(), "steady");
        assert_eq!(Scenario::Bursty { phases: 4 }.label(), "bursty/4");
        assert_eq!(Scenario::Skewed { groups: 2 }.label(), "skewed/2");
        assert_eq!(Scenario::Churn { stagger_micros: 100 }.label(), "churn/100us");
        assert_eq!(Scenario::Oscillating { pulses: 6 }.label(), "oscillating/6");
        assert_eq!(Scenario::Pinned { nodes: 2 }.label(), "pinned/2");
        assert_eq!(Batching::Fixed(1).label(), "1");
        assert_eq!(Batching::Fixed(8).label(), "8");
        assert_eq!(Batching::Mixed { max_k: 32, seed: 7 }.label(), "mixed/32");
    }

    #[test]
    fn mixed_batching_totals_replay_the_shared_stream() {
        let batch = Batching::Mixed { max_k: 8, seed: 11 };
        let config = StressConfig { batch, ..StressConfig::steady(4, 50) };
        let by_hand: u64 = (0..4)
            .map(|tid| {
                counting_sim::batch_size_sequence(11, tid, 8)
                    .take(50)
                    .map(|k| k as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(config.total_values(), by_hand);
        // Sanity: genuinely mixed, not accidentally constant.
        let sizes: Vec<usize> = counting_sim::batch_size_sequence(11, 0, 8).take(50).collect();
        assert!(sizes.iter().any(|&k| k != sizes[0]));
    }

    #[test]
    fn mixed_batches_through_the_elimination_layer_verify_exact_range() {
        // The headline workload: random batch sizes, an op count with no
        // divisibility relationship to the output width — through the
        // elimination layer the range check must hold unconditionally.
        let net = counting_network(8, 8).expect("valid");
        let counter = EliminationCounter::new(NetworkCounter::new("C(8,8)", &net));
        let config = StressConfig {
            threads: 8,
            ops_per_thread: 123,
            batch: Batching::Mixed { max_k: 16, seed: 3 },
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress(&counter, &config);
        assert!(report.is_exact_range(), "{report:?}");
        assert_eq!(report.batch, "mixed/16");
    }

    #[test]
    fn mixed_batches_on_raw_stride_reservations_leave_reported_gaps() {
        // The caveat the layer exists for, demonstrated deterministically
        // (one thread, so traversal order is fixed): mixed-size stride
        // reservations do not tile, and the report now names the first
        // missing values instead of only counting them.
        let net = counting_network(4, 4).expect("valid");
        let counter = NetworkCounter::new("C(4,4)", &net);
        let config = StressConfig {
            threads: 1,
            ops_per_thread: 40,
            batch: Batching::Mixed { max_k: 8, seed: 5 },
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress(&counter, &config);
        assert!(report.missing > 0, "mixed strides should gap: {report:?}");
        assert!(!report.first_missing.is_empty());
        assert!(report.first_missing.len() <= OFFENDER_REPORT_LIMIT);
        assert!(report.first_missing.iter().all(|&v| v < report.total_values));
    }

    #[test]
    fn oscillating_and_pinned_runs_complete_their_quotas() {
        let counter = CentralCounter::new();
        let config = StressConfig {
            scenario: Scenario::Oscillating { pulses: 7 },
            ..StressConfig::steady(8, 100)
        };
        let report = run_stress(&counter, &config);
        assert!(report.is_exact_range(), "{report:?}");
        assert_eq!(report.scenario, "oscillating/7");

        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let config = StressConfig {
            scenario: Scenario::Pinned { nodes: 2 },
            ..StressConfig::steady(8, 100)
        };
        let report = run_stress(&counter, &config);
        assert!(report.is_exact_range(), "{report:?}");
        assert_eq!(report.scenario, "pinned/2");
    }

    #[test]
    #[should_panic(expected = "between 1 and `threads` nodes")]
    fn pinned_rejects_more_nodes_than_threads() {
        let config =
            StressConfig { scenario: Scenario::Pinned { nodes: 9 }, ..StressConfig::steady(8, 10) };
        let _ = run_stress(&CentralCounter::new(), &config);
    }

    #[test]
    fn report_serializes_to_json() {
        let counter = CentralCounter::new();
        let report = run_stress(&counter, &StressConfig::steady(2, 50));
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"counter\":\"central fetch_add\""), "{json}");
        assert!(json.contains("\"duplicates\":0"), "{json}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_stress(&CentralCounter::new(), &StressConfig::steady(0, 1));
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        let config = StressConfig { batch: Batching::Fixed(0), ..StressConfig::steady(1, 1) };
        let _ = run_stress(&CentralCounter::new(), &config);
    }
}
