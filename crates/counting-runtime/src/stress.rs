//! Real-thread stress driver with online invariant checking.
//!
//! The simulator in `counting-sim` explores adversarial *schedules*; this
//! module is its hardware counterpart: it tortures any [`SharedCounter`]
//! with real threads under configurable workload [`Scenario`]s — steady
//! saturation, barrier-aligned bursts, skewed thread-to-wire assignment,
//! and thread arrival/departure churn — while checking the
//! Fetch&Increment contract *online*:
//!
//! * every issued value is marked in a [`ValueBitmap`] (an array of atomic
//!   words, one `fetch_or` per value), so duplicates are detected the
//!   moment they happen and the exact-range property (`0..m` with no gaps
//!   at quiescence) is verified for millions of operations without a
//!   mutex-guarded `HashSet`;
//! * optionally, every operation is timestamped and the records are fed
//!   to [`counting_sim::linearizability::violations`], measuring (not
//!   just asserting) how non-linearizable a counter is on real hardware
//!   (Section 1.4.2: counting networks trade linearizability for
//!   throughput).
//!
//! All scenarios exclude thread start-up from the measured window via a
//! start barrier, so the reported rates are steady-state.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use counting_sim::linearizability::violations;
use counting_sim::TokenRecord;
use parking_lot::Mutex;
use serde::Serialize;

use crate::counter::SharedCounter;
use crate::throughput::MeasuredWindow;

/// A concurrent bitmap over the value range `0..capacity`, used to check
/// uniqueness online and exact-range coverage at quiescence.
///
/// The bitmap is sharded at word granularity: marking value `v` is a
/// single `fetch_or` on word `v / 64`, so two marks contend only when
/// their values fall into the same 64-value shard — negligible for the
/// scattered value streams a counting network produces.
#[derive(Debug)]
pub struct ValueBitmap {
    words: Box<[AtomicU64]>,
    capacity: u64,
}

impl ValueBitmap {
    /// Creates a bitmap able to track the values `0..capacity`.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        let words = (0..capacity.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, capacity }
    }

    /// The tracked value range `0..capacity`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Marks `value` as seen. Returns `true` if it was new, `false` if it
    /// had already been marked — i.e. a duplicate hand-out.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn mark(&self, value: u64) -> bool {
        assert!(value < self.capacity, "value {value} outside bitmap capacity {}", self.capacity);
        let bit = 1u64 << (value % 64);
        self.words[(value / 64) as usize].fetch_or(bit, Ordering::Relaxed) & bit == 0
    }

    /// Whether `value` has been marked.
    #[must_use]
    pub fn contains(&self, value: u64) -> bool {
        value < self.capacity
            && self.words[(value / 64) as usize].load(Ordering::Relaxed) & (1 << (value % 64)) != 0
    }

    /// The number of values in `0..capacity` not marked yet. Exact only at
    /// quiescence (no `mark` in flight).
    #[must_use]
    pub fn missing(&self) -> u64 {
        let set: u64 =
            self.words.iter().map(|w| u64::from(w.load(Ordering::Relaxed).count_ones())).sum();
        self.capacity - set
    }
}

/// A workload shape for [`run_stress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Every thread issues its operations back to back.
    Steady,
    /// Operations happen in barrier-aligned bursts: the threads blast a
    /// slice of their quota, meet at a barrier, and repeat — the
    /// high-contention wave regime the paper's bounds are stated for.
    Bursty {
        /// Number of aligned bursts the run is divided into.
        phases: usize,
    },
    /// Skewed thread-to-wire assignment: thread `i` presents identity
    /// `i % groups`, so `groups < threads` piles several threads onto the
    /// same input wire of a network-backed counter.
    Skewed {
        /// Number of distinct identities presented (`>= 1`).
        groups: usize,
    },
    /// Thread arrival/departure churn: thread `i` delays its start by
    /// `i * stagger_micros` and leaves as soon as its quota is done, so
    /// the active thread count ramps up and back down during the run.
    Churn {
        /// Arrival stagger between consecutive threads, in microseconds.
        stagger_micros: u64,
    },
}

impl Scenario {
    /// A short stable label used in tables and JSON output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Scenario::Steady => "steady".to_owned(),
            Scenario::Bursty { phases } => format!("bursty/{phases}"),
            Scenario::Skewed { groups } => format!("skewed/{groups}"),
            Scenario::Churn { stagger_micros } => format!("churn/{stagger_micros}us"),
        }
    }
}

/// Configuration of one stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressConfig {
    /// Number of real threads driving the counter.
    pub threads: usize,
    /// Operations (calls to `next` or `next_batch`) per thread.
    pub ops_per_thread: u64,
    /// Values per operation: `1` uses [`SharedCounter::next`], `k > 1`
    /// uses [`SharedCounter::next_batch`] with batches of `k`.
    pub batch: usize,
    /// The workload shape.
    pub scenario: Scenario,
    /// Whether to timestamp every operation and measure linearizability
    /// violations (costs two clock reads per operation plus memory
    /// proportional to the number of values).
    pub record_tokens: bool,
}

impl StressConfig {
    /// A steady workload with `threads` threads and `ops_per_thread`
    /// unbatched operations each; invariant checking only.
    #[must_use]
    pub fn steady(threads: usize, ops_per_thread: u64) -> Self {
        Self { threads, ops_per_thread, batch: 1, scenario: Scenario::Steady, record_tokens: false }
    }

    /// The total number of values the run hands out.
    #[must_use]
    pub fn total_values(&self) -> u64 {
        self.threads as u64 * self.ops_per_thread * self.batch as u64
    }
}

/// The outcome of one stress run: rates plus the online invariant checks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StressReport {
    /// Description of the counter under test.
    pub counter: String,
    /// The scenario label (see [`Scenario::label`]).
    pub scenario: String,
    /// Number of threads that drove the counter.
    pub threads: usize,
    /// Values per operation (`1` = unbatched).
    pub batch: usize,
    /// Total values handed out (`threads × ops_per_thread × batch`).
    pub total_values: u64,
    /// Values handed out more than once (must be `0` for a correct
    /// counter).
    pub duplicates: u64,
    /// Values in `0..total_values` never handed out at quiescence (must
    /// be `0` when the run satisfies the range precondition of
    /// [`SharedCounter::next_batch`]).
    pub missing: u64,
    /// Values `>= total_values` handed out (must be `0`).
    pub out_of_range: u64,
    /// Wall-clock seconds of the measured window (start barrier to last
    /// thread done).
    pub elapsed_secs: f64,
    /// Aggregate values handed out per second.
    pub values_per_second: f64,
    /// Linearizability violations measured from the timestamped records
    /// (`None` unless `record_tokens` was set).
    pub linearizability_violations: Option<u64>,
}

impl StressReport {
    /// `true` if the run handed out exactly the values `0..total_values`,
    /// each once.
    #[must_use]
    pub fn is_exact_range(&self) -> bool {
        self.duplicates == 0 && self.missing == 0 && self.out_of_range == 0
    }

    /// The measured window as a [`Duration`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_secs)
    }
}

/// Per-thread bookkeeping shared with the invariant checker.
struct Inspector<'a> {
    bitmap: &'a ValueBitmap,
    duplicates: AtomicU64,
    out_of_range: AtomicU64,
}

impl Inspector<'_> {
    fn check(&self, value: u64) {
        if value >= self.bitmap.capacity() {
            self.out_of_range.fetch_add(1, Ordering::Relaxed);
        } else if !self.bitmap.mark(value) {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drives `counter` through the configured scenario and verifies the
/// Fetch&Increment contract online.
///
/// All threads are released together by a start barrier; the measured
/// window — assembled from worker-side timestamps so it stays accurate
/// even when the coordinating thread is descheduled on an oversubscribed
/// machine — runs from that release to the last thread's completion, so
/// start-up cost is excluded (churn stagger, which is part of the
/// workload, is not).
///
/// # Panics
///
/// Panics if the configuration is degenerate (no threads, no operations,
/// batch of zero, a skew of zero groups, or zero bursty phases) or if a
/// worker thread panics.
#[must_use]
pub fn run_stress<C: SharedCounter + ?Sized>(counter: &C, config: &StressConfig) -> StressReport {
    assert!(config.threads > 0, "at least one thread is required");
    assert!(config.ops_per_thread > 0, "at least one operation per thread is required");
    assert!(config.batch > 0, "batch must be at least 1");
    if let Scenario::Skewed { groups } = config.scenario {
        assert!(groups > 0, "skew needs at least one identity group");
    }
    if let Scenario::Bursty { phases } = config.scenario {
        assert!(phases > 0, "bursty needs at least one phase");
    }

    let m = config.total_values();
    let bitmap = ValueBitmap::new(m);
    let inspector = Inspector {
        bitmap: &bitmap,
        duplicates: AtomicU64::new(0),
        out_of_range: AtomicU64::new(0),
    };
    let sync = WorkerSync {
        window: MeasuredWindow::new(config.threads),
        phase_barrier: Barrier::new(config.threads),
    };
    let records: Mutex<Vec<TokenRecord>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for tid in 0..config.threads {
            let inspector = &inspector;
            let sync = &sync;
            let records = &records;
            scope.spawn(move || {
                run_worker(counter, config, tid, inspector, sync, records);
            });
        }
    });
    let elapsed = sync.window.elapsed();

    let linearizability_violations = if config.record_tokens {
        Some(violations(&records.into_inner()).len() as u64)
    } else {
        None
    };
    let elapsed_secs = elapsed.as_secs_f64();
    StressReport {
        counter: counter.describe(),
        scenario: config.scenario.label(),
        threads: config.threads,
        batch: config.batch,
        total_values: m,
        duplicates: inspector.duplicates.load(Ordering::Relaxed),
        missing: bitmap.missing(),
        out_of_range: inspector.out_of_range.load(Ordering::Relaxed),
        elapsed_secs,
        values_per_second: m as f64 / elapsed_secs.max(f64::EPSILON),
        linearizability_violations,
    }
}

/// Synchronization shared by the stress workers: the measured window
/// (start barrier + worker-side timestamps) and the bursty phase barrier.
struct WorkerSync {
    window: MeasuredWindow,
    phase_barrier: Barrier,
}

/// The body of one stress thread.
fn run_worker<C: SharedCounter + ?Sized>(
    counter: &C,
    config: &StressConfig,
    tid: usize,
    inspector: &Inspector<'_>,
    sync: &WorkerSync,
    records: &Mutex<Vec<TokenRecord>>,
) {
    // The identity presented to the counter (input-wire choice).
    let identity = match config.scenario {
        Scenario::Skewed { groups } => tid % groups,
        _ => tid,
    };
    let mut local_records = if config.record_tokens {
        Vec::with_capacity((config.ops_per_thread * config.batch as u64) as usize)
    } else {
        Vec::new()
    };
    let mut batch_buf: Vec<u64> = Vec::with_capacity(config.batch);

    sync.window.enter();
    if let Scenario::Churn { stagger_micros } = config.scenario {
        // Staggered arrival (inside the measured window — the stagger is
        // part of the workload); departure churn follows from each thread
        // leaving as soon as its quota is done.
        std::thread::sleep(Duration::from_micros(tid as u64 * stagger_micros));
    }

    let phases = match config.scenario {
        Scenario::Bursty { phases } => phases as u64,
        _ => 1,
    };
    let mut remaining = config.ops_per_thread;
    for phase in 0..phases {
        // Spread the quota over the phases, giving the remainder to the
        // early bursts.
        let burst = remaining.div_ceil(phases - phase).min(remaining);
        for _ in 0..burst {
            // SeqCst fences pin the counter operation between its two
            // timestamps on weakly ordered hardware: without them a
            // Relaxed fetch_add could become globally visible after the
            // exit-time clock read, and the linearizability measurement
            // would report phantom violations for the centralized
            // (linearizable) counters.
            let enter_time = if config.record_tokens {
                let t = sync.window.nanos();
                fence(Ordering::SeqCst);
                t
            } else {
                0
            };
            if config.batch == 1 {
                let value = counter.next(identity);
                if config.record_tokens {
                    // Take the exit timestamp before the bitmap check so
                    // the recorded interval covers only the counter
                    // operation (a widened interval would hide genuine
                    // non-overlap inversions from the violation count).
                    fence(Ordering::SeqCst);
                    let exit_time = sync.window.nanos();
                    inspector.check(value);
                    local_records.push(TokenRecord { process: tid, enter_time, exit_time, value });
                } else {
                    inspector.check(value);
                }
            } else {
                batch_buf.clear();
                counter.next_batch(identity, config.batch, &mut batch_buf);
                let exit_time = if config.record_tokens {
                    fence(Ordering::SeqCst);
                    sync.window.nanos()
                } else {
                    0
                };
                for &value in &batch_buf {
                    inspector.check(value);
                    if config.record_tokens {
                        local_records.push(TokenRecord {
                            process: tid,
                            enter_time,
                            exit_time,
                            value,
                        });
                    }
                }
            }
        }
        remaining -= burst;
        if phase + 1 < phases {
            // Align the next burst across all threads (no rendezvous
            // after the last burst — it would only stretch the measured
            // window to the slowest thread plus a barrier wake).
            sync.phase_barrier.wait();
        }
    }
    debug_assert_eq!(remaining, 0);
    sync.window.exit();

    if config.record_tokens {
        records.lock().extend(local_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CentralCounter, LockCounter, NetworkCounter};
    use crate::diffracting::DiffractingCounter;
    use counting::counting_network;

    #[test]
    fn bitmap_marks_detect_duplicates_and_gaps() {
        let bitmap = ValueBitmap::new(130);
        assert_eq!(bitmap.capacity(), 130);
        assert!(bitmap.mark(0));
        assert!(bitmap.mark(129));
        assert!(!bitmap.mark(0), "second mark is a duplicate");
        assert!(bitmap.contains(129));
        assert!(!bitmap.contains(64));
        assert!(!bitmap.contains(4_000), "out of capacity is never contained");
        assert_eq!(bitmap.missing(), 128);
        for v in 0..130 {
            let _ = bitmap.mark(v);
        }
        assert_eq!(bitmap.missing(), 0);
    }

    #[test]
    #[should_panic(expected = "outside bitmap capacity")]
    fn bitmap_rejects_values_beyond_capacity() {
        let _ = ValueBitmap::new(10).mark(10);
    }

    #[test]
    fn steady_run_verifies_exact_range() {
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let report = run_stress(&counter, &StressConfig::steady(8, 500));
        assert_eq!(report.total_values, 4_000);
        assert!(report.is_exact_range(), "{report:?}");
        assert!(report.values_per_second > 0.0);
        assert_eq!(report.counter, "C(8,8)");
        assert_eq!(report.scenario, "steady");
        assert!(report.linearizability_violations.is_none());
        assert!(report.elapsed() > Duration::ZERO);
    }

    #[test]
    fn every_scenario_passes_on_every_runtime_counter() {
        type CounterFactory = fn(&balnet::Network) -> Box<dyn SharedCounter>;
        let net = counting_network(4, 8).expect("valid");
        // A counter hands out each value once, so every run needs a fresh
        // instance.
        let make: [CounterFactory; 4] = [
            |net| Box::new(NetworkCounter::new("C(4,8)", net)),
            |_| Box::new(DiffractingCounter::new(8, 2, 16)),
            |_| Box::new(CentralCounter::new()),
            |_| Box::new(LockCounter::new()),
        ];
        let scenarios = [
            Scenario::Steady,
            Scenario::Bursty { phases: 4 },
            Scenario::Skewed { groups: 2 },
            Scenario::Churn { stagger_micros: 100 },
        ];
        for factory in make {
            for scenario in scenarios {
                let counter = factory(&net);
                let config = StressConfig {
                    threads: 8,
                    ops_per_thread: 120,
                    batch: 1,
                    scenario,
                    record_tokens: false,
                };
                let report = run_stress(counter.as_ref(), &config);
                assert!(
                    report.is_exact_range(),
                    "{} under {}: {report:?}",
                    counter.describe(),
                    scenario.label()
                );
            }
        }
    }

    #[test]
    fn batched_runs_verify_exact_range_when_traversals_divide_evenly() {
        // 8 threads × 16 ops = 128 traversals — a multiple of the output
        // width 8 — so stride reservations tile the range exactly.
        let net = counting_network(8, 8).expect("valid");
        let counter = NetworkCounter::new("C(8,8)", &net);
        let config = StressConfig {
            threads: 8,
            ops_per_thread: 16,
            batch: 6,
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress(&counter, &config);
        assert_eq!(report.total_values, 8 * 16 * 6);
        assert!(report.is_exact_range(), "{report:?}");
    }

    #[test]
    fn recorded_runs_measure_linearizability() {
        // The centralized counter is linearizable: its fetch_add happens
        // between the two timestamps, so non-overlapping operations can
        // never invert values.
        let counter = CentralCounter::new();
        let config = StressConfig {
            threads: 8,
            ops_per_thread: 300,
            batch: 1,
            scenario: Scenario::Steady,
            record_tokens: true,
        };
        let report = run_stress(&counter, &config);
        assert_eq!(report.linearizability_violations, Some(0));
        assert!(report.is_exact_range());
        // A network counter yields a measurement too (any count is legal —
        // non-linearizability is a possibility, not a certainty, on a
        // given run).
        let net = counting_network(4, 4).expect("valid");
        let network = NetworkCounter::new("C(4,4)", &net);
        let report = run_stress(&network, &config);
        assert!(report.linearizability_violations.is_some());
        assert!(report.is_exact_range());
    }

    #[test]
    fn duplicate_and_gap_detection_actually_fires() {
        // A deliberately broken counter: every thread re-hands the same
        // values. The harness must report duplicates and gaps, not panic.
        struct Broken(AtomicU64);
        impl SharedCounter for Broken {
            fn next(&self, _thread_id: usize) -> u64 {
                // Hands out 0, 1, 0, 1, ... and occasionally escapes the
                // range entirely.
                let n = self.0.fetch_add(1, Ordering::Relaxed);
                if n % 10 == 9 {
                    u64::MAX
                } else {
                    n % 2
                }
            }
            fn describe(&self) -> String {
                "broken".into()
            }
        }
        let report = run_stress(&Broken(AtomicU64::new(0)), &StressConfig::steady(4, 100));
        assert!(!report.is_exact_range());
        assert!(report.duplicates > 0, "{report:?}");
        assert!(report.out_of_range > 0, "{report:?}");
        assert!(report.missing > 0, "{report:?}");
    }

    #[test]
    fn scenario_labels_are_stable() {
        assert_eq!(Scenario::Steady.label(), "steady");
        assert_eq!(Scenario::Bursty { phases: 4 }.label(), "bursty/4");
        assert_eq!(Scenario::Skewed { groups: 2 }.label(), "skewed/2");
        assert_eq!(Scenario::Churn { stagger_micros: 100 }.label(), "churn/100us");
    }

    #[test]
    fn report_serializes_to_json() {
        let counter = CentralCounter::new();
        let report = run_stress(&counter, &StressConfig::steady(2, 50));
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"counter\":\"central fetch_add\""), "{json}");
        assert!(json.contains("\"duplicates\":0"), "{json}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_stress(&CentralCounter::new(), &StressConfig::steady(0, 1));
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        let config = StressConfig { batch: 0, ..StressConfig::steady(1, 1) };
        let _ = run_stress(&CentralCounter::new(), &config);
    }
}
