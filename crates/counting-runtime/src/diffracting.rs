//! A runtime diffracting tree with prisms (Shavit & Zemach).
//!
//! Section 1.4.1 discusses the diffracting tree as one of the two known
//! irregular counting networks. Its structural form (a binary tree of
//! `(1,2)`-balancers) is in the `baselines` crate; this module implements
//! the *runtime* technique that makes it interesting in practice: in front
//! of every toggle bit sits a **prism** — an array of exchanger slots in
//! which two concurrent tokens can collide and "diffract", one going to
//! each subtree, without touching the shared toggle at all. Collisions
//! preserve the balance invariant (a pair contributes one token to each
//! side, exactly like two consecutive toggle flips), so the tree remains a
//! counting network while the root hotspot is relieved under high
//! concurrency.
//!
//! The exchanger protocol is intentionally small: every slot is one atomic
//! word cycling through `EMPTY → WAITING → CAPTURED → EMPTY`, with the
//! waiting token spinning for a bounded number of iterations before falling
//! back to the toggle.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

use crate::counter::{BlockReserve, SharedCounter};

const EMPTY: u64 = 0;
const WAITING: u64 = 1;
const CAPTURED: u64 = 2;

/// One tree node: a prism of exchanger slots plus the fallback toggle.
#[derive(Debug)]
struct PrismNode {
    toggle: CachePadded<AtomicU64>,
    prism: Box<[CachePadded<AtomicU64>]>,
}

impl PrismNode {
    fn new(prism_size: usize) -> Self {
        Self {
            toggle: CachePadded::new(AtomicU64::new(0)),
            prism: (0..prism_size.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(EMPTY)))
                .collect(),
        }
    }

    /// Decides which child (`0` = first output, `1` = second) the calling
    /// token takes. Attempts a diffracting collision first and falls back
    /// to the shared toggle. `slot_hint` spreads threads across prism
    /// slots; `spin` bounds the wait for a partner.
    fn traverse(&self, slot_hint: usize, spin: usize, collisions: &AtomicU64) -> usize {
        let slot = &self.prism[slot_hint % self.prism.len()];
        match slot.compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                // We are the waiter. Spin for a partner.
                for _ in 0..spin {
                    if slot.load(Ordering::Acquire) == CAPTURED {
                        slot.store(EMPTY, Ordering::Release);
                        // Relaxed: monotone statistic, never a control input.
                        collisions.fetch_add(1, Ordering::Relaxed);
                        return 0;
                    }
                    std::hint::spin_loop();
                }
                // Timed out: retract the offer — unless a partner slipped in.
                match slot.compare_exchange(WAITING, EMPTY, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {} // no partner; fall through to the toggle
                    Err(_) => {
                        // A partner captured us concurrently.
                        slot.store(EMPTY, Ordering::Release);
                        // Relaxed: monotone statistic, never a control input.
                        collisions.fetch_add(1, Ordering::Relaxed);
                        return 0;
                    }
                }
            }
            Err(current) if current == WAITING => {
                // Someone is waiting: try to capture them.
                if slot
                    .compare_exchange(WAITING, CAPTURED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Relaxed: monotone statistic, never a control input.
                    collisions.fetch_add(1, Ordering::Relaxed);
                    return 1;
                }
            }
            Err(_) => {}
        }
        // Fallback: the classic toggle balancer.
        // Relaxed: the routing decision needs only this RMW's returned
        // value — balancer correctness (the step property) rests on the
        // toggle word's modification order, not on cross-location
        // ordering.
        (self.toggle.fetch_add(1, Ordering::Relaxed) & 1) as usize
    }
}

/// A concurrent Fetch&Increment counter implemented as a diffracting tree
/// with `width` leaves (a power of two).
#[derive(Debug)]
pub struct DiffractingCounter {
    /// Heap-ordered nodes: node `i` has children `2i+1` and `2i+2`; there
    /// are `width - 1` internal nodes.
    nodes: Box<[PrismNode]>,
    /// Per-leaf value dispensers: leaf `i` hands out `i, i+width, ...`.
    dispensers: Box<[CachePadded<AtomicU64>]>,
    width: usize,
    spin: usize,
    collisions: AtomicU64,
    /// Contiguous cursor backing [`BlockReserve`] — a value stream
    /// disjoint from the per-leaf stride dispensers (see the trait docs).
    block_cursor: CachePadded<AtomicU64>,
}

impl DiffractingCounter {
    /// Creates a diffracting tree with `width` leaves (`width` a power of
    /// two `>= 2`), `prism_size` exchanger slots per node, and a spin
    /// budget of `spin` iterations while waiting for a collision partner.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two `>= 2`.
    #[must_use]
    pub fn new(width: usize, prism_size: usize, spin: usize) -> Self {
        assert!(width >= 2 && width.is_power_of_two(), "width must be a power of two >= 2");
        let nodes = (0..width - 1).map(|_| PrismNode::new(prism_size)).collect();
        let dispensers = (0..width as u64).map(|i| CachePadded::new(AtomicU64::new(i))).collect();
        Self {
            nodes,
            dispensers,
            width,
            spin,
            collisions: AtomicU64::new(0),
            block_cursor: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The number of leaves.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of diffracting collisions observed so far (a measure of
    /// how much traffic bypassed the toggles).
    #[must_use]
    pub fn collisions(&self) -> u64 {
        // Relaxed: reporting-only read of a monotone statistic.
        self.collisions.load(Ordering::Relaxed)
    }

    /// Shepherds one token from the root to a leaf and returns the leaf
    /// index. The leaf numbering interleaves the directions (leaf index
    /// bit `j` is the direction taken at depth `j`), matching the
    /// structural diffracting tree of the `baselines` crate, so that the
    /// quiescent leaf counts satisfy the step property.
    fn descend(&self, slot_hint: usize) -> usize {
        let mut node = 0usize; // heap index
        let mut leaf_bits = 0usize;
        let depth = self.width.trailing_zeros() as usize;
        for level in 0..depth {
            let dir = self.nodes[node].traverse(
                slot_hint.wrapping_add(level).wrapping_mul(0x9E37_79B9),
                self.spin,
                &self.collisions,
            );
            leaf_bits |= dir << level;
            node = 2 * node + 1 + dir;
        }
        leaf_bits
    }
}

impl SharedCounter for DiffractingCounter {
    fn next(&self, thread_id: usize) -> u64 {
        let leaf = self.descend(thread_id);
        // Relaxed: uniqueness rests on the dispenser's per-location
        // modification order alone (see NetworkCounter::next).
        self.dispensers[leaf].fetch_add(self.width as u64, Ordering::Relaxed)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        if k == 0 {
            return;
        }
        // Combining: one descent reserves a stride of `k` values from the
        // leaf dispenser (see `SharedCounter::next_batch` for the range
        // semantics of stride reservations).
        let leaf = self.descend(thread_id);
        let w = self.width as u64;
        // Relaxed: stride reservation — same per-location argument as
        // `next`.
        let base = self.dispensers[leaf].fetch_add(w * k as u64, Ordering::Relaxed);
        out.extend((0..k as u64).map(|i| base + i * w));
    }

    fn describe(&self) -> String {
        format!("diffracting tree [{}]", self.width)
    }
}

impl BlockReserve for DiffractingCounter {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        // One descent per block: prism collisions still diffract the
        // traffic on the way down, while the contiguous cursor makes
        // mixed-size blocks tile (per-leaf stride dispensers cannot).
        let _ = self.descend(thread_id);
        // Relaxed: the single cursor's modification order makes blocks
        // contiguous and disjoint by itself.
        self.block_cursor.fetch_add(k as u64, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn run_concurrent(counter: &DiffractingCounter, threads: usize, per_thread: usize) -> Vec<u64> {
        let all = Mutex::new(Vec::with_capacity(threads * per_thread));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        local.push(counter.next(tid));
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        all.into_inner().expect("not poisoned")
    }

    #[test]
    fn sequential_values_are_dense() {
        let counter = DiffractingCounter::new(8, 4, 16);
        let values: Vec<u64> = (0..200).map(|i| counter.next(i)).collect();
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len(), 200);
        assert_eq!(*values.iter().max().expect("non-empty"), 199);
    }

    #[test]
    fn concurrent_values_are_unique_and_dense() {
        for (width, prism, spin) in [(4usize, 2usize, 32usize), (8, 8, 64), (16, 4, 8)] {
            let counter = DiffractingCounter::new(width, prism, spin);
            let threads = 8;
            let per_thread = 3_000;
            let values = run_concurrent(&counter, threads, per_thread);
            let m = (threads * per_thread) as u64;
            let set: HashSet<u64> = values.iter().copied().collect();
            assert_eq!(set.len() as u64, m, "width={width}: duplicates handed out");
            assert!(values.iter().all(|&v| v < m), "width={width}: value out of range");
        }
    }

    #[test]
    fn collisions_happen_under_concurrency() {
        // With a generous spin budget and many threads, at least some
        // tokens should diffract (this is probabilistic but overwhelmingly
        // likely with 8 threads × 5000 ops).
        let counter = DiffractingCounter::new(4, 4, 2_000);
        let _ = run_concurrent(&counter, 8, 5_000);
        assert!(counter.collisions() > 0, "expected at least one diffraction");
    }

    #[test]
    fn zero_spin_degenerates_to_a_toggle_tree_and_still_counts() {
        let counter = DiffractingCounter::new(8, 1, 0);
        let values = run_concurrent(&counter, 4, 2_000);
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m);
        assert!(values.iter().all(|&v| v < m));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_width() {
        let _ = DiffractingCounter::new(6, 2, 8);
    }

    #[test]
    fn concurrent_batches_are_unique_and_dense() {
        let counter = DiffractingCounter::new(8, 4, 32);
        let threads = 8;
        let batches = 200;
        let k = 4;
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(batches * k);
                    for _ in 0..batches {
                        counter.next_batch(tid, k, &mut local);
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        // 1600 descents are a multiple of the 8 leaves, so the stride
        // reservations tile 0..m exactly.
        let m = (threads * batches * k) as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicates handed out");
        assert!(values.iter().all(|&v| v < m), "value out of range");
    }

    // --- prism exchanger protocol, adversarial interleavings -------------

    #[test]
    fn captured_parked_waiter_and_capturer_take_opposite_sides() {
        // A waiter parks in the slot (huge spin bound stands in for a
        // preempted thread that left its WAITING offer published); a
        // second token captures it. The pair must split left/right without
        // touching the toggle.
        let node = PrismNode::new(1);
        let collisions = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| node.traverse(0, 2_000_000_000, &collisions));
            // Wait until the offer is visible, then capture it.
            while node.prism[0].load(Ordering::Acquire) != WAITING {
                std::thread::yield_now();
            }
            let capturer_dir = node.traverse(0, 0, &collisions);
            let waiter_dir = waiter.join().expect("waiter panicked");
            assert_eq!(waiter_dir, 0, "the waiting token goes left");
            assert_eq!(capturer_dir, 1, "the capturing token goes right");
        });
        assert_eq!(collisions.load(Ordering::Relaxed), 2, "both sides count the diffraction");
        assert_eq!(node.toggle.load(Ordering::Relaxed), 0, "the toggle was bypassed");
        assert_eq!(node.prism[0].load(Ordering::Relaxed), EMPTY, "the slot was recycled");
    }

    #[test]
    fn waiter_parked_past_the_spin_bound_falls_back_to_the_toggle() {
        // No partner ever arrives: every token times out after its spin
        // bound, retracts its offer and falls back to the toggle, which
        // must keep the node a perfect balancer.
        let node = PrismNode::new(1);
        let collisions = AtomicU64::new(0);
        let dirs: Vec<usize> = (0..10).map(|_| node.traverse(0, 3, &collisions)).collect();
        assert_eq!(dirs, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1], "toggle alternates");
        assert_eq!(collisions.load(Ordering::Relaxed), 0, "no partner, no diffraction");
        assert_eq!(node.prism[0].load(Ordering::Relaxed), EMPTY, "offers were retracted");
    }

    #[test]
    fn preemption_hostile_schedule_preserves_uniqueness() {
        // Preemption-hostile torture of the full tree: a single prism slot
        // per node, a tiny spin bound, and threads that repeatedly park
        // mid-stream (sleeping stands in for preemption) so WAITING offers
        // routinely outlive their spin bound before a partner shows up.
        // Whichever mix of capture, retraction-race and toggle fallback
        // results, the values must stay unique and dense.
        let counter = DiffractingCounter::new(4, 1, 1);
        let threads = 8;
        let per_thread = 500;
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for op in 0..per_thread {
                        local.push(counter.next(tid));
                        if op % 64 == tid * 8 {
                            // Park long enough that any offer this thread
                            // raced with expires its spin bound.
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        let m = (threads * per_thread) as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicates under preemption-hostile schedule");
        assert!(values.iter().all(|&v| v < m), "value out of range");
        // With spin bound 1 and forced parking, at least some tokens must
        // have taken the toggle fallback path.
        let toggled: u64 = counter.nodes.iter().map(|n| n.toggle.load(Ordering::Relaxed)).sum();
        assert!(toggled > 0, "expected toggle fallbacks under a spin bound of 1");
    }

    #[test]
    fn describe_mentions_the_width() {
        assert!(DiffractingCounter::new(8, 2, 8).describe().contains('8'));
    }

    #[test]
    fn concurrent_mixed_size_blocks_tile_exactly() {
        let counter = DiffractingCounter::new(8, 4, 32);
        let sizes = [5usize, 1, 3, 8, 2, 6, 4, 7];
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for tid in 0..8 {
                let counter = &counter;
                let all = &all;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for &k in &sizes {
                        let base = counter.reserve_block(tid, k);
                        local.extend(base..base + k as u64);
                    }
                    all.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = all.into_inner().expect("not poisoned");
        let m = values.len() as u64;
        let set: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(set.len() as u64, m, "duplicates handed out");
        assert!(values.iter().all(|&v| v < m), "mixed blocks must tile 0..m");
    }
}
