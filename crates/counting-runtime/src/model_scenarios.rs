//! Exhaustive-interleaving scenarios for the elimination arena.
//!
//! Each function builds one fresh [`Scenario`] for
//! [`counting_sim::model::explore`]: a handful of threads batching
//! through a deliberately tiny arena (one or two slots, spin bounds of
//! one or two iterations) so the schedule space stays exhaustively
//! explorable within a small preemption budget, while still crossing
//! every protocol edge — publish, capture, `CLAIMED` hand-off, deposit,
//! timeout retraction, the obligated-fill wait, and (for
//! [`WaitStrategy::Park`]) the modeled park/unpark rendezvous.
//!
//! The quiescence check shared by every scenario asserts the arena's
//! whole contract at once:
//!
//! * the union of all handed-out values tiles `0..total` exactly — no
//!   gap, no duplicate (the paper's Fetch&Increment guarantee under
//!   mixed batch sizes);
//! * every slot has returned to `EMPTY`;
//! * the collision statistic is even (merges credit both sides);
//! * the inner counter's cursor equals `total` — no value was reserved
//!   and then lost.
//!
//! The `*_mutated` variants seed a named protocol mutation (see
//! [`counting_sim::model::mutation_enabled`]) that the checker **must**
//! catch; the model test suite fails if exploration reports them clean.
//! This is the calibration that proves the checker has teeth.

use std::sync::Arc;
use std::time::Duration;

use counting_sim::model::Scenario;

use crate::counter::{CentralCounter, SharedCounter};
use crate::elimination::{EliminationConfig, EliminationCounter};
use crate::waiting::WaitStrategy;

/// The arena under test: the elimination layer over the centralized
/// counter. The inner counter's single `fetch_add` is trivially atomic,
/// so every interesting interleaving lives in the arena's slot words —
/// exactly the cells the model shims instrument.
pub type ModelArena = EliminationCounter<CentralCounter>;

/// A minimal, fully explorable arena: geometry from the arguments, park
/// timeout collapsed to zero (the modeled park ignores wall-clock time
/// anyway — see [`crate::waiting::ParkTable::park_until`]).
fn tiny_arena(slots: usize, spin: usize, probe: usize, strategy: WaitStrategy) -> Arc<ModelArena> {
    Arc::new(EliminationCounter::with_config(
        CentralCounter::new(),
        EliminationConfig { slots, spin, probe, strategy, park_timeout: Duration::from_millis(0) },
    ))
}

/// One worker thread performing a single `next_batch(thread_id, k)` and
/// returning the values it was handed.
fn batcher(
    counter: &Arc<ModelArena>,
    thread_id: usize,
    k: usize,
) -> Box<dyn FnOnce() -> Vec<u64> + Send + 'static> {
    let counter = Arc::clone(counter);
    Box::new(move || {
        let mut out = Vec::new();
        counter.next_batch(thread_id, k, &mut out);
        out
    })
}

/// The shared quiescence invariant (see the module docs).
fn quiescence_check(
    counter: Arc<ModelArena>,
    total: u64,
) -> impl FnOnce(&[Vec<u64>]) -> Result<(), String> + 'static {
    move |outs| {
        let mut values: Vec<u64> = outs.iter().flatten().copied().collect();
        values.sort_unstable();
        let expected: Vec<u64> = (0..total).collect();
        if values != expected {
            return Err(format!("handed-out values must tile 0..{total} exactly, got {values:?}"));
        }
        for (idx, word) in counter.arena_slot_words().into_iter().enumerate() {
            if word != 0 {
                return Err(format!("slot {idx} is {word:#x} at quiescence, expected EMPTY"));
            }
        }
        let collisions = counter.collisions();
        if !collisions.is_multiple_of(2) {
            return Err(format!(
                "collision count {collisions} is odd: a merge must credit both sides"
            ));
        }
        // The check runs post-quiescence on the controller thread, so
        // this probe is outside the modeled schedule.
        let cursor = counter.inner().next(usize::MAX);
        if cursor != total {
            return Err(format!(
                "inner cursor reached {cursor}, expected {total}: a reservation was wasted"
            ));
        }
        Ok(())
    }
}

/// Two threads, one slot: the canonical rendezvous. Thread 0 batches 3,
/// thread 1 batches 5; every schedule must tile `0..8`. Exercises
/// publish → capture → deposit, the timeout retraction, and the
/// retract-vs-capture race (obligated fill), under the given waiting
/// strategy.
#[must_use]
pub fn arena_pair(strategy: WaitStrategy) -> Scenario<Vec<u64>> {
    let counter = tiny_arena(1, 2, 1, strategy);
    let threads = vec![batcher(&counter, 0, 3), batcher(&counter, 1, 5)];
    Scenario::new(threads, quiescence_check(counter, 8))
}

/// Three threads, one slot, a one-iteration spin bound: the smallest
/// configuration where two capturers can race for the same offer while
/// the publisher times out underneath them. Batches of 1, 2 and 3 must
/// tile `0..6`.
#[must_use]
pub fn arena_trio() -> Scenario<Vec<u64>> {
    let counter = tiny_arena(1, 1, 1, WaitStrategy::SpinYield);
    let threads = vec![batcher(&counter, 0, 1), batcher(&counter, 1, 2), batcher(&counter, 2, 3)];
    Scenario::new(threads, quiescence_check(counter, 6))
}

/// [`arena_trio`] with the `arena-skip-claimed` mutation seeded: capture
/// deposits without first moving the slot through `CLAIMED`, so two
/// capturers can consume the same offer and the value stream forks.
/// [`counting_sim::model::explore`] must return a counterexample.
#[must_use]
pub fn arena_trio_mutated() -> Scenario<Vec<u64>> {
    arena_trio().with_mutation("arena-skip-claimed")
}

/// Two slots with a two-slot probe window: thread ids 0 and 2 share home
/// slot 0, thread 1 homes on slot 1, so captures must walk the window
/// and publishes must skip busy slots. Batches of 2, 2 and 1 must tile
/// `0..5`.
#[must_use]
pub fn arena_probe() -> Scenario<Vec<u64>> {
    let counter = tiny_arena(2, 1, 2, WaitStrategy::Spin);
    let threads = vec![batcher(&counter, 0, 2), batcher(&counter, 1, 2), batcher(&counter, 2, 1)];
    Scenario::new(threads, quiescence_check(counter, 5))
}
