//! Exhaustive interleaving checks for the elimination arena (the
//! `model` feature's reason to exist).
//!
//! Run with:
//!
//! ```text
//! cargo test -p counting-runtime --features model --test model_arena
//! ```
//!
//! Three kinds of test live here:
//!
//! * **Exploration** — the real protocol, explored to exhaustion within
//!   a preemption budget, must produce no counterexample.
//! * **Calibration** — a seeded protocol mutation (`arena-skip-claimed`)
//!   must be *caught*, and its trace must replay deterministically. If
//!   this fails, the checker has lost its teeth and every green
//!   exploration above is meaningless.
//! * **Pinned regression** — the calibration counterexample's exact
//!   schedule, replayed against the *fixed* protocol, must pass. This is
//!   the trace-pinning pattern every checker-found bug follows.

#![cfg(feature = "model")]

use counting_runtime::model_scenarios::{arena_pair, arena_probe, arena_trio, arena_trio_mutated};
use counting_runtime::WaitStrategy;
use counting_sim::model::{explore, replay, ModelConfig};

/// Exploration must finish (no budget exhaustion) and find nothing.
fn assert_clean(config: &ModelConfig, name: &str, factory: impl FnMut() -> Scenario) {
    let report = explore(config, factory);
    assert!(
        report.complete,
        "{name}: exploration hit a budget before exhausting the schedule space: {report:?}"
    );
    if let Some(cex) = &report.counterexample {
        panic!("{name}: the checker found a real counterexample:\n{cex}");
    }
    assert!(
        report.executions > 1,
        "{name}: a single execution means no interleaving was actually explored"
    );
}

type Scenario = counting_sim::model::Scenario<Vec<u64>>;

#[test]
fn pair_is_clean_under_every_strategy() {
    let config = ModelConfig::with_preemptions(2);
    for (strategy, name) in [
        (WaitStrategy::Spin, "pair/spin"),
        (WaitStrategy::SpinYield, "pair/spin-yield"),
        (WaitStrategy::Park, "pair/park"),
    ] {
        assert_clean(&config, name, || arena_pair(strategy));
    }
}

#[test]
fn trio_is_clean_with_two_preemptions() {
    assert_clean(&ModelConfig::with_preemptions(2), "trio", arena_trio);
}

#[test]
fn probe_window_is_clean() {
    assert_clean(&ModelConfig::with_preemptions(2), "probe", arena_probe);
}

#[test]
fn skipping_claimed_is_caught_and_replays() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, arena_trio_mutated);
    let cex = report.counterexample.unwrap_or_else(|| {
        panic!(
            "the arena-skip-claimed mutation survived {} executions: \
             the checker has no teeth",
            report.executions
        )
    });

    // The counterexample must replay: same schedule, same verdict.
    let replayed = replay(&config, arena_trio_mutated, &cex.trace)
        .expect_err("the pinned schedule must still fail on the mutated protocol");
    assert_eq!(replayed.trace, cex.trace, "replay must follow the pinned schedule exactly");

    // And the *fixed* protocol must survive that exact schedule — the
    // pinned-regression pattern for every checker-found bug.
    if let Err(cex) = replay(&config, arena_trio, &cex.trace) {
        panic!("the real protocol failed the mutation's schedule:\n{cex}");
    }
}
