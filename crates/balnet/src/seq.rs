//! Integer token sequences and their combinatorial properties.
//!
//! A balancing network's behaviour in a quiescent state is described by the
//! sequence of token counts on its input and output wires (Section 2.1 of
//! the paper). This module provides the predicates and helpers used
//! throughout the workspace: the *step* property, *k-smoothness*, step
//! points, even/odd subsequences, halves, and the closed-form step output of
//! a single balancer.

/// Sum of a token sequence.
///
/// Equivalent to the paper's `Σ(x^(w))`.
#[must_use]
pub fn sum(seq: &[u64]) -> u64 {
    seq.iter().sum()
}

/// Returns `true` if the sequence satisfies the *step property*:
/// `0 <= x_i - x_j <= 1` for every pair of indices `i < j`.
///
/// Equivalently, the sequence is non-increasing and its maximum and minimum
/// differ by at most one. The empty sequence and singleton sequences are
/// trivially step.
#[must_use]
pub fn is_step(seq: &[u64]) -> bool {
    if seq.len() <= 1 {
        return true;
    }
    let max = *seq.iter().max().expect("non-empty");
    let min = *seq.iter().min().expect("non-empty");
    if max - min > 1 {
        return false;
    }
    // Non-increasing: once we drop to `min`, we must never go back to `max`.
    seq.windows(2).all(|w| w[0] >= w[1])
}

/// Returns `true` if the sequence satisfies the *k-smooth property*:
/// `|x_i - x_j| <= k` for every pair of indices.
#[must_use]
pub fn is_k_smooth(seq: &[u64], k: u64) -> bool {
    if seq.is_empty() {
        return true;
    }
    let max = *seq.iter().max().expect("non-empty");
    let min = *seq.iter().min().expect("non-empty");
    max - min <= k
}

/// The *step point* of a step sequence (Section 2.1): the unique index `i`
/// with `x_i < x_{i-1}`, or `w` (the length) if all entries are equal.
///
/// # Panics
///
/// Panics if the sequence is not a step sequence or is empty.
#[must_use]
pub fn step_point(seq: &[u64]) -> usize {
    assert!(!seq.is_empty(), "step point of an empty sequence is undefined");
    assert!(is_step(seq), "step point is only defined for step sequences");
    for i in 1..seq.len() {
        if seq[i] < seq[i - 1] {
            return i;
        }
    }
    seq.len()
}

/// The canonical step sequence of length `width` summing to `total`:
/// `x_i = ceil((total - i) / width)` (Equation (1) of the paper).
#[must_use]
pub fn step_sequence(total: u64, width: usize) -> Vec<u64> {
    assert!(width > 0, "width must be positive");
    (0..width as u64).map(|i| div_ceil_sub(total, i, width as u64)).collect()
}

/// The value on output wire `i` of a `(p, q)`-balancer that has processed
/// `total` tokens in a quiescent state: `y_i = ceil((total - i) / q)`.
#[must_use]
pub fn step_value(total: u64, wire: usize, width: usize) -> u64 {
    div_ceil_sub(total, wire as u64, width as u64)
}

/// `ceil((total - i) / q)` computed without going negative:
/// when `i >= total` the result is 0.
fn div_ceil_sub(total: u64, i: u64, q: u64) -> u64 {
    if total <= i {
        0
    } else {
        (total - i).div_ceil(q)
    }
}

/// The full output sequence of a `(p, q)`-balancer that has processed
/// `total` tokens: the canonical step sequence of width `q` summing to
/// `total`. This is the closed-form used for quiescent evaluation.
#[must_use]
pub fn balancer_step_output(total: u64, fan_out: usize) -> Vec<u64> {
    step_sequence(total, fan_out)
}

/// The even subsequence `x_0, x_2, x_4, ...` of a sequence.
#[must_use]
pub fn even_subsequence(seq: &[u64]) -> Vec<u64> {
    seq.iter().step_by(2).copied().collect()
}

/// The odd subsequence `x_1, x_3, x_5, ...` of a sequence.
#[must_use]
pub fn odd_subsequence(seq: &[u64]) -> Vec<u64> {
    seq.iter().skip(1).step_by(2).copied().collect()
}

/// The first half of a sequence of even length.
///
/// # Panics
///
/// Panics if the length is odd.
#[must_use]
pub fn first_half(seq: &[u64]) -> &[u64] {
    assert!(seq.len().is_multiple_of(2), "halves are only defined for even lengths");
    &seq[..seq.len() / 2]
}

/// The second half of a sequence of even length.
///
/// # Panics
///
/// Panics if the length is odd.
#[must_use]
pub fn second_half(seq: &[u64]) -> &[u64] {
    assert!(seq.len().is_multiple_of(2), "halves are only defined for even lengths");
    &seq[seq.len() / 2..]
}

/// Checks the hypothesis and conclusion of Lemma 2.2: for step sequences
/// `x` and `y` with `0 <= Σx - Σy <= δ`, their maxima `a` and `b` satisfy
/// `0 <= a - b <= floor(δ / w) + 1`.
///
/// Returns `None` when the hypothesis does not apply (sequences not step, or
/// sum difference out of range), `Some(true)` when the conclusion holds and
/// `Some(false)` when it does not (which would falsify the lemma).
#[must_use]
pub fn lemma_2_2_holds(x: &[u64], y: &[u64], delta: u64) -> Option<bool> {
    if x.len() != y.len() || x.len() < 2 || !is_step(x) || !is_step(y) {
        return None;
    }
    let (sx, sy) = (sum(x), sum(y));
    if sx < sy || sx - sy > delta {
        return None;
    }
    let a = *x.iter().max().expect("non-empty");
    let b = *y.iter().max().expect("non-empty");
    let bound = delta / x.len() as u64 + 1;
    Some(a >= b && a - b <= bound)
}

/// Checks Lemma 2.3: for a step sequence of even length `w >= 2`, the sums
/// of its even and odd subsequences satisfy `0 <= Σx_e - Σx_o <= 1`.
#[must_use]
pub fn lemma_2_3_holds(x: &[u64]) -> Option<bool> {
    if x.len() < 2 || !x.len().is_multiple_of(2) || !is_step(x) {
        return None;
    }
    let e = sum(&even_subsequence(x));
    let o = sum(&odd_subsequence(x));
    Some(e >= o && e - o <= 1)
}

/// Checks Lemma 2.4: for step sequences `x` and `y` of even length `w >= 2`
/// with `0 <= Σx - Σy <= δ` for an **even** `δ`, the even subsequences
/// satisfy `0 <= Σx_e - Σy_e <= δ/2` and likewise for the odd
/// subsequences.
///
/// Returns `None` when the hypothesis does not apply, `Some(true)` when
/// the conclusion holds, `Some(false)` otherwise (which would falsify the
/// lemma).
#[must_use]
pub fn lemma_2_4_holds(x: &[u64], y: &[u64], delta: u64) -> Option<bool> {
    if x.len() != y.len()
        || x.len() < 2
        || !x.len().is_multiple_of(2)
        || !delta.is_multiple_of(2)
        || !is_step(x)
        || !is_step(y)
    {
        return None;
    }
    let (sx, sy) = (sum(x), sum(y));
    if sx < sy || sx - sy > delta {
        return None;
    }
    let within = |a: u64, b: u64| a >= b && a - b <= delta / 2;
    let even_ok = within(sum(&even_subsequence(x)), sum(&even_subsequence(y)));
    let odd_ok = within(sum(&odd_subsequence(x)), sum(&odd_subsequence(y)));
    Some(even_ok && odd_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_recognises_canonical_sequences() {
        assert!(is_step(&[]));
        assert!(is_step(&[7]));
        assert!(is_step(&[3, 3, 3, 3]));
        assert!(is_step(&[4, 4, 3, 3]));
        assert!(is_step(&[4, 3, 3, 3]));
        assert!(!is_step(&[3, 4, 3, 3]));
        assert!(!is_step(&[5, 3, 3, 3]));
        assert!(!is_step(&[4, 4, 4, 5]));
    }

    #[test]
    fn smoothness_basic() {
        assert!(is_k_smooth(&[], 0));
        assert!(is_k_smooth(&[5, 5, 5], 0));
        assert!(is_k_smooth(&[5, 3, 4], 2));
        assert!(!is_k_smooth(&[5, 2, 4], 2));
        // Every step sequence is 1-smooth.
        assert!(is_k_smooth(&[4, 4, 3, 3], 1));
    }

    #[test]
    fn step_point_matches_definition() {
        assert_eq!(step_point(&[3, 3, 3]), 3);
        assert_eq!(step_point(&[4, 3, 3]), 1);
        assert_eq!(step_point(&[4, 4, 3]), 2);
        assert_eq!(step_point(&[1]), 1);
    }

    #[test]
    #[should_panic(expected = "step sequences")]
    fn step_point_rejects_non_step() {
        let _ = step_point(&[1, 2]);
    }

    #[test]
    fn step_sequence_formula() {
        assert_eq!(step_sequence(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(step_sequence(1, 4), vec![1, 0, 0, 0]);
        assert_eq!(step_sequence(5, 4), vec![2, 1, 1, 1]);
        assert_eq!(step_sequence(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(step_sequence(9, 4), vec![3, 2, 2, 2]);
        // The canonical step sequence is always step and sums correctly.
        for total in 0..50 {
            for width in 1..10 {
                let s = step_sequence(total, width);
                assert!(is_step(&s));
                assert_eq!(sum(&s), total);
            }
        }
    }

    #[test]
    fn fig1_balancer_example() {
        // Fig. 1 (left): a (4,6)-balancer processing 2+3+1+1 = 7 tokens
        // emits the step sequence 2,1,1,1,1,1 on its six outputs.
        let out = balancer_step_output(7, 6);
        assert_eq!(out, vec![2, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn subsequences_and_halves() {
        let x = [9, 8, 7, 6, 5, 4];
        assert_eq!(even_subsequence(&x), vec![9, 7, 5]);
        assert_eq!(odd_subsequence(&x), vec![8, 6, 4]);
        assert_eq!(first_half(&x), &[9, 8, 7]);
        assert_eq!(second_half(&x), &[6, 5, 4]);
    }

    #[test]
    fn lemma_2_2_on_concrete_sequences() {
        // Two step sequences with sums differing by 3, width 4.
        let x = step_sequence(11, 4);
        let y = step_sequence(8, 4);
        assert_eq!(lemma_2_2_holds(&x, &y, 3), Some(true));
        // Hypothesis violated: y sums to more than x.
        assert_eq!(lemma_2_2_holds(&y, &x, 3), None);
    }

    #[test]
    fn lemma_2_3_on_all_small_step_sequences() {
        for width in [2usize, 4, 6, 8] {
            for total in 0..(4 * width as u64) {
                let x = step_sequence(total, width);
                assert_eq!(lemma_2_3_holds(&x), Some(true), "width={width} total={total}");
            }
        }
    }

    #[test]
    fn lemma_2_4_on_all_small_step_pairs() {
        for width in [2usize, 4, 8] {
            for sum_y in 0..(3 * width as u64) {
                for delta in [0u64, 2, 4, 8] {
                    for diff in 0..=delta {
                        let x = step_sequence(sum_y + diff, width);
                        let y = step_sequence(sum_y, width);
                        assert_eq!(
                            lemma_2_4_holds(&x, &y, delta),
                            Some(true),
                            "width={width} sum_y={sum_y} delta={delta} diff={diff}"
                        );
                    }
                }
            }
        }
        // Hypothesis violations are reported as inapplicable, not false.
        assert_eq!(lemma_2_4_holds(&[1, 0], &[3, 2], 2), None, "Σx < Σy");
        assert_eq!(lemma_2_4_holds(&[3, 2], &[1, 0], 3), None, "odd δ");
    }
}
