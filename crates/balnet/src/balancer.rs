//! The state machine of a single `(p, q)`-balancer.
//!
//! A balancer accepts a stream of tokens on its `p` input wires and forwards
//! the `i`-th token it processes to output wire `i mod q` (Section 1.1).
//! The *state* of a balancer is the index of the output wire on which it
//! will forward the next token; a *transition* forwards one token and
//! advances the state by one modulo `q` (Section 2.2).

use crate::seq::balancer_step_output;

/// The sequential state of a `(p, q)`-balancer.
///
/// The state only depends on `q` (the output width); the input width `p`
/// matters for topology but not for the balancer's forwarding behaviour,
/// because the output of a balancer is a function of the *total* number of
/// tokens it has processed, not of which wire they arrived on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancerState {
    fan_out: usize,
    /// The output wire on which the next token will be forwarded.
    next: usize,
    /// Total number of tokens processed so far.
    processed: u64,
}

impl BalancerState {
    /// A fresh balancer with output width `fan_out`, in its initial state
    /// (next token goes to output wire 0).
    ///
    /// # Panics
    ///
    /// Panics if `fan_out == 0`.
    #[must_use]
    pub fn new(fan_out: usize) -> Self {
        assert!(fan_out > 0, "a balancer must have at least one output wire");
        Self { fan_out, next: 0, processed: 0 }
    }

    /// The output width `q` of this balancer.
    #[must_use]
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The current state: the output wire the next token will leave on.
    #[must_use]
    pub fn state(&self) -> usize {
        self.next
    }

    /// The total number of tokens this balancer has processed.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Process one token (a *transition* `α(τ, b)`), returning the output
    /// wire it leaves on. The state advances by one modulo `q`.
    pub fn traverse(&mut self) -> usize {
        let out = self.next;
        self.next = (self.next + 1) % self.fan_out;
        self.processed += 1;
        out
    }

    /// The number of tokens that have left on each output wire so far.
    ///
    /// In a quiescent state this equals the canonical step sequence of the
    /// total processed count (the step property of a single balancer).
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        balancer_step_output(self.processed, self.fan_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{is_step, sum};

    #[test]
    fn round_robin_forwarding() {
        let mut b = BalancerState::new(3);
        let outs: Vec<usize> = (0..7).map(|_| b.traverse()).collect();
        assert_eq!(outs, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(b.state(), 1);
        assert_eq!(b.processed(), 7);
    }

    #[test]
    fn output_counts_satisfy_step_property() {
        for q in 1..8 {
            let mut b = BalancerState::new(q);
            for m in 0..40u64 {
                let counts = b.output_counts();
                assert!(is_step(&counts), "q={q} m={m}: {counts:?}");
                assert_eq!(sum(&counts), m);
                b.traverse();
            }
        }
    }

    #[test]
    fn output_counts_match_explicit_tally() {
        let mut b = BalancerState::new(4);
        let mut tally = vec![0u64; 4];
        for _ in 0..23 {
            let wire = b.traverse();
            tally[wire] += 1;
        }
        assert_eq!(b.output_counts(), tally);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_fan_out_rejected() {
        let _ = BalancerState::new(0);
    }
}
