//! # balnet — balancing-network substrate
//!
//! This crate provides the foundational data structures and algorithms that
//! every other crate in the workspace builds on:
//!
//! * **Token sequences** and their combinatorial properties — the *step*
//!   property and *k-smoothness* (Section 2.1 of Busch & Mavronicolas,
//!   "An Efficient Counting Network").
//! * **Balancers** — asynchronous `(p, q)` switches that forward the `i`-th
//!   token they process to output wire `i mod q`.
//! * **Balancing-network topologies** — acyclic networks of balancers
//!   represented as an explicit DAG of wires, with layer decomposition,
//!   depth computation, and composition (cascade).
//! * **Quiescent-state evaluation** — computing the output token
//!   distribution of a network for a given input distribution, both through
//!   the closed-form per-balancer step formula and through an explicit
//!   token-by-token executor (the two must agree; this is heavily
//!   property-tested).
//! * **Network properties** — counting / k-smoothing verification,
//!   exhaustive for small widths and randomized for large ones.
//! * **Isomorphism** — permutations, the balancing-network isomorphism
//!   relation of Section 2.3, verification of a given mapping and a
//!   backtracking search for one.
//!
//! The crate is intentionally free of any concurrency: it models the
//! *quiescent* semantics of networks. Concurrent execution (contention,
//! scheduling, stalls) lives in `counting-sim` (discrete simulation) and
//! `counting-runtime` (real threads and atomics).

#![warn(missing_docs)]

pub mod balancer;
pub mod builder;
pub mod dot;
pub mod error;
pub mod eval;
pub mod iso;
pub mod properties;
pub mod seq;
pub mod topology;

pub use balancer::BalancerState;
pub use builder::NetworkBuilder;
pub use dot::{to_dot, DotOptions};
pub use error::BuildError;
pub use eval::{assign_counter_values, quiescent_output, TokenExecutor};
pub use iso::{find_isomorphism, verify_isomorphism, NetworkMapping, Permutation};
pub use properties::{
    is_counting_network_exhaustive, is_counting_network_randomized,
    is_smoothing_network_randomized, output_is_step,
};
pub use seq::{balancer_step_output, is_k_smooth, is_step, step_point, step_sequence};
pub use topology::{BalancerId, BalancerNode, Network, Port};
