//! Quiescent-state evaluation of balancing networks.
//!
//! Two evaluation strategies are provided and must agree (this is one of the
//! central invariants property-tested across the workspace):
//!
//! * [`quiescent_output`] — the closed-form evaluation: each balancer's
//!   output distribution is the canonical step sequence of its total input
//!   count (Section 2.2), propagated through the DAG in topological order.
//! * [`TokenExecutor`] — an explicit token-by-token executor that maintains
//!   per-balancer states and routes individual tokens, in any interleaving.
//!   In a quiescent state the per-wire counts it produces must equal the
//!   closed-form output, because the quiescent output of a balancing
//!   network depends only on the number of tokens entering each input wire.

use crate::balancer::BalancerState;
use crate::seq::balancer_step_output;
use crate::topology::{Network, Port};

/// Computes the quiescent output sequence `y^(t)` of `network` when `x_i`
/// tokens enter on input wire `i`.
///
/// # Panics
///
/// Panics if `input.len() != network.input_width()`.
#[must_use]
pub fn quiescent_output(network: &Network, input: &[u64]) -> Vec<u64> {
    assert_eq!(
        input.len(),
        network.input_width(),
        "input sequence length must equal the network input width"
    );
    let mut balancer_in = vec![0u64; network.num_balancers()];
    let mut output = vec![0u64; network.output_width()];

    let route = |port: &Port, amount: u64, balancer_in: &mut [u64], output: &mut [u64]| match *port
    {
        Port::Balancer { balancer, .. } => balancer_in[balancer] += amount,
        Port::Output(o) => output[o] += amount,
    };

    for (wire, &count) in input.iter().enumerate() {
        route(&network.inputs()[wire], count, &mut balancer_in, &mut output);
    }
    for id in network.topological_order() {
        let node = network.balancer(id);
        let total = balancer_in[id.index()];
        let outs = balancer_step_output(total, node.fan_out);
        for (port, amount) in node.outputs.iter().zip(outs) {
            if amount > 0 {
                route(port, amount, &mut balancer_in, &mut output);
            }
        }
    }
    output
}

/// Assigns Fetch&Increment counter values to the tokens exiting a counting
/// network (Section 1.1): output wire `i` hands out values
/// `i, i + t, i + 2t, ...` where `t` is the output width.
///
/// Given the quiescent output sequence, returns for each output wire the
/// list of counter values its tokens received. If the network is a counting
/// network, the union of all values is exactly `0..m-1` where `m` is the
/// total number of tokens.
#[must_use]
pub fn assign_counter_values(output: &[u64]) -> Vec<Vec<u64>> {
    let t = output.len() as u64;
    output
        .iter()
        .enumerate()
        .map(|(i, &count)| (0..count).map(|k| i as u64 + k * t).collect())
        .collect()
}

/// An explicit token-by-token executor over a network topology.
///
/// The executor maintains the state of every balancer. Tokens are injected
/// on input wires and traverse the network immediately (one balancer at a
/// time, atomically), which models a *sequential* execution; arbitrary
/// interleavings of token injections are supported and all lead to the same
/// quiescent per-wire counts.
#[derive(Debug, Clone)]
pub struct TokenExecutor<'a> {
    network: &'a Network,
    states: Vec<BalancerState>,
    /// Tokens that have exited on each output wire, in exit order.
    exits: Vec<Vec<u64>>,
    /// Number of tokens injected so far (used as token ids).
    injected: u64,
    /// Per-input-wire injection counts.
    input_counts: Vec<u64>,
}

impl<'a> TokenExecutor<'a> {
    /// Creates an executor with every balancer in its initial state.
    #[must_use]
    pub fn new(network: &'a Network) -> Self {
        let states = network.balancers().iter().map(|b| BalancerState::new(b.fan_out)).collect();
        Self {
            network,
            states,
            exits: vec![Vec::new(); network.output_width()],
            injected: 0,
            input_counts: vec![0; network.input_width()],
        }
    }

    /// Injects a single token on `input_wire` and traverses it to an output
    /// wire. Returns `(output_wire, token_id)`.
    ///
    /// # Panics
    ///
    /// Panics if `input_wire` is out of range.
    pub fn inject(&mut self, input_wire: usize) -> (usize, u64) {
        assert!(input_wire < self.network.input_width(), "input wire {input_wire} out of range");
        let token = self.injected;
        self.injected += 1;
        self.input_counts[input_wire] += 1;
        let mut port = self.network.inputs()[input_wire];
        loop {
            match port {
                Port::Balancer { balancer, .. } => {
                    let out_port = self.states[balancer].traverse();
                    port = self.network.balancers()[balancer].outputs[out_port];
                }
                Port::Output(o) => {
                    self.exits[o].push(token);
                    return (o, token);
                }
            }
        }
    }

    /// Injects `count` tokens on every input wire according to `input`,
    /// round-robin across wires (wire order `0, 1, ..., w-1, 0, 1, ...`),
    /// which mimics tokens from processes `p_l` entering on wire
    /// `l mod w`.
    pub fn inject_sequence(&mut self, input: &[u64]) {
        assert_eq!(input.len(), self.network.input_width());
        let mut remaining: Vec<u64> = input.to_vec();
        let mut any = true;
        while any {
            any = false;
            for (wire, rem) in remaining.iter_mut().enumerate() {
                if *rem > 0 {
                    *rem -= 1;
                    any = true;
                    self.inject(wire);
                }
            }
        }
    }

    /// The number of tokens that have exited on each output wire so far.
    #[must_use]
    pub fn output_counts(&self) -> Vec<u64> {
        self.exits.iter().map(|v| v.len() as u64).collect()
    }

    /// The tokens (by id, in exit order) that exited on each output wire.
    #[must_use]
    pub fn exits(&self) -> &[Vec<u64>] {
        &self.exits
    }

    /// The number of tokens injected on each input wire so far.
    #[must_use]
    pub fn input_counts(&self) -> &[u64] {
        &self.input_counts
    }

    /// Total number of tokens injected.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected
    }

    /// The current state (next-output index) of every balancer.
    #[must_use]
    pub fn balancer_states(&self) -> &[BalancerState] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::seq::{is_step, sum};

    /// The (4,6)-balancer of Fig. 1 (left), as a one-balancer network.
    fn fig1_balancer() -> Network {
        let mut b = NetworkBuilder::new(4, 6);
        let bal = b.add_balancer(4, 6);
        for i in 0..4 {
            b.connect_input(i, bal, i);
        }
        for o in 0..6 {
            b.connect_to_output(bal, o, o);
        }
        b.build().expect("valid")
    }

    #[test]
    fn fig1_left_distribution() {
        // 2, 3, 1, 1 tokens on the four inputs => 2,1,1,1,1,1 on the outputs.
        let net = fig1_balancer();
        let out = quiescent_output(&net, &[2, 3, 1, 1]);
        assert_eq!(out, vec![2, 1, 1, 1, 1, 1]);
        assert!(is_step(&out));
        assert_eq!(sum(&out), 7);
    }

    #[test]
    fn token_executor_agrees_with_closed_form() {
        let net = fig1_balancer();
        let input = [2u64, 3, 1, 1];
        let mut exec = TokenExecutor::new(&net);
        exec.inject_sequence(&input);
        assert_eq!(exec.output_counts(), quiescent_output(&net, &input));
        assert_eq!(exec.input_counts(), &input);
        assert_eq!(exec.total_injected(), 7);
    }

    #[test]
    fn counter_values_partition_the_range() {
        // Fig. 1 (left): the (4,6)-balancer's exiting tokens get values
        // 0..6 via v_i = i, i+6, ...
        let out = vec![2u64, 1, 1, 1, 1, 1];
        let values = assign_counter_values(&out);
        assert_eq!(values[0], vec![0, 6]);
        assert_eq!(values[1], vec![1]);
        let mut all: Vec<u64> = values.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let net = fig1_balancer();
        assert_eq!(quiescent_output(&net, &[0, 0, 0, 0]), vec![0; 6]);
    }

    #[test]
    #[should_panic(expected = "input sequence length")]
    fn wrong_input_length_panics() {
        let net = fig1_balancer();
        let _ = quiescent_output(&net, &[1, 2]);
    }
}
