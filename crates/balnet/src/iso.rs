//! Permutations and balancing-network isomorphism (Section 2.3).
//!
//! Two networks `B` and `B'` are isomorphic when there is a correspondence
//! between their balancers preserving balancer shapes such that whenever the
//! `k`-th output wire of balancer `b_i` feeds balancer `b_j` in `B`, the
//! `k`-th output wire of the corresponding balancer `b'_i` feeds the
//! corresponding balancer `b'_j` in `B'` (on *some* input port — input port
//! order is irrelevant). Isomorphic networks have identical smoothing and
//! counting behaviour up to input/output wire permutations (Lemmas 2.6–2.8).

use std::collections::HashMap;

use crate::topology::{BalancerId, Network, Port};

/// A permutation `π` on `{0, ..., w-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// Creates a permutation from the mapping `i -> forward[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a permutation of `0..forward.len()`.
    #[must_use]
    pub fn new(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            assert!(v < n, "permutation image {v} out of range");
            assert!(!seen[v], "duplicate image {v} in permutation");
            seen[v] = true;
        }
        Self { forward }
    }

    /// The identity permutation on `{0, ..., n-1}`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self { forward: (0..n).collect() }
    }

    /// The size of the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` if the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Applies the permutation to an index.
    #[must_use]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i]
    }

    /// The inverse permutation `π^R`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0usize; self.forward.len()];
        for (i, &v) in self.forward.iter().enumerate() {
            inv[v] = i;
        }
        Self { forward: inv }
    }

    /// Permutes a sequence: the result `y` satisfies `x_i = y_{π(i)}`
    /// (the paper's convention `π(x^(w)) = y^(w)` with `x_i = y_{π(i)}`).
    ///
    /// # Panics
    ///
    /// Panics if the sequence length does not match the permutation size.
    #[must_use]
    pub fn apply_to_sequence(&self, x: &[u64]) -> Vec<u64> {
        assert_eq!(x.len(), self.forward.len());
        let mut y = vec![0u64; x.len()];
        for (i, &v) in x.iter().enumerate() {
            y[self.forward[i]] = v;
        }
        y
    }
}

/// A candidate isomorphism: `mapping[i]` is the balancer of the second
/// network corresponding to balancer `i` of the first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkMapping {
    /// For balancer `i` of the first network, the index of the
    /// corresponding balancer in the second network.
    pub mapping: Vec<usize>,
}

impl NetworkMapping {
    /// The image of a balancer under the mapping.
    #[must_use]
    pub fn map(&self, id: BalancerId) -> BalancerId {
        BalancerId(self.mapping[id.index()])
    }
}

/// Classifies where an output wire leads, abstracting away the input-port
/// index (which isomorphism ignores) but keeping the balancer identity or
/// the fact that it is a network output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Destination {
    Balancer(usize),
    NetworkOutput,
}

fn destination(port: &Port) -> Destination {
    match *port {
        Port::Balancer { balancer, .. } => Destination::Balancer(balancer),
        Port::Output(_) => Destination::NetworkOutput,
    }
}

/// Verifies that `mapping` is an isomorphism between `a` and `b`.
///
/// Checks: the mapping is a bijection; corresponding balancers have the same
/// `(fan_in, fan_out)`; and for every balancer `i` of `a`, its `k`-th output
/// wire and the `k`-th output wire of the corresponding balancer lead to
/// corresponding places (the same corresponding balancer, or both to network
/// outputs). Network inputs must likewise feed corresponding balancers.
#[must_use]
pub fn verify_isomorphism(a: &Network, b: &Network, mapping: &NetworkMapping) -> bool {
    if a.num_balancers() != b.num_balancers() || mapping.mapping.len() != a.num_balancers() {
        return false;
    }
    if a.input_width() != b.input_width() || a.output_width() != b.output_width() {
        return false;
    }
    // Bijection check.
    let mut seen = vec![false; b.num_balancers()];
    for &m in &mapping.mapping {
        if m >= b.num_balancers() || seen[m] {
            return false;
        }
        seen[m] = true;
    }
    // Balancer shapes and wire destinations.
    for (i, node_a) in a.balancers().iter().enumerate() {
        let node_b = &b.balancers()[mapping.mapping[i]];
        if node_a.fan_in != node_b.fan_in || node_a.fan_out != node_b.fan_out {
            return false;
        }
        for k in 0..node_a.fan_out {
            let da = destination(&node_a.outputs[k]);
            let db = destination(&node_b.outputs[k]);
            let matches = match (da, db) {
                (Destination::Balancer(x), Destination::Balancer(y)) => mapping.mapping[x] == y,
                (Destination::NetworkOutput, Destination::NetworkOutput) => true,
                _ => false,
            };
            if !matches {
                return false;
            }
        }
    }
    // Network inputs: the multiset of destinations (up to the balancer
    // correspondence) must agree, i.e. there must exist an input-wire
    // permutation π_in. We only need existence, so compare multisets.
    let mut counts_a: HashMap<Destination, usize> = HashMap::new();
    for p in a.inputs() {
        *counts_a.entry(destination(p)).or_insert(0) += 1;
    }
    let mut counts_b: HashMap<Destination, usize> = HashMap::new();
    for p in b.inputs() {
        let d = match destination(p) {
            Destination::Balancer(x) => {
                // translate back into a's id space for comparison
                let inv = mapping.mapping.iter().position(|&m| m == x);
                match inv {
                    Some(orig) => Destination::Balancer(orig),
                    None => return false,
                }
            }
            Destination::NetworkOutput => Destination::NetworkOutput,
        };
        *counts_b.entry(d).or_insert(0) += 1;
    }
    counts_a == counts_b
}

/// Searches for an isomorphism between `a` and `b` by backtracking,
/// matching balancers layer by layer (balancer depth is an isomorphism
/// invariant). Practical for the small-to-moderate networks used in tests
/// (up to a few hundred balancers with benign structure).
#[must_use]
pub fn find_isomorphism(a: &Network, b: &Network) -> Option<NetworkMapping> {
    if a.num_balancers() != b.num_balancers()
        || a.input_width() != b.input_width()
        || a.output_width() != b.output_width()
        || a.depth() != b.depth()
    {
        return None;
    }
    let layers_a = a.layers();
    let layers_b = b.layers();
    if layers_a.iter().map(Vec::len).collect::<Vec<_>>()
        != layers_b.iter().map(Vec::len).collect::<Vec<_>>()
    {
        return None;
    }

    // Process balancers from the *last* layer to the first so that when we
    // try to match a balancer, all its successors are already matched and
    // its wire-destination constraints can be checked immediately.
    let order_a: Vec<usize> =
        layers_a.iter().rev().flat_map(|layer| layer.iter().map(|id| id.index())).collect();

    let mut mapping: Vec<Option<usize>> = vec![None; a.num_balancers()];
    let mut used_b: Vec<bool> = vec![false; b.num_balancers()];

    fn compatible(
        a: &Network,
        b: &Network,
        ia: usize,
        ib: usize,
        mapping: &[Option<usize>],
    ) -> bool {
        let na = &a.balancers()[ia];
        let nb = &b.balancers()[ib];
        if na.fan_in != nb.fan_in || na.fan_out != nb.fan_out {
            return false;
        }
        if a.balancer_depth(BalancerId(ia)) != b.balancer_depth(BalancerId(ib)) {
            return false;
        }
        for k in 0..na.fan_out {
            match (destination(&na.outputs[k]), destination(&nb.outputs[k])) {
                (Destination::NetworkOutput, Destination::NetworkOutput) => {}
                (Destination::Balancer(x), Destination::Balancer(y)) => {
                    // successors are matched already (we go last layer first)
                    match mapping[x] {
                        Some(mx) if mx == y => {}
                        _ => return false,
                    }
                }
                _ => return false,
            }
        }
        true
    }

    fn backtrack(
        a: &Network,
        b: &Network,
        order: &[usize],
        pos: usize,
        layers_b: &[Vec<BalancerId>],
        mapping: &mut Vec<Option<usize>>,
        used_b: &mut Vec<bool>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let ia = order[pos];
        let depth = a.balancer_depth(BalancerId(ia));
        for cand in &layers_b[depth - 1] {
            let ib = cand.index();
            if used_b[ib] || !compatible(a, b, ia, ib, mapping) {
                continue;
            }
            mapping[ia] = Some(ib);
            used_b[ib] = true;
            if backtrack(a, b, order, pos + 1, layers_b, mapping, used_b) {
                return true;
            }
            mapping[ia] = None;
            used_b[ib] = false;
        }
        false
    }

    if backtrack(a, b, &order_a, 0, &layers_b, &mut mapping, &mut used_b) {
        let mapping =
            NetworkMapping { mapping: mapping.into_iter().map(|m| m.expect("complete")).collect() };
        if verify_isomorphism(a, b, &mapping) {
            return Some(mapping);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn two_layer_network(swap_second_layer_inputs: bool) -> Network {
        // Two balancers in layer 1 feeding two balancers in layer 2,
        // the classic 4-wire "brick". Optionally swap which input port each
        // wire lands on in layer 2 — isomorphism must ignore that.
        let mut bld = NetworkBuilder::new(4, 4);
        let a0 = bld.add_balancer(2, 2);
        let a1 = bld.add_balancer(2, 2);
        let b0 = bld.add_balancer(2, 2);
        let b1 = bld.add_balancer(2, 2);
        bld.connect_input(0, a0, 0);
        bld.connect_input(1, a0, 1);
        bld.connect_input(2, a1, 0);
        bld.connect_input(3, a1, 1);
        let (p, q) = if swap_second_layer_inputs { (1, 0) } else { (0, 1) };
        bld.connect(a0, 0, b0, p);
        bld.connect(a1, 0, b0, q);
        bld.connect(a0, 1, b1, p);
        bld.connect(a1, 1, b1, q);
        bld.connect_to_output(b0, 0, 0);
        bld.connect_to_output(b0, 1, 1);
        bld.connect_to_output(b1, 0, 2);
        bld.connect_to_output(b1, 1, 3);
        bld.build().expect("valid")
    }

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::new(vec![2, 0, 1, 3]);
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
        let x = vec![10, 20, 30, 40];
        let y = p.apply_to_sequence(&x);
        // x_i = y_{π(i)}
        for i in 0..4 {
            assert_eq!(x[i], y[p.apply(i)]);
        }
        assert_eq!(inv.apply_to_sequence(&y), x);
    }

    #[test]
    #[should_panic(expected = "duplicate image")]
    fn invalid_permutation_rejected() {
        let _ = Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn identity_mapping_is_isomorphism() {
        let n = two_layer_network(false);
        let id = NetworkMapping { mapping: (0..n.num_balancers()).collect() };
        assert!(verify_isomorphism(&n, &n, &id));
    }

    #[test]
    fn input_port_order_is_ignored() {
        let a = two_layer_network(false);
        let b = two_layer_network(true);
        let found = find_isomorphism(&a, &b);
        assert!(found.is_some(), "networks differing only in input-port order are isomorphic");
    }

    #[test]
    fn different_shapes_are_not_isomorphic() {
        let a = two_layer_network(false);
        let mut bld = NetworkBuilder::new(4, 4);
        let b0 = bld.add_balancer(4, 4);
        for i in 0..4 {
            bld.connect_input(i, b0, i);
            bld.connect_to_output(b0, i, i);
        }
        let b = bld.build().expect("valid");
        assert!(find_isomorphism(&a, &b).is_none());
    }

    #[test]
    fn wrong_mapping_rejected() {
        let n = two_layer_network(false);
        // Swap a layer-1 with a layer-2 balancer: depths differ.
        let bad = NetworkMapping { mapping: vec![2, 1, 0, 3] };
        assert!(!verify_isomorphism(&n, &n, &bad));
    }
}
