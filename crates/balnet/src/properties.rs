//! Verification of network families: counting and k-smoothing.
//!
//! A balancing network is a *counting network* if its quiescent output
//! sequence satisfies the step property for every input sequence, and a
//! *k-smoothing network* if the output is always k-smooth (Section 2.2).
//! These are universally-quantified properties; we verify them exhaustively
//! over bounded inputs for small networks, and by randomized sampling for
//! larger ones. The `proptest` suites elsewhere in the workspace complement
//! these with shrinking counterexample search.

use rand::Rng;

use crate::eval::quiescent_output;
use crate::seq::{is_k_smooth, is_step};
use crate::topology::Network;

/// Checks the step property of the network's output for one specific input.
#[must_use]
pub fn output_is_step(network: &Network, input: &[u64]) -> bool {
    is_step(&quiescent_output(network, input))
}

/// Checks the k-smooth property of the network's output for one input.
#[must_use]
pub fn output_is_k_smooth(network: &Network, input: &[u64], k: u64) -> bool {
    is_k_smooth(&quiescent_output(network, input), k)
}

/// Exhaustively checks the counting property over *all* input sequences
/// with every per-wire count in `0..=max_tokens_per_wire`.
///
/// The number of evaluated inputs is `(max_tokens_per_wire + 1)^w`; keep
/// `w` and the bound small (e.g. `w <= 8`, bound `<= 3`). Returns the first
/// violating input if any.
#[must_use]
pub fn counting_counterexample_exhaustive(
    network: &Network,
    max_tokens_per_wire: u64,
) -> Option<Vec<u64>> {
    let w = network.input_width();
    let mut input = vec![0u64; w];
    loop {
        if !output_is_step(network, &input) {
            return Some(input);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == w {
                return None;
            }
            if input[i] < max_tokens_per_wire {
                input[i] += 1;
                break;
            }
            input[i] = 0;
            i += 1;
        }
    }
}

/// Exhaustive counting-network check; see
/// [`counting_counterexample_exhaustive`].
#[must_use]
pub fn is_counting_network_exhaustive(network: &Network, max_tokens_per_wire: u64) -> bool {
    counting_counterexample_exhaustive(network, max_tokens_per_wire).is_none()
}

/// Randomized counting-network check: `trials` random input sequences with
/// per-wire counts drawn uniformly from `0..=max_tokens_per_wire`.
/// Returns the first violating input if any.
#[must_use]
pub fn counting_counterexample_randomized<R: Rng>(
    network: &Network,
    trials: usize,
    max_tokens_per_wire: u64,
    rng: &mut R,
) -> Option<Vec<u64>> {
    let w = network.input_width();
    for _ in 0..trials {
        let input: Vec<u64> = (0..w).map(|_| rng.gen_range(0..=max_tokens_per_wire)).collect();
        if !output_is_step(network, &input) {
            return Some(input);
        }
    }
    None
}

/// Randomized counting-network check; see
/// [`counting_counterexample_randomized`].
#[must_use]
pub fn is_counting_network_randomized<R: Rng>(
    network: &Network,
    trials: usize,
    max_tokens_per_wire: u64,
    rng: &mut R,
) -> bool {
    counting_counterexample_randomized(network, trials, max_tokens_per_wire, rng).is_none()
}

/// Randomized k-smoothing check: returns `true` if the output was k-smooth
/// for all sampled inputs.
#[must_use]
pub fn is_smoothing_network_randomized<R: Rng>(
    network: &Network,
    k: u64,
    trials: usize,
    max_tokens_per_wire: u64,
    rng: &mut R,
) -> bool {
    let w = network.input_width();
    for _ in 0..trials {
        let input: Vec<u64> = (0..w).map(|_| rng.gen_range(0..=max_tokens_per_wire)).collect();
        if !output_is_k_smooth(network, &input, k) {
            return false;
        }
    }
    true
}

/// The smallest `k` such that the output is k-smooth, maximized over
/// `trials` random inputs — an empirical lower bound on the network's
/// smoothing parameter. Useful for checking the tightness of smoothing
/// bounds (e.g. the butterfly's `lg w`).
#[must_use]
pub fn observed_smoothness<R: Rng>(
    network: &Network,
    trials: usize,
    max_tokens_per_wire: u64,
    rng: &mut R,
) -> u64 {
    let w = network.input_width();
    let mut worst = 0u64;
    for _ in 0..trials {
        let input: Vec<u64> = (0..w).map(|_| rng.gen_range(0..=max_tokens_per_wire)).collect();
        let out = quiescent_output(network, &input);
        if let (Some(max), Some(min)) = (out.iter().max(), out.iter().min()) {
            worst = worst.max(max - min);
        }
    }
    worst
}

/// Verifies the sum-preservation property for one input: the total number
/// of tokens leaving the network equals the total entering it.
#[must_use]
pub fn preserves_sum(network: &Network, input: &[u64]) -> bool {
    let out = quiescent_output(network, input);
    input.iter().sum::<u64>() == out.iter().sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A single (2,2)-balancer: trivially a counting network.
    fn balancer22() -> Network {
        let mut b = NetworkBuilder::new(2, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_input(1, bal, 1);
        b.connect_to_output(bal, 0, 0);
        b.connect_to_output(bal, 1, 1);
        b.build().expect("valid")
    }

    /// Two (2,2)-balancers side by side: a 2-smoothing network that is NOT
    /// a counting network (the classic smallest non-example).
    fn two_independent_balancers() -> Network {
        let mut b = NetworkBuilder::new(4, 4);
        let b0 = b.add_balancer(2, 2);
        let b1 = b.add_balancer(2, 2);
        b.connect_input(0, b0, 0);
        b.connect_input(1, b0, 1);
        b.connect_input(2, b1, 0);
        b.connect_input(3, b1, 1);
        b.connect_to_output(b0, 0, 0);
        b.connect_to_output(b0, 1, 1);
        b.connect_to_output(b1, 0, 2);
        b.connect_to_output(b1, 1, 3);
        b.build().expect("valid")
    }

    #[test]
    fn single_balancer_is_counting() {
        let net = balancer22();
        assert!(is_counting_network_exhaustive(&net, 6));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(is_counting_network_randomized(&net, 200, 1000, &mut rng));
    }

    #[test]
    fn parallel_balancers_are_not_counting_but_are_smoothing() {
        let net = two_independent_balancers();
        let cex = counting_counterexample_exhaustive(&net, 2);
        assert!(cex.is_some(), "two parallel balancers must not count");
        // ... for instance [0,0,1,1] puts a token on wire 2 while wire 0 is
        // empty, violating the step property.
        assert!(!output_is_step(&net, &[0, 0, 2, 0]));
        // But each half is individually balanced, so the whole network can
        // never spread counts by more than ... well, it is not even
        // k-smoothing for any k independent of the input, because all
        // tokens may enter on wires 2,3. Verify observed smoothness grows.
        let mut rng = StdRng::seed_from_u64(2);
        let s = observed_smoothness(&net, 200, 50, &mut rng);
        assert!(s > 1);
    }

    #[test]
    fn sum_preservation() {
        let net = two_independent_balancers();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let input: Vec<u64> = (0..4).map(|_| rng.gen_range(0..100)).collect();
            assert!(preserves_sum(&net, &input));
        }
    }

    #[test]
    fn exhaustive_enumerator_covers_all_inputs() {
        // With w=2 and bound 2, the odometer must enumerate 9 inputs and
        // find no counterexample on a true counting network.
        let net = balancer22();
        assert!(counting_counterexample_exhaustive(&net, 2).is_none());
    }
}
