//! Balancing-network topologies.
//!
//! A balancing network is an acyclic network of balancers in which every
//! output wire of a balancer is either linked to an input wire of another
//! balancer or is one of the network's output wires (Section 1.1). We
//! represent the topology explicitly as a DAG: each balancer records, for
//! each of its output ports, where the wire leads.

use crate::error::BuildError;

/// An opaque identifier of a balancer inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BalancerId(pub usize);

impl BalancerId {
    /// The underlying index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// The destination of a wire: either an input port of another balancer, or
/// one of the network's output wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// The wire feeds input port `port` of balancer `balancer`.
    Balancer {
        /// Index of the downstream balancer.
        balancer: usize,
        /// Input port within the downstream balancer.
        port: usize,
    },
    /// The wire is network output wire with this index.
    Output(usize),
}

/// A single balancer inside a network: its fan-in, fan-out, and where each
/// of its output wires leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancerNode {
    /// Input width `p` of the balancer.
    pub fan_in: usize,
    /// Output width `q` of the balancer.
    pub fan_out: usize,
    /// Destination of each output wire; `outputs.len() == fan_out`.
    pub outputs: Vec<Port>,
}

impl BalancerNode {
    /// Returns `true` if this is a regular balancer (`p == q`).
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.fan_in == self.fan_out
    }
}

/// An immutable, validated balancing-network topology.
///
/// Construct one with [`crate::NetworkBuilder`]. The network knows its input
/// and output widths, the routing of every wire, and the depth of every
/// balancer (computed at build time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    pub(crate) input_width: usize,
    pub(crate) output_width: usize,
    /// Destination of each network input wire; `inputs.len() == input_width`.
    pub(crate) inputs: Vec<Port>,
    pub(crate) balancers: Vec<BalancerNode>,
    /// 1-based depth of each balancer (maximum number of balancers on any
    /// path from a network input up to and including this balancer).
    pub(crate) depths: Vec<usize>,
    pub(crate) depth: usize,
}

impl Network {
    /// The network's input width `w` (number of input wires).
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The network's output width `t` (number of output wires).
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// The destination of each network input wire.
    #[must_use]
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// All balancers in the network, indexed by [`BalancerId`].
    #[must_use]
    pub fn balancers(&self) -> &[BalancerNode] {
        &self.balancers
    }

    /// The balancer with the given id.
    #[must_use]
    pub fn balancer(&self, id: BalancerId) -> &BalancerNode {
        &self.balancers[id.0]
    }

    /// The number of balancers in the network.
    #[must_use]
    pub fn num_balancers(&self) -> usize {
        self.balancers.len()
    }

    /// The depth of the network: the maximum number of balancers any token
    /// traverses from an input wire to an output wire. A network with no
    /// balancers (pure wires) has depth 0.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The 1-based depth of a specific balancer.
    #[must_use]
    pub fn balancer_depth(&self, id: BalancerId) -> usize {
        self.depths[id.0]
    }

    /// Decomposes the network into layers `ℓ_1, ..., ℓ_d`, where layer `i`
    /// contains the ids of all balancers of depth `i` (Section 2.2).
    #[must_use]
    pub fn layers(&self) -> Vec<Vec<BalancerId>> {
        let mut layers = vec![Vec::new(); self.depth];
        for (idx, &d) in self.depths.iter().enumerate() {
            layers[d - 1].push(BalancerId(idx));
        }
        layers
    }

    /// Returns `true` if every balancer in the network is regular
    /// (`p == q`). Regular networks have `input_width == output_width`.
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.balancers.iter().all(BalancerNode::is_regular)
    }

    /// Returns the ids of balancers in topological order (by depth, then by
    /// id). Evaluators rely on the fact that a balancer's inputs are fully
    /// determined by balancers of strictly smaller depth and by network
    /// inputs.
    #[must_use]
    pub fn topological_order(&self) -> Vec<BalancerId> {
        let mut order: Vec<BalancerId> = (0..self.balancers.len()).map(BalancerId).collect();
        order.sort_by_key(|id| (self.depths[id.0], id.0));
        order
    }

    /// Counts balancers grouped by `(fan_in, fan_out)` shape, sorted by
    /// shape. Useful for structural assertions about constructions (e.g.
    /// `C(w, t)` uses only `(2,2)`- and `(2,2p)`-balancers).
    #[must_use]
    pub fn balancer_census(&self) -> Vec<((usize, usize), usize)> {
        let mut census: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for b in &self.balancers {
            *census.entry((b.fan_in, b.fan_out)).or_insert(0) += 1;
        }
        census.into_iter().collect()
    }

    /// The total number of wires in the network: network inputs plus every
    /// balancer output wire.
    #[must_use]
    pub fn num_wires(&self) -> usize {
        self.input_width + self.balancers.iter().map(|b| b.fan_out).sum::<usize>()
    }

    /// Cascades `self` with `other`: the output wires of `self` are
    /// connected one-to-one (wire `i` to wire `i`) to the input wires of
    /// `other`. Requires `self.output_width() == other.input_width()`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::WidthMismatch`] if the widths do not agree.
    pub fn cascade(&self, other: &Network) -> Result<Network, BuildError> {
        if self.output_width != other.input_width {
            return Err(BuildError::WidthMismatch {
                upstream_outputs: self.output_width,
                downstream_inputs: other.input_width,
            });
        }
        let offset = self.balancers.len();
        // Re-target a port of `other` into the combined id space.
        let shift = |p: &Port| -> Port {
            match *p {
                Port::Balancer { balancer, port } => {
                    Port::Balancer { balancer: balancer + offset, port }
                }
                Port::Output(o) => Port::Output(o),
            }
        };
        // Re-target a port of `self`: outputs of `self` become the
        // destinations that `other` assigns to the corresponding input wire.
        let splice = |p: &Port| -> Port {
            match *p {
                Port::Balancer { balancer, port } => Port::Balancer { balancer, port },
                Port::Output(o) => shift(&other.inputs[o]),
            }
        };

        let mut balancers = Vec::with_capacity(self.balancers.len() + other.balancers.len());
        for b in &self.balancers {
            balancers.push(BalancerNode {
                fan_in: b.fan_in,
                fan_out: b.fan_out,
                outputs: b.outputs.iter().map(splice).collect(),
            });
        }
        for b in &other.balancers {
            balancers.push(BalancerNode {
                fan_in: b.fan_in,
                fan_out: b.fan_out,
                outputs: b.outputs.iter().map(shift).collect(),
            });
        }
        let inputs: Vec<Port> = self.inputs.iter().map(splice).collect();

        let (depths, depth) = compute_depths(self.input_width, &inputs, &balancers)
            .expect("cascade of two acyclic networks is acyclic");
        Ok(Network {
            input_width: self.input_width,
            output_width: other.output_width,
            inputs,
            balancers,
            depths,
            depth,
        })
    }
}

/// Computes the 1-based depth of every balancer and the overall network
/// depth, or `Err(())` if the wiring is cyclic.
pub(crate) fn compute_depths(
    _input_width: usize,
    inputs: &[Port],
    balancers: &[BalancerNode],
) -> Result<(Vec<usize>, usize), ()> {
    let n = balancers.len();
    // indegree in terms of *wires* feeding each balancer from other balancers.
    let mut pending_preds = vec![0usize; n];
    for b in balancers {
        for out in &b.outputs {
            if let Port::Balancer { balancer, .. } = *out {
                pending_preds[balancer] += 1;
            }
        }
    }
    let mut depths = vec![0usize; n];
    // Balancers fed exclusively by network inputs start at depth 1; we seed
    // every balancer's depth at 1 and raise it as predecessors finalize.
    for d in depths.iter_mut() {
        *d = 1;
    }
    // Kahn's algorithm over balancer-to-balancer wires.
    let mut queue: Vec<usize> = (0..n).filter(|&i| pending_preds[i] == 0).collect();
    // Network inputs do not affect depth beyond the seed of 1.
    let _ = inputs;
    let mut visited = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let b = queue[head];
        head += 1;
        visited += 1;
        for out in &balancers[b].outputs {
            if let Port::Balancer { balancer, .. } = *out {
                if depths[balancer] < depths[b] + 1 {
                    depths[balancer] = depths[b] + 1;
                }
                pending_preds[balancer] -= 1;
                if pending_preds[balancer] == 0 {
                    queue.push(balancer);
                }
            }
        }
    }
    if visited != n {
        return Err(());
    }
    let depth = depths.iter().copied().max().unwrap_or(0);
    Ok((depths, depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// A single (2,2)-balancer network.
    fn single_balancer() -> Network {
        let mut b = NetworkBuilder::new(2, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_input(1, bal, 1);
        b.connect_to_output(bal, 0, 0);
        b.connect_to_output(bal, 1, 1);
        b.build().expect("valid")
    }

    #[test]
    fn single_balancer_shape() {
        let net = single_balancer();
        assert_eq!(net.input_width(), 2);
        assert_eq!(net.output_width(), 2);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.num_balancers(), 1);
        assert!(net.is_regular());
        assert_eq!(net.balancer_census(), vec![((2, 2), 1)]);
        assert_eq!(net.layers(), vec![vec![BalancerId(0)]]);
        assert_eq!(net.num_wires(), 4);
    }

    #[test]
    fn cascade_of_two_single_balancers() {
        let a = single_balancer();
        let b = single_balancer();
        let c = a.cascade(&b).expect("widths match");
        assert_eq!(c.input_width(), 2);
        assert_eq!(c.output_width(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.num_balancers(), 2);
        assert_eq!(c.layers().len(), 2);
    }

    #[test]
    fn cascade_rejects_width_mismatch() {
        let a = single_balancer();
        let mut builder = NetworkBuilder::new(1, 2);
        let bal = builder.add_balancer(1, 2);
        builder.connect_input(0, bal, 0);
        builder.connect_to_output(bal, 0, 0);
        builder.connect_to_output(bal, 1, 1);
        let tree = builder.build().expect("valid");
        assert!(matches!(tree.cascade(&a).map(|_| ()), Ok(())));
        assert!(matches!(
            a.cascade(&tree),
            Err(BuildError::WidthMismatch { upstream_outputs: 2, downstream_inputs: 1 })
        ));
    }

    #[test]
    fn topological_order_respects_depth() {
        let a = single_balancer();
        let b = single_balancer();
        let c = a.cascade(&b).expect("widths match");
        let order = c.topological_order();
        let depths: Vec<usize> = order.iter().map(|&id| c.balancer_depth(id)).collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(depths, sorted);
    }
}
