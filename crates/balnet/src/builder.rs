//! Incremental construction and validation of network topologies.

use crate::error::BuildError;
use crate::topology::{compute_depths, BalancerId, BalancerNode, Network, Port};

/// Destination "slot" used internally while wiring up a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    NetworkInput(usize),
    BalancerOutput { balancer: usize, port: usize },
}

/// A mutable builder for [`Network`] topologies.
///
/// The builder lets constructions express wiring naturally — "connect output
/// port 1 of balancer `a` to input port 0 of balancer `b`" — and performs
/// full validation in [`NetworkBuilder::build`]: every balancer input port
/// and every network output wire must have exactly one incoming wire, every
/// balancer output and network input must be routed, and the wiring must be
/// acyclic.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_width: usize,
    output_width: usize,
    balancers: Vec<(usize, usize)>, // (fan_in, fan_out)
    /// For each source, where does its wire go (if connected yet)?
    input_targets: Vec<Option<Port>>,
    output_targets: Vec<Vec<Option<Port>>>,
}

impl NetworkBuilder {
    /// Creates a builder for a network with the given input and output
    /// widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero.
    #[must_use]
    pub fn new(input_width: usize, output_width: usize) -> Self {
        assert!(input_width > 0, "input width must be positive");
        assert!(output_width > 0, "output width must be positive");
        Self {
            input_width,
            output_width,
            balancers: Vec::new(),
            input_targets: vec![None; input_width],
            output_targets: Vec::new(),
        }
    }

    /// The input width the network will have.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// The output width the network will have.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Adds a `(fan_in, fan_out)`-balancer and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero.
    pub fn add_balancer(&mut self, fan_in: usize, fan_out: usize) -> BalancerId {
        assert!(fan_in > 0, "balancer fan-in must be positive");
        assert!(fan_out > 0, "balancer fan-out must be positive");
        let id = BalancerId(self.balancers.len());
        self.balancers.push((fan_in, fan_out));
        self.output_targets.push(vec![None; fan_out]);
        id
    }

    /// Routes network input wire `input` to input port `port` of `balancer`.
    ///
    /// # Panics
    ///
    /// Panics if the wire indices are out of range or the input wire is
    /// already routed.
    pub fn connect_input(&mut self, input: usize, balancer: BalancerId, port: usize) {
        assert!(input < self.input_width, "network input {input} out of range");
        assert!(balancer.0 < self.balancers.len(), "no balancer {}", balancer.0);
        assert!(port < self.balancers[balancer.0].0, "input port {port} out of range");
        assert!(self.input_targets[input].is_none(), "network input {input} is already connected");
        self.input_targets[input] = Some(Port::Balancer { balancer: balancer.0, port });
    }

    /// Routes network input wire `input` directly to network output wire
    /// `output` (a pure wire with no balancer).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or the input is already routed.
    pub fn connect_input_to_output(&mut self, input: usize, output: usize) {
        assert!(input < self.input_width, "network input {input} out of range");
        assert!(output < self.output_width, "network output {output} out of range");
        assert!(self.input_targets[input].is_none(), "network input {input} is already connected");
        self.input_targets[input] = Some(Port::Output(output));
    }

    /// Connects output port `from_port` of balancer `from` to input port
    /// `to_port` of balancer `to`.
    ///
    /// # Panics
    ///
    /// Panics if ids or ports are out of range or the output port is
    /// already connected.
    pub fn connect(&mut self, from: BalancerId, from_port: usize, to: BalancerId, to_port: usize) {
        assert!(from.0 < self.balancers.len(), "no balancer {}", from.0);
        assert!(to.0 < self.balancers.len(), "no balancer {}", to.0);
        assert!(from_port < self.balancers[from.0].1, "output port {from_port} out of range");
        assert!(to_port < self.balancers[to.0].0, "input port {to_port} out of range");
        assert!(
            self.output_targets[from.0][from_port].is_none(),
            "output port {from_port} of balancer {} is already connected",
            from.0
        );
        self.output_targets[from.0][from_port] =
            Some(Port::Balancer { balancer: to.0, port: to_port });
    }

    /// Connects output port `from_port` of balancer `from` to network output
    /// wire `output`.
    ///
    /// # Panics
    ///
    /// Panics if ids or ports are out of range or the output port is
    /// already connected.
    pub fn connect_to_output(&mut self, from: BalancerId, from_port: usize, output: usize) {
        assert!(from.0 < self.balancers.len(), "no balancer {}", from.0);
        assert!(from_port < self.balancers[from.0].1, "output port {from_port} out of range");
        assert!(output < self.output_width, "network output {output} out of range");
        assert!(
            self.output_targets[from.0][from_port].is_none(),
            "output port {from_port} of balancer {} is already connected",
            from.0
        );
        self.output_targets[from.0][from_port] = Some(Port::Output(output));
    }

    /// Validates the wiring and produces an immutable [`Network`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] describing the first problem found:
    /// unconnected or doubly-connected ports, unrouted inputs, or cycles.
    pub fn build(self) -> Result<Network, BuildError> {
        // 1. Every network input routed.
        let mut inputs = Vec::with_capacity(self.input_width);
        for (wire, tgt) in self.input_targets.iter().enumerate() {
            match tgt {
                Some(p) => inputs.push(*p),
                None => return Err(BuildError::UnconnectedNetworkInput { wire }),
            }
        }
        // 2. Every balancer output routed.
        let mut balancers = Vec::with_capacity(self.balancers.len());
        for (idx, ((fan_in, fan_out), outs)) in
            self.balancers.iter().zip(&self.output_targets).enumerate()
        {
            let mut outputs = Vec::with_capacity(*fan_out);
            for (port, tgt) in outs.iter().enumerate() {
                match tgt {
                    Some(p) => outputs.push(*p),
                    None => {
                        return Err(BuildError::UnconnectedBalancerOutput { balancer: idx, port })
                    }
                }
            }
            balancers.push(BalancerNode { fan_in: *fan_in, fan_out: *fan_out, outputs });
        }
        // 3. Every balancer input port and network output wire has exactly
        //    one incoming wire.
        let mut input_port_seen: Vec<Vec<usize>> =
            self.balancers.iter().map(|(fi, _)| vec![0usize; *fi]).collect();
        let mut output_seen = vec![0usize; self.output_width];
        let all_sources =
            inputs.iter().copied().chain(balancers.iter().flat_map(|b| b.outputs.iter().copied()));
        for port in all_sources {
            match port {
                Port::Balancer { balancer, port } => {
                    input_port_seen[balancer][port] += 1;
                }
                Port::Output(o) => output_seen[o] += 1,
            }
        }
        for (balancer, ports) in input_port_seen.iter().enumerate() {
            for (port, &count) in ports.iter().enumerate() {
                if count == 0 {
                    return Err(BuildError::UnconnectedBalancerInput { balancer, port });
                }
                if count > 1 {
                    return Err(BuildError::MultiplyConnectedBalancerInput { balancer, port });
                }
            }
        }
        for (wire, &count) in output_seen.iter().enumerate() {
            if count == 0 {
                return Err(BuildError::UnconnectedNetworkOutput { wire });
            }
            if count > 1 {
                return Err(BuildError::MultiplyConnectedNetworkOutput { wire });
            }
        }
        // 4. Acyclicity + depths.
        let (depths, depth) = compute_depths(self.input_width, &inputs, &balancers)
            .map_err(|()| BuildError::Cyclic)?;
        Ok(Network {
            input_width: self.input_width,
            output_width: self.output_width,
            inputs,
            balancers,
            depths,
            depth,
        })
    }

    /// Helper used by generated constructions: a fluent variant of
    /// [`Self::build`] that panics with a readable message on failure.
    /// Constructions in the `counting`/`baselines` crates are all verified
    /// by tests, so a wiring error is a programming bug there, not a user
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if validation fails.
    #[must_use]
    pub fn build_expect(self, what: &str) -> Network {
        match self.build() {
            Ok(net) => net,
            Err(e) => panic!("invalid {what} construction: {e}"),
        }
    }

    /// The source feeding a given destination so far, used by tests.
    #[must_use]
    #[allow(dead_code)]
    fn sources(&self) -> Vec<Source> {
        let mut v = Vec::new();
        for (i, t) in self.input_targets.iter().enumerate() {
            if t.is_some() {
                v.push(Source::NetworkInput(i));
            }
        }
        for (b, outs) in self.output_targets.iter().enumerate() {
            for (p, t) in outs.iter().enumerate() {
                if t.is_some() {
                    v.push(Source::BalancerOutput { balancer: b, port: p });
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unconnected_network_input() {
        let mut b = NetworkBuilder::new(2, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        // input 1 left dangling
        b.connect_to_output(bal, 0, 0);
        b.connect_to_output(bal, 1, 1);
        assert_eq!(b.build().unwrap_err(), BuildError::UnconnectedNetworkInput { wire: 1 });
    }

    #[test]
    fn detects_unconnected_balancer_input() {
        let mut b = NetworkBuilder::new(1, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_to_output(bal, 0, 0);
        b.connect_to_output(bal, 1, 1);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnconnectedBalancerInput { balancer: 0, port: 1 }
        );
    }

    #[test]
    fn detects_unconnected_balancer_output() {
        let mut b = NetworkBuilder::new(2, 1);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_input(1, bal, 1);
        b.connect_to_output(bal, 0, 0);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnconnectedBalancerOutput { balancer: 0, port: 1 }
        );
    }

    #[test]
    fn detects_doubly_driven_output_wire() {
        let mut b = NetworkBuilder::new(2, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_input(1, bal, 1);
        b.connect_to_output(bal, 0, 0);
        b.connect_to_output(bal, 1, 0);
        assert_eq!(b.build().unwrap_err(), BuildError::MultiplyConnectedNetworkOutput { wire: 0 });
    }

    #[test]
    fn detects_cycle() {
        let mut b = NetworkBuilder::new(2, 2);
        let x = b.add_balancer(2, 2);
        let y = b.add_balancer(2, 2);
        b.connect_input(0, x, 0);
        b.connect_input(1, y, 0);
        b.connect(x, 0, y, 1);
        b.connect(y, 0, x, 1);
        b.connect_to_output(x, 1, 0);
        b.connect_to_output(y, 1, 1);
        assert_eq!(b.build().unwrap_err(), BuildError::Cyclic);
    }

    #[test]
    fn pure_wire_network_is_allowed() {
        let mut b = NetworkBuilder::new(3, 3);
        for i in 0..3 {
            b.connect_input_to_output(i, 2 - i);
        }
        let net = b.build().expect("pure wires are a valid (trivial) network");
        assert_eq!(net.depth(), 0);
        assert_eq!(net.num_balancers(), 0);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics_eagerly() {
        let mut b = NetworkBuilder::new(2, 2);
        let bal = b.add_balancer(2, 2);
        b.connect_input(0, bal, 0);
        b.connect_input(0, bal, 1);
    }
}
