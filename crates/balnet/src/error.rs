//! Error types for network construction and validation.

use std::fmt;

/// An error produced while building or validating a balancing network
/// topology with [`crate::NetworkBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A balancer input port has no incoming wire.
    UnconnectedBalancerInput {
        /// The balancer whose input is dangling.
        balancer: usize,
        /// The input port index within that balancer.
        port: usize,
    },
    /// A balancer input port has more than one incoming wire.
    MultiplyConnectedBalancerInput {
        /// The balancer whose input is over-connected.
        balancer: usize,
        /// The input port index within that balancer.
        port: usize,
    },
    /// A balancer output port was never connected to anything.
    UnconnectedBalancerOutput {
        /// The balancer whose output is dangling.
        balancer: usize,
        /// The output port index within that balancer.
        port: usize,
    },
    /// A network output wire has no incoming wire.
    UnconnectedNetworkOutput {
        /// The network output wire index.
        wire: usize,
    },
    /// A network output wire has more than one incoming wire.
    MultiplyConnectedNetworkOutput {
        /// The network output wire index.
        wire: usize,
    },
    /// A network input wire was never routed anywhere.
    UnconnectedNetworkInput {
        /// The network input wire index.
        wire: usize,
    },
    /// The network contains a cycle (balancing networks must be acyclic).
    Cyclic,
    /// A port index was out of range for the referenced balancer.
    PortOutOfRange {
        /// The balancer being referenced.
        balancer: usize,
        /// The offending port index.
        port: usize,
    },
    /// A balancer id was out of range.
    NoSuchBalancer {
        /// The offending balancer id.
        balancer: usize,
    },
    /// Two networks being composed have mismatched widths.
    WidthMismatch {
        /// Output width of the upstream network.
        upstream_outputs: usize,
        /// Input width of the downstream network.
        downstream_inputs: usize,
    },
    /// A parameter was invalid (e.g. width zero, or a width that is not a
    /// power of two where one is required).
    InvalidParameter(
        /// Human-readable description of the violated requirement.
        String,
    ),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnconnectedBalancerInput { balancer, port } => {
                write!(f, "input port {port} of balancer {balancer} has no incoming wire")
            }
            Self::MultiplyConnectedBalancerInput { balancer, port } => {
                write!(f, "input port {port} of balancer {balancer} has multiple incoming wires")
            }
            Self::UnconnectedBalancerOutput { balancer, port } => {
                write!(f, "output port {port} of balancer {balancer} is not connected")
            }
            Self::UnconnectedNetworkOutput { wire } => {
                write!(f, "network output wire {wire} has no incoming wire")
            }
            Self::MultiplyConnectedNetworkOutput { wire } => {
                write!(f, "network output wire {wire} has multiple incoming wires")
            }
            Self::UnconnectedNetworkInput { wire } => {
                write!(f, "network input wire {wire} is not routed anywhere")
            }
            Self::Cyclic => write!(f, "the network contains a cycle"),
            Self::PortOutOfRange { balancer, port } => {
                write!(f, "port {port} is out of range for balancer {balancer}")
            }
            Self::NoSuchBalancer { balancer } => write!(f, "no balancer with id {balancer}"),
            Self::WidthMismatch { upstream_outputs, downstream_inputs } => write!(
                f,
                "cannot cascade: upstream has {upstream_outputs} outputs but downstream expects {downstream_inputs} inputs"
            ),
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BuildError::UnconnectedBalancerInput { balancer: 3, port: 1 };
        assert!(e.to_string().contains("balancer 3"));
        let e = BuildError::WidthMismatch { upstream_outputs: 4, downstream_inputs: 8 };
        assert!(e.to_string().contains('4') && e.to_string().contains('8'));
        let e = BuildError::InvalidParameter("w must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }
}
