//! Graphviz (DOT) export of network topologies.
//!
//! The paper communicates its constructions through wiring diagrams
//! (Figs. 1–16). `to_dot` renders any [`Network`] as a left-to-right DOT
//! graph — balancers as boxes labelled with their `(p, q)` shape and
//! depth, wires as edges annotated with the output-port index — so that
//! `dot -Tsvg` reproduces the paper's figures for any instance.

use std::fmt::Write as _;

use crate::topology::{Network, Port};

/// Options controlling the DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name (`digraph <name> { ... }`).
    pub name: String,
    /// Whether to group balancers of equal depth into vertically aligned
    /// ranks (mirrors the layer structure of the figures).
    pub rank_by_layer: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self { name: "balancing_network".to_owned(), rank_by_layer: true }
    }
}

/// Renders the network as a Graphviz DOT document.
#[must_use]
pub fn to_dot(network: &Network, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&options.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");

    // Input and output pseudo-nodes.
    for i in 0..network.input_width() {
        let _ = writeln!(out, "  in{i} [shape=plaintext, label=\"x{i}\"];");
    }
    for o in 0..network.output_width() {
        let _ = writeln!(out, "  out{o} [shape=plaintext, label=\"y{o}\"];");
    }
    // Balancers.
    for (idx, b) in network.balancers().iter().enumerate() {
        let depth = network.balancer_depth(crate::topology::BalancerId(idx));
        let _ = writeln!(
            out,
            "  b{idx} [label=\"b{idx}\\n({}, {})\\nlayer {depth}\"];",
            b.fan_in, b.fan_out
        );
    }
    // Wires.
    let edge = |out: &mut String, from: String, port: &Port, label: Option<usize>| {
        let target = match *port {
            Port::Balancer { balancer, .. } => format!("b{balancer}"),
            Port::Output(o) => format!("out{o}"),
        };
        let label = label.map_or_else(String::new, |l| format!(" [label=\"{l}\", fontsize=8]"));
        let _ = writeln!(out, "  {from} -> {target}{label};");
    };
    for (i, port) in network.inputs().iter().enumerate() {
        edge(&mut out, format!("in{i}"), port, None);
    }
    for (idx, b) in network.balancers().iter().enumerate() {
        for (k, port) in b.outputs.iter().enumerate() {
            edge(&mut out, format!("b{idx}"), port, Some(k));
        }
    }
    // Ranks per layer.
    if options.rank_by_layer {
        for (layer_idx, layer) in network.layers().iter().enumerate() {
            let ids: Vec<String> = layer.iter().map(|id| format!("b{}", id.index())).collect();
            if !ids.is_empty() {
                let _ = writeln!(
                    out,
                    "  {{ rank=same; /* layer {} */ {}; }}",
                    layer_idx + 1,
                    ids.join("; ")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if cleaned.is_empty() {
        "network".to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn sample() -> Network {
        let mut b = NetworkBuilder::new(2, 4);
        let bal = b.add_balancer(2, 4);
        b.connect_input(0, bal, 0);
        b.connect_input(1, bal, 1);
        for o in 0..4 {
            b.connect_to_output(bal, o, o);
        }
        b.build().expect("valid")
    }

    #[test]
    fn dot_output_mentions_every_wire_and_balancer() {
        let net = sample();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.starts_with("digraph balancing_network {"));
        assert!(dot.contains("b0 [label=\"b0\\n(2, 4)\\nlayer 1\"];"));
        for i in 0..2 {
            assert!(dot.contains(&format!("in{i} ->")));
        }
        for o in 0..4 {
            assert!(dot.contains(&format!("out{o}")));
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn graph_name_is_sanitized() {
        let net = sample();
        let dot =
            to_dot(&net, &DotOptions { name: "C(4, 8) figure".to_owned(), rank_by_layer: false });
        assert!(dot.starts_with("digraph C_4__8__figure {"));
        assert!(!dot.contains("rank=same"));
    }
}
