//! Deterministic discrete-event simulation kernel with message-fault
//! injection.
//!
//! The interleaving checker ([`crate::model`]) explores *shared-memory*
//! schedules exhaustively; this module is its message-passing sibling
//! for the distributed layer: a seeded, fully deterministic event queue
//! plus a per-message fault plan (drop / duplicate / delay, and —
//! through randomized delays — reordering) and *structural* fault
//! events: scheduled network partitions ([`PartitionSchedule`], the
//! shape that drives split-brain scenarios) and crash-restart windows
//! (a harness schedules crash/restart pairs as ordinary events and
//! parks the victim's durable state while it is down). Everything a run
//! does derives from its seed, so any counterexample found by a checker
//! driving this kernel replays exactly from `(config, seed)`.
//!
//! The kernel is deliberately generic: it schedules opaque events `E`
//! keyed by `(virtual time, insertion sequence)` — the sequence number
//! breaks timestamp ties deterministically, which is what makes two
//! runs of the same seed byte-identical even when many events land on
//! the same tick. The cluster harness in `counting-cluster` wires its
//! node state machines, churn plan and invariant checker on top.

use serde::{Deserialize, Serialize};

/// A deterministic xorshift64* generator — the kernel's only source of
/// randomness, so a run is a pure function of its seed.
#[derive(Debug, Clone)]
pub struct SimRng(u64);

impl SimRng {
    /// Creates a generator from `seed` (a zero seed is remapped — the
    /// xorshift state must never be zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A uniform draw in `min..=max` (saturating to `min` when the
    /// bounds cross).
    pub fn range(&mut self, min: u64, max: u64) -> u64 {
        if max <= min {
            min
        } else {
            min + self.below(max - min + 1)
        }
    }

    /// `true` with probability `per_mille / 1000`.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        self.below(1000) < u64::from(per_mille)
    }

    /// Derives an independent sub-stream keyed by `salt` — used to give
    /// each concern (faults, churn, demand) its own stream so adding
    /// draws to one cannot perturb another.
    #[must_use]
    pub fn fork(&self, salt: u64) -> Self {
        let mut child = Self::new(self.0 ^ salt.wrapping_mul(0xA076_1D64_78BD_642F));
        // One warm-up draw decorrelates forks with nearby salts.
        let _ = child.next_u64();
        child
    }
}

/// Per-message fault probabilities and delay bounds. Probabilities are
/// integer per-mille, so fault decisions never depend on float
/// comparisons and serialize exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability (‰) that a message is silently dropped.
    pub drop_per_mille: u32,
    /// Probability (‰) that a delivered message is delivered twice (the
    /// duplicate draws its own delay, so the copies reorder freely).
    pub dup_per_mille: u32,
    /// Minimum delivery latency, in virtual ticks.
    pub min_delay: u64,
    /// Maximum delivery latency, in virtual ticks. Randomized latency in
    /// `min_delay..=max_delay` is what reorders concurrent messages.
    pub max_delay: u64,
}

impl FaultPlan {
    /// A fault-free plan delivering everything after `latency` ticks.
    #[must_use]
    pub fn reliable(latency: u64) -> Self {
        Self { drop_per_mille: 0, dup_per_mille: 0, min_delay: latency, max_delay: latency }
    }

    /// `true` when the plan can drop, duplicate or reorder.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        self.drop_per_mille > 0 || self.dup_per_mille > 0 || self.min_delay != self.max_delay
    }

    /// Decides the fate of one message: the list of delivery delays
    /// (empty = dropped, one entry = delivered, two = duplicated). The
    /// draw order is fixed — drop, then duplicate, then one delay per
    /// copy — so a decision stream is stable for a given RNG state.
    pub fn decide(&self, rng: &mut SimRng) -> Vec<u64> {
        if rng.chance(self.drop_per_mille) {
            return Vec::new();
        }
        let copies = if rng.chance(self.dup_per_mille) { 2 } else { 1 };
        (0..copies).map(|_| rng.range(self.min_delay, self.max_delay)).collect()
    }
}

/// One scheduled network partition: during `start..end`, every hop
/// between a member of `side_a` and a member of `side_b` is severed
/// (dropped at send time, like a cable cut). Nodes on the same side —
/// and nodes on *neither* side — communicate normally, which is what
/// lets a partitioned replica keep talking to clients while losing its
/// peers: the classic split-brain shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First tick of the partition (inclusive).
    pub start: u64,
    /// First tick after the partition (exclusive) — the heal time.
    pub end: u64,
    /// One side of the cut.
    pub side_a: Vec<u64>,
    /// The other side.
    pub side_b: Vec<u64>,
}

impl PartitionWindow {
    /// Whether this window severs a hop from `from` to `to` at `now`.
    #[must_use]
    pub fn severs(&self, now: u64, from: u64, to: u64) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        let a = |id| self.side_a.contains(&id);
        let b = |id| self.side_b.contains(&id);
        (a(from) && b(to)) || (b(from) && a(to))
    }
}

/// A set of scheduled partitions and crash-restart windows — the
/// *structural* fault events that complement [`FaultPlan`]'s per-hop
/// probabilistic ones. A harness consults [`Self::severed`] for every
/// hop it is about to transmit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    /// The scheduled windows (may overlap; any severing window cuts the
    /// hop).
    pub windows: Vec<PartitionWindow>,
}

impl PartitionSchedule {
    /// A schedule with no partitions.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any window severs the `from → to` hop at `now`.
    #[must_use]
    pub fn severed(&self, now: u64, from: u64, to: u64) -> bool {
        self.windows.iter().any(|w| w.severs(now, from, to))
    }

    /// The last heal time across all windows (0 when empty): after this
    /// tick the network is whole again, which drains rely on.
    #[must_use]
    pub fn healed_by(&self) -> u64 {
        self.windows.iter().map(|w| w.end).max().unwrap_or(0)
    }
}

/// One scheduled entry: ordering key only — the payload never
/// participates in comparisons, so `E` needs no `Ord`.
#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the queue pops the
        // earliest (time, seq) first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue: events pop in `(time, insertion
/// sequence)` order, so same-tick events resolve in the order they were
/// scheduled — never by allocation address or hash order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: std::collections::BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: std::collections::BinaryHeap::new(), next_seq: 0, now: 0 }
    }

    /// The virtual time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute virtual time `at` (clamped forward
    /// to `now` — the past is immutable) and returns its sequence
    /// number.
    pub fn push(&mut self, at: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at: at.max(self.now), seq, event });
        seq
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.seq, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_fork_is_independent() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);

        let mut fork1 = SimRng::new(42).fork(1);
        let mut fork2 = SimRng::new(42).fork(2);
        assert_ne!(fork1.next_u64(), fork2.next_u64(), "forks draw distinct streams");
        assert_ne!(SimRng::new(0).next_u64(), 0, "zero seed is remapped");
    }

    #[test]
    fn range_and_chance_respect_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.range(5, 5), 5);
        assert_eq!(rng.range(9, 3), 9, "crossed bounds saturate to min");
        for _ in 0..100 {
            assert!(!rng.chance(0), "0\u{2030} never fires");
            assert!(rng.chance(1000), "1000\u{2030} always fires");
        }
    }

    #[test]
    fn fault_plan_decides_drop_dup_and_delay() {
        let mut rng = SimRng::new(11);
        let reliable = FaultPlan::reliable(4);
        assert!(!reliable.is_faulty());
        for _ in 0..50 {
            assert_eq!(reliable.decide(&mut rng), vec![4]);
        }

        let always_drop = FaultPlan { drop_per_mille: 1000, ..FaultPlan::reliable(1) };
        assert!(always_drop.decide(&mut rng).is_empty());

        let always_dup =
            FaultPlan { dup_per_mille: 1000, min_delay: 1, max_delay: 6, drop_per_mille: 0 };
        assert!(always_dup.is_faulty());
        let delays = always_dup.decide(&mut rng);
        assert_eq!(delays.len(), 2, "duplicated message delivers twice");
        assert!(delays.iter().all(|d| (1..=6).contains(d)));
    }

    #[test]
    fn fault_decisions_replay_from_the_seed() {
        let plan =
            FaultPlan { drop_per_mille: 200, dup_per_mille: 100, min_delay: 1, max_delay: 30 };
        let run = |seed: u64| -> Vec<Vec<u64>> {
            let mut rng = SimRng::new(seed);
            (0..100).map(|_| plan.decide(&mut rng)).collect()
        };
        assert_eq!(run(99), run(99), "same seed, same fault schedule");
        assert_ne!(run(99), run(100), "different seeds diverge");
    }

    #[test]
    fn partition_windows_sever_cross_side_hops_only() {
        let window =
            PartitionWindow { start: 10, end: 20, side_a: vec![100], side_b: vec![101, 102] };
        // Active window, cross-side: severed both directions.
        assert!(window.severs(10, 100, 101));
        assert!(window.severs(19, 102, 100));
        // Same side, or a node on neither side: unaffected.
        assert!(!window.severs(15, 101, 102));
        assert!(!window.severs(15, 1, 100), "clients outside the cut still reach side A");
        assert!(!window.severs(15, 1, 101));
        // Outside the window: healed.
        assert!(!window.severs(9, 100, 101));
        assert!(!window.severs(20, 100, 101), "end is exclusive — the heal tick delivers");

        let schedule = PartitionSchedule { windows: vec![window.clone()] };
        assert!(schedule.severed(12, 100, 102));
        assert!(!schedule.severed(25, 100, 102));
        assert_eq!(schedule.healed_by(), 20);
        assert!(!PartitionSchedule::none().severed(12, 100, 102));
        assert_eq!(PartitionSchedule::none().healed_by(), 0);

        let json = serde_json::to_string(&schedule).expect("schedule serializes");
        let back: PartitionSchedule = serde_json::from_str(&json).expect("parses back");
        assert_eq!(back, schedule, "partition schedules replay through serde");
    }

    #[test]
    fn queue_pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, "e");
        q.push(3, "a");
        q.push(3, "b");
        q.push(4, "d");
        q.push(3, "c");
        let order: Vec<(u64, &str)> =
            std::iter::from_fn(|| q.pop().map(|(at, _, e)| (at, e))).collect();
        assert_eq!(order, vec![(3, "a"), (3, "b"), (3, "c"), (4, "d"), (5, "e")]);
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn queue_clamps_events_scheduled_in_the_past() {
        let mut q = EventQueue::new();
        q.push(10, "late");
        assert!(q.pop().is_some());
        q.push(2, "past");
        let (at, _, _) = q.pop().expect("event present");
        assert_eq!(at, 10, "past events are delivered now, never before");
    }
}
