//! A discrete model of the elimination/combining arena that
//! `counting-runtime::elimination` places in front of a shared counter.
//!
//! The runtime layer lets concurrent `next_batch` callers with arbitrary
//! batch sizes collide on a small arena of exchanger slots, merge their
//! requests into one combined contiguous reservation, and split the
//! resulting range gap-free. This module reproduces that protocol in the
//! simulator's deterministic round-based world, so the collision rate and
//! traversal reduction measured on real hardware (`exp_elimination`) can
//! be compared against a schedule-controlled prediction — the same
//! simulated-versus-measured discipline the stall-model simulator already
//! provides for contention.
//!
//! Two pieces are shared with the runtime:
//!
//! * [`batch_size_sequence`] — the deterministic mixed-batch-size
//!   generator. The stress harness (`Batching::Mixed`) draws per-operation
//!   sizes from the *same* stream, so a simulated arena run and a
//!   real-thread stress run with equal parameters process identical
//!   request-size sequences.
//! * The slot protocol itself: offer, pairwise capture, combined
//!   reservation, split, and timeout fallback, mirrored here as
//!   round-based state transitions — including the runtime's multi-slot
//!   probe window ([`ArenaConfig::probe`]) and its `Park` waiting
//!   strategy, modeled as offers that skip rounds instead of losing
//!   patience ([`ArenaConfig::park`]).

use serde::Serialize;

/// Returns the deterministic sequence of mixed batch sizes for one
/// logical stream (a thread in the runtime, a process in the model).
///
/// Sizes are drawn uniformly from `1..=max_k` by a SplitMix64 generator
/// seeded from `(seed, stream)`, so distinct streams are decorrelated but
/// every run with the same parameters sees identical sequences — on real
/// hardware and in the simulator alike.
///
/// # Panics
///
/// Panics if `max_k` is zero.
pub fn batch_size_sequence(seed: u64, stream: u64, max_k: usize) -> impl Iterator<Item = usize> {
    assert!(max_k > 0, "max_k must be at least 1");
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    std::iter::repeat_with(move || {
        // SplitMix64: one additive step + two xor-shift mixes per draw.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % max_k as u64) as usize + 1
    })
}

/// Configuration of one arena-model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Number of concurrent processes driving the arena.
    pub processes: usize,
    /// Number of exchanger slots in the arena.
    pub slots: usize,
    /// Rounds a published offer waits for a partner before the process
    /// gives up and reserves solo (`0` = never offer, always go solo).
    /// With [`Self::park`] set, patience is wall-clock rather than
    /// round-counted and this field only keeps its `0 = never offer`
    /// meaning.
    pub spin_rounds: usize,
    /// Operations per process.
    pub ops_per_process: u64,
    /// Batch sizes are drawn from `1..=max_k`.
    pub max_k: usize,
    /// Seed of the shared batch-size stream (see [`batch_size_sequence`]).
    pub seed: u64,
    /// Probe window: how many adjacent slots (starting at the hashed home
    /// slot) a process scans for a partner, and spills its offer into,
    /// before reserving solo. Clamped to `slots`; the runtime narrows its
    /// window adaptively with the merge-credit score, the model always
    /// probes the full window (an upper envelope, like its collision
    /// rate). Must be `>= 1`.
    pub probe: usize,
    /// Models the runtime's `Park` waiting strategy: a parked offer
    /// *skips rounds* instead of losing patience — it stays claimable as
    /// long as any process is still making progress, because a sleeping
    /// publisher's wall-clock timeout dwarfs the partner's arrival time.
    /// Only when every live process is parked (nobody left to claim
    /// anybody) does the longest-waiting offer time out and retire solo,
    /// one per round — the model's stand-in for the wall-clock
    /// `park_timeout` expiring in a quiescent system.
    pub park: bool,
}

/// The outcome of one arena-model run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArenaReport {
    /// Number of processes of the run.
    pub processes: usize,
    /// Number of arena slots of the run.
    pub slots: usize,
    /// Total operations performed.
    pub ops: u64,
    /// Total values reserved (sum of all batch sizes).
    pub values: u64,
    /// Reservations performed against the underlying counter (combined
    /// pairs count once; every solo fallback counts once).
    pub reservations: u64,
    /// Operations that merged with a partner (both sides counted, so this
    /// is always even and `collisions / 2` is the number of pairs).
    pub collisions: u64,
    /// Operations that reserved solo (no partner within the spin bound,
    /// or the arena slot was busy).
    pub fallbacks: u64,
    /// `collisions / ops` — the fraction of operations served by merging.
    pub collision_rate: f64,
    /// `ops / reservations` — how many operations one underlying
    /// reservation serves on average (`2.0` = perfect pairwise merging).
    pub combining_factor: f64,
    /// Whether the values reserved form exactly `0..values` (must always
    /// hold: contiguous blocks tile the value space by construction).
    pub is_exact_range: bool,
}

/// Where a modeled process currently is in the slot protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// About to start its next operation (or done).
    Idle,
    /// Waiting in a slot with a published offer; the payload counts the
    /// rounds of patience left.
    Waiting { slot: usize, patience: usize },
}

/// Runs the round-based arena model to completion.
///
/// Each round every live process takes one protocol step, in rotating
/// order (the rotation stands in for scheduling nondeterminism while
/// keeping the run reproducible):
///
/// * an idle process draws its next batch size and probes a window of
///   [`ArenaConfig::probe`] slots starting at its hashed home slot: the
///   first waiting offer found merges — one combined reservation for the
///   summed sizes, split contiguously, both operations complete; failing
///   that, the first free slot of the window receives the process's own
///   offer (patience = `spin_rounds`); a fully busy window reserves solo;
/// * a waiting process loses one round of patience; at zero it retracts
///   the offer and reserves solo. With [`ArenaConfig::park`] the offer
///   skips rounds instead (see the field docs) and only times out when
///   every live process is parked.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero processes, slots,
/// operations, `max_k`, or a zero probe window).
#[must_use]
pub fn simulate_arena(config: &ArenaConfig) -> ArenaReport {
    assert!(config.processes > 0, "at least one process is required");
    assert!(config.slots > 0, "the arena needs at least one slot");
    assert!(config.ops_per_process > 0, "at least one operation per process is required");
    assert!(config.max_k > 0, "max_k must be at least 1");
    assert!(config.probe > 0, "the probe window needs at least one slot");

    let n = config.processes;
    let mut sizes: Vec<_> =
        (0..n).map(|p| batch_size_sequence(config.seed, p as u64, config.max_k)).collect();
    let mut remaining: Vec<u64> = vec![config.ops_per_process; n];
    let mut state = vec![ProcState::Idle; n];
    // Slot occupancy: the parked process id and its offered size.
    let mut slot_offer: Vec<Option<(usize, usize)>> = vec![None; config.slots];
    // Slot choice per process: a per-process counter hashed like the
    // runtime's slot hint, so processes revisit different slots over time.
    let mut probes: Vec<u64> = (0..n as u64).collect();

    let mut cursor = 0u64; // the contiguous value cursor
    let mut bases: Vec<(u64, u64)> = Vec::new(); // (base, len) reservations
    let mut reservations = 0u64;
    let mut collisions = 0u64;
    let mut fallbacks = 0u64;
    let mut values = 0u64;
    let mut ops = 0u64;

    let reserve = |len: u64, out: &mut Vec<(u64, u64)>, cursor: &mut u64| {
        out.push((*cursor, len));
        *cursor += len;
    };

    let window = config.probe.min(config.slots);
    let mut round = 0usize;
    while remaining.iter().any(|&r| r > 0) || state.iter().any(|s| *s != ProcState::Idle) {
        if config.park {
            // Parked offers only expire when nobody is left to claim
            // them: every live process is waiting. Retire the
            // lowest-indexed waiter (the model's deterministic stand-in
            // for "longest parked"), one per round, which restores
            // progress and bounds the run.
            let stalled = state.iter().enumerate().all(|(p, s)| match s {
                ProcState::Waiting { .. } => true,
                ProcState::Idle => remaining[p] == 0,
            });
            if stalled {
                if let Some(p) = state.iter().position(|s| matches!(s, ProcState::Waiting { .. })) {
                    let ProcState::Waiting { slot, .. } = state[p] else { unreachable!() };
                    let (_, k) = slot_offer[slot].take().expect("offer present");
                    reserve(k as u64, &mut bases, &mut cursor);
                    reservations += 1;
                    fallbacks += 1;
                    state[p] = ProcState::Idle;
                    round += 1;
                    continue;
                }
            }
        }
        for offset in 0..n {
            // Rotate who moves first each round.
            let p = (round + offset) % n;
            match state[p] {
                ProcState::Waiting { slot, patience } => {
                    if config.park {
                        // Round-skipping: a parked offer keeps its
                        // patience while the system is live (the stall
                        // check above is the only way it expires).
                    } else if patience == 0 {
                        // Timeout: retract the offer, reserve solo.
                        let (_, k) = slot_offer[slot].take().expect("offer present");
                        reserve(k as u64, &mut bases, &mut cursor);
                        reservations += 1;
                        fallbacks += 1;
                        state[p] = ProcState::Idle;
                    } else {
                        state[p] = ProcState::Waiting { slot, patience: patience - 1 };
                    }
                }
                ProcState::Idle => {
                    if remaining[p] == 0 {
                        continue;
                    }
                    remaining[p] -= 1;
                    ops += 1;
                    let k = sizes[p].next().expect("infinite stream");
                    values += k as u64;
                    probes[p] = probes[p].wrapping_add(0x9E37_79B9);
                    let home = (probes[p] % config.slots as u64) as usize;
                    // Capture scan: merge with the first offer in the
                    // probe window.
                    let captured = (0..window).map(|i| (home + i) % config.slots).find(
                        |&slot| matches!(slot_offer[slot], Some((partner, _)) if partner != p),
                    );
                    if let Some(slot) = captured {
                        // Collide: one combined reservation, split.
                        let (partner, partner_k) = slot_offer[slot].take().expect("offer present");
                        state[partner] = ProcState::Idle;
                        reserve((partner_k + k) as u64, &mut bases, &mut cursor);
                        reservations += 1;
                        collisions += 2;
                        continue;
                    }
                    // No partner: spill the offer into the first free
                    // slot of the window, or reserve solo if the window
                    // is fully busy (or offering is disabled).
                    let free = (0..window)
                        .map(|i| (home + i) % config.slots)
                        .find(|&slot| slot_offer[slot].is_none());
                    match free {
                        Some(slot) if config.spin_rounds > 0 => {
                            slot_offer[slot] = Some((p, k));
                            state[p] = ProcState::Waiting { slot, patience: config.spin_rounds };
                        }
                        _ => {
                            reserve(k as u64, &mut bases, &mut cursor);
                            reservations += 1;
                            fallbacks += 1;
                        }
                    }
                }
            }
        }
        round += 1;
    }

    // Contiguous reservations must tile 0..cursor exactly.
    let mut sorted = bases.clone();
    sorted.sort_unstable();
    let mut expect = 0u64;
    let mut exact = true;
    for &(base, len) in &sorted {
        if base != expect {
            exact = false;
            break;
        }
        expect = base + len;
    }
    exact = exact && expect == values && cursor == values;

    ArenaReport {
        processes: n,
        slots: config.slots,
        ops,
        values,
        reservations,
        collisions,
        fallbacks,
        collision_rate: if ops == 0 { 0.0 } else { collisions as f64 / ops as f64 },
        combining_factor: if reservations == 0 { 0.0 } else { ops as f64 / reservations as f64 },
        is_exact_range: exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(processes: usize, slots: usize, spin_rounds: usize) -> ArenaConfig {
        ArenaConfig {
            processes,
            slots,
            spin_rounds,
            ops_per_process: 200,
            max_k: 8,
            seed: 42,
            probe: 1,
            park: false,
        }
    }

    #[test]
    fn sequences_are_deterministic_and_in_range() {
        let a: Vec<usize> = batch_size_sequence(7, 3, 32).take(100).collect();
        let b: Vec<usize> = batch_size_sequence(7, 3, 32).take(100).collect();
        assert_eq!(a, b, "same seed and stream must replay identically");
        assert!(a.iter().all(|&k| (1..=32).contains(&k)));
        let other: Vec<usize> = batch_size_sequence(7, 4, 32).take(100).collect();
        assert_ne!(a, other, "distinct streams must be decorrelated");
    }

    #[test]
    fn sequences_cover_the_whole_size_range() {
        let seen: std::collections::HashSet<usize> =
            batch_size_sequence(1, 0, 4).take(200).collect();
        assert_eq!(seen, (1..=4).collect());
    }

    #[test]
    #[should_panic(expected = "max_k must be at least 1")]
    fn zero_max_k_rejected() {
        let _ = batch_size_sequence(0, 0, 0);
    }

    #[test]
    fn accounting_adds_up_and_range_is_exact() {
        let report = simulate_arena(&config(8, 4, 6));
        assert_eq!(report.ops, 8 * 200);
        assert_eq!(report.collisions + report.fallbacks, report.ops);
        assert_eq!(report.collisions % 2, 0, "collisions count both partners");
        assert_eq!(report.reservations, report.collisions / 2 + report.fallbacks);
        assert!(report.is_exact_range, "contiguous blocks must tile: {report:?}");
        assert!(report.values >= report.ops, "every op reserves at least one value");
    }

    #[test]
    fn zero_spin_means_every_operation_goes_solo() {
        let report = simulate_arena(&config(8, 4, 0));
        assert_eq!(report.collisions, 0);
        assert_eq!(report.fallbacks, report.ops);
        assert_eq!(report.reservations, report.ops);
        assert!((report.combining_factor - 1.0).abs() < f64::EPSILON);
        assert!(report.is_exact_range);
    }

    #[test]
    fn patient_pairs_on_one_slot_mostly_combine() {
        // Two processes sharing one slot with ample patience should merge
        // nearly every operation (the tail of a run can leave one solo).
        let report = simulate_arena(&config(2, 1, 64));
        assert!(report.collision_rate > 0.9, "pairs should combine almost always: {report:?}");
        assert!(report.combining_factor > 1.8, "{report:?}");
    }

    #[test]
    fn more_processes_collide_more_than_a_lone_process() {
        let crowded = simulate_arena(&config(8, 2, 8));
        let lone = simulate_arena(&config(1, 2, 8));
        assert_eq!(lone.collisions, 0, "a lone process has nobody to merge with");
        assert!(crowded.collision_rate > 0.0, "{crowded:?}");
        assert!(crowded.collision_rate > lone.collision_rate);
    }

    #[test]
    fn parked_offers_outlast_impatience_and_raise_the_collision_rate() {
        // Two processes whose hashed home slots never coincide in
        // lock-step: a spinning offer with one round of patience expires
        // before the partner's probe ever reaches it (rate exactly 0),
        // while a parked offer stays claimable until the partner's home
        // walks onto its slot.
        let spinning = simulate_arena(&config(2, 4, 1));
        let parked = simulate_arena(&ArenaConfig { park: true, ..config(2, 4, 1) });
        assert_eq!(spinning.collisions, 0, "mismatched homes: impatient offers never meet");
        assert!(
            parked.collision_rate > 0.2,
            "round-skipping offers must catch the walking partner: {parked:?}"
        );
        assert!(parked.is_exact_range);
        assert_eq!(parked.collisions + parked.fallbacks, parked.ops);
    }

    #[test]
    fn a_lone_parked_process_times_out_and_terminates() {
        // One process, park mode: every offer stalls the whole system, so
        // the quiescence rule must retire it (solo) and the run must end.
        let report = simulate_arena(&ArenaConfig { park: true, ..config(1, 2, 4) });
        assert_eq!(report.collisions, 0, "no partner ever exists");
        assert_eq!(report.fallbacks, report.ops);
        assert!(report.is_exact_range);
    }

    #[test]
    fn wider_probe_windows_find_partners_across_slots() {
        // Two processes over four slots with hashed homes: a window of 1
        // only merges when the homes collide, a full-width window always
        // finds the parked partner.
        let narrow = simulate_arena(&config(2, 4, 8));
        let wide = simulate_arena(&ArenaConfig { probe: 4, ..config(2, 4, 8) });
        assert!(
            wide.collision_rate > narrow.collision_rate,
            "wide {wide:?} must beat narrow {narrow:?}"
        );
        assert!(wide.is_exact_range && narrow.is_exact_range);
        assert_eq!(wide.collisions + wide.fallbacks, wide.ops);
    }

    #[test]
    fn probe_window_is_clamped_to_the_slot_count() {
        let clamped = simulate_arena(&ArenaConfig { probe: 64, ..config(8, 4, 6) });
        let full = simulate_arena(&ArenaConfig { probe: 4, ..config(8, 4, 6) });
        assert_eq!(clamped, full, "probing past the arena is the same as probing all of it");
    }

    #[test]
    #[should_panic(expected = "probe window needs at least one slot")]
    fn zero_probe_rejected() {
        let _ = simulate_arena(&ArenaConfig { probe: 0, ..config(1, 1, 1) });
    }

    #[test]
    fn report_serializes_to_json() {
        let report = simulate_arena(&config(4, 2, 4));
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"collision_rate\":"), "{json}");
        assert!(json.contains("\"is_exact_range\":true"), "{json}");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = simulate_arena(&config(1, 0, 1));
    }
}
