//! Result types produced by simulation runs.

use serde::{Deserialize, Serialize};

/// The outcome of checking Fetch&Increment semantics on a run: whether the
/// counter values handed out on the output wires form exactly the range
/// `0..m-1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchIncrementOutcome {
    /// Total number of values handed out.
    pub values_handed_out: u64,
    /// `true` if the multiset of values equals `{0, 1, ..., m-1}`.
    pub is_exact_range: bool,
    /// The largest value handed out (if any).
    pub max_value: Option<u64>,
}

/// The life of a single token in a recorded run (see
/// [`crate::Simulation::record_tokens`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRecord {
    /// The process that shepherded the token.
    pub process: usize,
    /// Logical time (event counter) at which the token entered the network.
    pub enter_time: u64,
    /// Logical time at which the token exited and received its value.
    pub exit_time: u64,
    /// The Fetch&Increment value the token received.
    pub value: u64,
}

/// The contention measurements of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Number of concurrent processes `n`.
    pub concurrency: usize,
    /// Total number of tokens `m` shepherded through the network.
    pub total_tokens: u64,
    /// Total number of stalls across all tokens.
    pub total_stalls: u64,
    /// Stalls attributed to each balancer (indexed by balancer id).
    pub per_balancer_stalls: Vec<u64>,
    /// Stalls attributed to each layer (indexed by `depth - 1`).
    pub per_layer_stalls: Vec<u64>,
    /// Number of tokens processed by each balancer.
    pub per_balancer_traversals: Vec<u64>,
    /// The largest number of tokens ever waiting at each balancer at once.
    pub per_balancer_peak_waiting: Vec<u64>,
    /// The amortized contention estimate: `total_stalls / total_tokens`.
    pub amortized_contention: f64,
    /// Fetch&Increment semantics check for this run.
    pub fetch_increment: FetchIncrementOutcome,
    /// Per-token records (empty unless token recording was enabled).
    pub tokens: Vec<TokenRecord>,
}

impl ContentionReport {
    /// Sums the stalls of a contiguous range of layers
    /// (`lo..=hi`, 1-based, inclusive). Layers beyond the network depth are
    /// ignored.
    #[must_use]
    pub fn stalls_in_layers(&self, lo: usize, hi: usize) -> u64 {
        if lo == 0 || lo > hi {
            return 0;
        }
        self.per_layer_stalls
            .iter()
            .enumerate()
            .filter(|(i, _)| *i + 1 >= lo && *i < hi)
            .map(|(_, &s)| s)
            .sum()
    }

    /// The amortized contention restricted to a layer range: stalls in
    /// those layers divided by the total number of tokens.
    #[must_use]
    pub fn amortized_in_layers(&self, lo: usize, hi: usize) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        self.stalls_in_layers(lo, hi) as f64 / self.total_tokens as f64
    }

    /// The balancer that accumulated the most stalls, if any balancer
    /// exists. Returns `(balancer_id, stalls)`.
    #[must_use]
    pub fn hottest_balancer(&self) -> Option<(usize, u64)> {
        self.per_balancer_stalls.iter().copied().enumerate().max_by_key(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ContentionReport {
        ContentionReport {
            concurrency: 4,
            total_tokens: 10,
            total_stalls: 30,
            per_balancer_stalls: vec![5, 10, 15],
            per_layer_stalls: vec![15, 15],
            per_balancer_traversals: vec![10, 5, 5],
            per_balancer_peak_waiting: vec![2, 3, 4],
            amortized_contention: 3.0,
            fetch_increment: FetchIncrementOutcome {
                values_handed_out: 10,
                is_exact_range: true,
                max_value: Some(9),
            },
            tokens: Vec::new(),
        }
    }

    #[test]
    fn layer_aggregation() {
        let r = report();
        assert_eq!(r.stalls_in_layers(1, 1), 15);
        assert_eq!(r.stalls_in_layers(1, 2), 30);
        assert_eq!(r.stalls_in_layers(2, 5), 15);
        assert_eq!(r.stalls_in_layers(3, 5), 0);
        assert_eq!(r.stalls_in_layers(0, 2), 0);
        assert!((r.amortized_in_layers(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hottest_balancer_is_the_max() {
        assert_eq!(report().hottest_balancer(), Some((2, 15)));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serialize");
        let back: ContentionReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.total_stalls, r.total_stalls);
        assert_eq!(back.fetch_increment, r.fetch_increment);
    }
}
