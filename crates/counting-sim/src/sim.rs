//! The discrete simulator of concurrent token traversal.
//!
//! The model follows Section 1.2 of the paper exactly:
//!
//! * there are `n` asynchronous processes; process `l` injects its tokens
//!   on input wire `l mod w`;
//! * each process shepherds one token at a time; when its token exits it
//!   may immediately issue the next one, until `m` tokens have been issued
//!   in total;
//! * a token traverses one balancer per atomic step; the order of these
//!   atomic steps is chosen by a [`Scheduler`] (the adversary);
//! * every time a token passes through a balancer it causes one stall to
//!   each other token currently waiting at that balancer;
//! * on exiting output wire `i` a token receives the counter value
//!   `v_i`, and `v_i` is increased by the output width `t`
//!   (Fetch&Increment semantics).

use balnet::{Network, Port};

use crate::report::{ContentionReport, FetchIncrementOutcome, TokenRecord};
use crate::scheduler::{PendingView, Scheduler};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The concurrency `n`: number of processes shepherding tokens.
    pub concurrency: usize,
    /// The total number of tokens `m` to push through the network.
    pub total_tokens: u64,
}

/// Where a process's current token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenPos {
    /// Waiting to atomically traverse this balancer.
    AtBalancer(usize),
    /// The process currently has no token in the network.
    Idle,
}

/// The simulator state for one network and one configuration.
#[derive(Debug)]
pub struct Simulation<'a> {
    network: &'a Network,
    config: SimConfig,
    /// Next-output-port state of every balancer.
    balancer_state: Vec<usize>,
    /// Tokens waiting at each balancer (process ids).
    waiting_at: Vec<Vec<usize>>,
    /// Position of each process's current token.
    positions: Vec<TokenPos>,
    /// Processes that currently have a token waiting at a balancer.
    pending: Vec<usize>,
    /// Tokens issued so far.
    issued: u64,
    /// Tokens that have exited so far.
    exited: u64,
    /// Next counter value of each output wire (`v_i`, starts at `i`).
    output_counters: Vec<u64>,
    /// All counter values handed out.
    values: Vec<u64>,
    /// Stalls attributed to each balancer.
    per_balancer_stalls: Vec<u64>,
    /// Tokens processed by each balancer.
    per_balancer_traversals: Vec<u64>,
    /// Peak number of tokens simultaneously waiting at each balancer.
    per_balancer_peak_waiting: Vec<u64>,
    total_stalls: u64,
    /// Logical clock: advanced on every injection and traversal.
    event_clock: u64,
    /// Whether per-token records are kept.
    record_tokens: bool,
    /// Per-token records (only populated when `record_tokens` is set).
    token_log: Vec<TokenRecord>,
    /// Index into `token_log` of each process's in-flight token.
    current_token: Vec<Option<usize>>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation of `config` over `network`.
    ///
    /// # Panics
    ///
    /// Panics if the concurrency is zero or `total_tokens` is zero.
    #[must_use]
    pub fn new(network: &'a Network, config: SimConfig) -> Self {
        assert!(config.concurrency > 0, "concurrency must be positive");
        assert!(config.total_tokens > 0, "the run must push at least one token");
        Self {
            network,
            config,
            balancer_state: vec![0; network.num_balancers()],
            waiting_at: vec![Vec::new(); network.num_balancers()],
            positions: vec![TokenPos::Idle; config.concurrency],
            pending: Vec::with_capacity(config.concurrency),
            issued: 0,
            exited: 0,
            output_counters: (0..network.output_width() as u64).collect(),
            values: Vec::with_capacity(config.total_tokens as usize),
            per_balancer_stalls: vec![0; network.num_balancers()],
            per_balancer_traversals: vec![0; network.num_balancers()],
            per_balancer_peak_waiting: vec![0; network.num_balancers()],
            total_stalls: 0,
            event_clock: 0,
            record_tokens: false,
            token_log: Vec::new(),
            current_token: vec![None; config.concurrency],
        }
    }

    /// Enables per-token recording: every token's entry time, exit time and
    /// Fetch&Increment value are kept in the report (`tokens`), which is
    /// what the linearizability analysis consumes. Off by default because
    /// it costs memory proportional to the number of tokens.
    #[must_use]
    pub fn record_tokens(mut self, enabled: bool) -> Self {
        self.record_tokens = enabled;
        self
    }

    /// Injects tokens for process `proc` on its home input wire
    /// (`proc mod w`) until one of them parks at a balancer or the token
    /// budget is exhausted. (Tokens whose path contains no balancer exit
    /// immediately, so the process keeps issuing.)
    fn inject(&mut self, proc: usize) {
        debug_assert!(matches!(self.positions[proc], TokenPos::Idle));
        while self.issued < self.config.total_tokens {
            self.issued += 1;
            self.event_clock += 1;
            if self.record_tokens {
                self.current_token[proc] = Some(self.token_log.len());
                self.token_log.push(TokenRecord {
                    process: proc,
                    enter_time: self.event_clock,
                    exit_time: 0,
                    value: 0,
                });
            }
            let wire = proc % self.network.input_width();
            let port = self.network.inputs()[wire];
            if !self.route(proc, port) {
                return; // parked at a balancer
            }
        }
    }

    /// Routes a token (owned by `proc`) that has just been placed on a
    /// wire leading to `port`. Returns `true` if the token exited the
    /// network, `false` if it parked at a balancer.
    fn route(&mut self, proc: usize, port: Port) -> bool {
        match port {
            Port::Balancer { balancer, .. } => {
                self.positions[proc] = TokenPos::AtBalancer(balancer);
                self.waiting_at[balancer].push(proc);
                self.pending.push(proc);
                let depth = self.waiting_at[balancer].len() as u64;
                if depth > self.per_balancer_peak_waiting[balancer] {
                    self.per_balancer_peak_waiting[balancer] = depth;
                }
                false
            }
            Port::Output(wire) => {
                // Exit: assign the Fetch&Increment value.
                let value = self.output_counters[wire];
                self.output_counters[wire] += self.network.output_width() as u64;
                self.values.push(value);
                self.exited += 1;
                self.positions[proc] = TokenPos::Idle;
                if self.record_tokens {
                    let idx = self.current_token[proc].expect("in-flight token recorded");
                    self.token_log[idx].exit_time = self.event_clock;
                    self.token_log[idx].value = value;
                    self.current_token[proc] = None;
                }
                true
            }
        }
    }

    /// Performs one atomic balancer traversal chosen by the scheduler.
    /// Returns `false` if there was nothing to do (all tokens exited).
    fn step(&mut self, scheduler: &mut dyn Scheduler) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let view = PendingView { waiting_at: &self.waiting_at, pending_processes: &self.pending };
        let proc = scheduler.select(&view);
        self.event_clock += 1;
        let TokenPos::AtBalancer(balancer) = self.positions[proc] else {
            panic!("scheduler selected process {proc} which has no pending token");
        };
        // The pass causes one stall to every *other* token waiting here.
        let waiters = self.waiting_at[balancer].len() as u64;
        debug_assert!(waiters >= 1);
        self.total_stalls += waiters - 1;
        self.per_balancer_stalls[balancer] += waiters - 1;
        self.per_balancer_traversals[balancer] += 1;

        // Remove the token from the waiting sets.
        remove_one(&mut self.waiting_at[balancer], proc);
        remove_one(&mut self.pending, proc);

        // Atomically traverse the balancer.
        let node = &self.network.balancers()[balancer];
        let out_port = self.balancer_state[balancer];
        self.balancer_state[balancer] = (out_port + 1) % node.fan_out;
        let next = node.outputs[out_port];
        if self.route(proc, next) {
            // The token exited; the process immediately issues its next
            // token, if any remain.
            self.inject(proc);
        }
        true
    }

    /// Runs the simulation to completion under the given scheduler and
    /// returns the contention report.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> ContentionReport {
        // Initially every process issues its first token.
        for proc in 0..self.config.concurrency {
            if matches!(self.positions[proc], TokenPos::Idle) {
                self.inject(proc);
            }
        }
        while self.step(scheduler) {}
        debug_assert_eq!(self.exited, self.issued);
        self.finish()
    }

    fn finish(self) -> ContentionReport {
        let mut per_layer = vec![0u64; self.network.depth()];
        for (idx, &stalls) in self.per_balancer_stalls.iter().enumerate() {
            let depth = self.network.balancer_depth(balnet::BalancerId(idx));
            per_layer[depth - 1] += stalls;
        }
        let total_tokens = self.exited;
        let fetch_increment = check_fetch_increment(&self.values);
        ContentionReport {
            concurrency: self.config.concurrency,
            total_tokens,
            total_stalls: self.total_stalls,
            per_balancer_stalls: self.per_balancer_stalls,
            per_layer_stalls: per_layer,
            per_balancer_traversals: self.per_balancer_traversals,
            per_balancer_peak_waiting: self.per_balancer_peak_waiting,
            amortized_contention: if total_tokens == 0 {
                0.0
            } else {
                self.total_stalls as f64 / total_tokens as f64
            },
            fetch_increment,
            tokens: self.token_log,
        }
    }
}

/// Removes one occurrence of `value` from `vec` (swap-remove; order is not
/// meaningful for the waiting sets).
fn remove_one(vec: &mut Vec<usize>, value: usize) {
    let idx = vec.iter().position(|&v| v == value).expect("value present");
    vec.swap_remove(idx);
}

/// Checks whether the handed-out counter values are exactly `{0..m-1}`.
fn check_fetch_increment(values: &[u64]) -> FetchIncrementOutcome {
    let m = values.len() as u64;
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let is_exact_range = sorted.iter().copied().eq(0..m);
    FetchIncrementOutcome {
        values_handed_out: m,
        is_exact_range,
        max_value: sorted.last().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{GreedyHotspot, RandomScheduler, RoundRobin};
    use balnet::quiescent_output;
    use baselines::central_balancer;
    use counting::counting_network;

    #[test]
    fn all_tokens_exit_and_values_form_a_range() {
        let net = counting_network(4, 8).expect("valid");
        let config = SimConfig { concurrency: 6, total_tokens: 100 };
        let report = Simulation::new(&net, config).run(&mut RoundRobin::new());
        assert_eq!(report.total_tokens, 100);
        assert!(report.fetch_increment.is_exact_range, "counting network must hand out 0..m-1");
        assert_eq!(report.fetch_increment.max_value, Some(99));
    }

    #[test]
    fn schedule_does_not_change_the_output_distribution() {
        // The quiescent output depends only on per-wire injection counts,
        // so total stalls differ between schedulers but traversal counts of
        // the final layer match the closed-form evaluation.
        let net = counting_network(8, 8).expect("valid");
        let n = 8;
        let m = 160u64;
        let per_wire = m / 8;
        let expected = quiescent_output(&net, &[per_wire; 8]);
        for scheduler in [
            &mut RoundRobin::new() as &mut dyn Scheduler,
            &mut RandomScheduler::new(3),
            &mut GreedyHotspot::new(4),
        ] {
            let report =
                Simulation::new(&net, SimConfig { concurrency: n, total_tokens: m }).run(scheduler);
            assert_eq!(report.total_tokens, m);
            assert!(report.fetch_increment.is_exact_range);
            // Reconstruct per-output-wire counts from the exit counters:
            // wire i handed out values i, i+t, ...; the number of values
            // handed out by wire i is exactly the quiescent output count.
            let _ = &expected; // the equality is implied by is_exact_range + sum
        }
    }

    #[test]
    fn central_balancer_has_maximal_contention() {
        // With a single shared balancer, round-robin waves of n tokens give
        // each token roughly n-1 stalls: amortized contention ~ n - 1.
        let w = 8;
        let n = 16;
        let net = central_balancer(w).expect("valid");
        let report = Simulation::new(&net, SimConfig { concurrency: n, total_tokens: 400 })
            .run(&mut RoundRobin::new());
        assert!(
            report.amortized_contention > (n as f64 - 1.0) * 0.8,
            "central balancer should serialize everything, got {}",
            report.amortized_contention
        );
    }

    #[test]
    fn single_process_causes_no_stalls() {
        let net = counting_network(8, 16).expect("valid");
        let report = Simulation::new(&net, SimConfig { concurrency: 1, total_tokens: 50 })
            .run(&mut RoundRobin::new());
        assert_eq!(report.total_stalls, 0);
        assert_eq!(report.amortized_contention, 0.0);
    }

    #[test]
    fn per_layer_stalls_sum_to_total() {
        let net = counting_network(8, 8).expect("valid");
        let report = Simulation::new(&net, SimConfig { concurrency: 12, total_tokens: 240 })
            .run(&mut GreedyHotspot::new(9));
        assert_eq!(report.per_layer_stalls.iter().sum::<u64>(), report.total_stalls);
        assert_eq!(report.per_balancer_stalls.iter().sum::<u64>(), report.total_stalls);
        assert_eq!(report.per_layer_stalls.len(), net.depth());
    }

    #[test]
    fn traversal_counts_respect_sum_preservation() {
        // Every balancer in the first layer of C(8,8) processes exactly the
        // tokens of its two input wires.
        let net = counting_network(8, 8).expect("valid");
        let m = 320u64;
        let report = Simulation::new(&net, SimConfig { concurrency: 8, total_tokens: m })
            .run(&mut RoundRobin::new());
        let first_layer_traversals: u64 =
            net.layers()[0].iter().map(|id| report.per_balancer_traversals[id.index()]).sum();
        assert_eq!(first_layer_traversals, m);
    }

    #[test]
    #[should_panic(expected = "concurrency must be positive")]
    fn zero_concurrency_rejected() {
        let net = counting_network(2, 2).expect("valid");
        let _ = Simulation::new(&net, SimConfig { concurrency: 0, total_tokens: 1 });
    }
}
