//! Contention measurement helpers and parameter sweeps.
//!
//! These wrap [`crate::Simulation`] into the measurements the paper's
//! evaluation needs: amortized contention of a network at a given
//! concurrency, and sweeps over the concurrency `n` (and, for `C(w, t)`,
//! the output width `t`) producing serializable rows that the benchmark
//! harness turns into the tables of `EXPERIMENTS.md`.

use balnet::Network;
use serde::{Deserialize, Serialize};

use crate::report::ContentionReport;
use crate::scheduler::SchedulerKind;
use crate::sim::{SimConfig, Simulation};

/// One measured point of a contention sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionPoint {
    /// Human-readable name of the network (e.g. `"C(16,64)"`).
    pub network: String,
    /// Input width of the network.
    pub input_width: usize,
    /// Output width of the network.
    pub output_width: usize,
    /// Depth of the network.
    pub depth: usize,
    /// Concurrency `n` of the run.
    pub concurrency: usize,
    /// Number of tokens `m` pushed through.
    pub total_tokens: u64,
    /// The scheduler used.
    pub scheduler: String,
    /// Measured amortized contention (stalls per token).
    pub amortized_contention: f64,
}

/// Measures the amortized contention of `network` at concurrency `n` with
/// `m` tokens under the given scheduler.
#[must_use]
pub fn measure_contention(
    network: &Network,
    n: usize,
    m: u64,
    scheduler: SchedulerKind,
    seed: u64,
) -> ContentionReport {
    let mut sched = scheduler.build(seed);
    Simulation::new(network, SimConfig { concurrency: n, total_tokens: m }).run(sched.as_mut())
}

/// Sweeps the concurrency over `concurrencies`, pushing `tokens_per_process`
/// tokens per process at each point, and returns one [`ContentionPoint`]
/// per concurrency value.
#[must_use]
pub fn sweep_concurrency(
    name: &str,
    network: &Network,
    concurrencies: &[usize],
    tokens_per_process: u64,
    scheduler: SchedulerKind,
    seed: u64,
) -> Vec<ContentionPoint> {
    concurrencies
        .iter()
        .map(|&n| {
            let m = tokens_per_process * n as u64;
            let report = measure_contention(network, n, m, scheduler, seed);
            ContentionPoint {
                network: name.to_owned(),
                input_width: network.input_width(),
                output_width: network.output_width(),
                depth: network.depth(),
                concurrency: n,
                total_tokens: m,
                scheduler: scheduler.name().to_owned(),
                amortized_contention: report.amortized_contention,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::bitonic_counting_network;
    use counting::counting_network;

    #[test]
    fn contention_grows_with_concurrency() {
        let net = counting_network(8, 8).expect("valid");
        let points =
            sweep_concurrency("C(8,8)", &net, &[1, 8, 32], 40, SchedulerKind::RoundRobin, 1);
        assert_eq!(points.len(), 3);
        assert!(points[0].amortized_contention <= points[1].amortized_contention);
        assert!(points[1].amortized_contention < points[2].amortized_contention);
    }

    #[test]
    fn wider_output_reduces_contention_at_high_concurrency() {
        // The paper's headline claim (Section 1.3.1): at high concurrency,
        // C(w, w·lgw) has lower contention than C(w, w) — and than the
        // bitonic network of the same input width.
        let w = 8;
        let n = 64;
        let m = 64 * 40;
        let narrow = counting_network(w, w).expect("valid");
        let wide = counting_network(w, w * 3).expect("valid"); // t = w·lgw = 24
        let bitonic = bitonic_counting_network(w).expect("valid");
        let c_narrow =
            measure_contention(&narrow, n, m, SchedulerKind::RoundRobin, 0).amortized_contention;
        let c_wide =
            measure_contention(&wide, n, m, SchedulerKind::RoundRobin, 0).amortized_contention;
        let c_bitonic =
            measure_contention(&bitonic, n, m, SchedulerKind::RoundRobin, 0).amortized_contention;
        assert!(
            c_wide < c_narrow,
            "C({w},{}) should beat C({w},{w}) at n={n}: {c_wide} vs {c_narrow}",
            w * 3
        );
        assert!(
            c_wide < c_bitonic,
            "C({w},{}) should beat Bitonic[{w}] at n={n}: {c_wide} vs {c_bitonic}",
            w * 3
        );
    }

    #[test]
    fn points_serialize() {
        let net = counting_network(4, 4).expect("valid");
        let points = sweep_concurrency("C(4,4)", &net, &[4], 10, SchedulerKind::Random, 7);
        let json = serde_json::to_string(&points).expect("serialize");
        assert!(json.contains("C(4,4)"));
    }
}
