//! Schedulers: the adversary that decides which pending token performs the
//! next atomic balancer traversal.
//!
//! The contention bounds of the paper are worst-case over all schedules.
//! The simulator exposes three representative schedules:
//!
//! * [`RoundRobin`] — processes advance in lock-step waves. All tokens of a
//!   "generation" arrive at a layer together, which is exactly the
//!   high-contention regime analysed in Section 6.2; empirically this
//!   produces contention closest to the proven bounds.
//! * [`RandomScheduler`] — a uniformly random pending process advances;
//!   models an unbiased asynchronous execution.
//! * [`GreedyHotspot`] — always advances a token waiting at the balancer
//!   with the most waiters. Combined with the waves produced by
//!   re-injection this approximates an adversary that piles tokens up and
//!   then releases them one by one (maximizing the stalls each pass
//!   causes); it is the schedule that exposes the `Θ(n)` contention of the
//!   diffracting tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A view of the pending work the scheduler chooses from.
///
/// `pending[i]` is the list of process ids whose token currently waits at
/// balancer `i`; `pending_processes` is the flat list of all process ids
/// with a waiting token.
#[derive(Debug)]
pub struct PendingView<'a> {
    /// Process ids waiting at each balancer.
    pub waiting_at: &'a [Vec<usize>],
    /// All process ids that currently have a token waiting at a balancer.
    pub pending_processes: &'a [usize],
}

/// The adversary: picks which pending process performs the next atomic
/// balancer traversal.
pub trait Scheduler {
    /// Selects one element of `view.pending_processes`.
    fn select(&mut self, view: &PendingView<'_>) -> usize;
}

/// Identifies a scheduler implementation; used by benches and experiment
/// binaries to construct schedulers from configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Lock-step waves (see [`RoundRobin`]).
    RoundRobin,
    /// Uniformly random pending process (see [`RandomScheduler`]).
    Random,
    /// Greedy hotspot adversary (see [`GreedyHotspot`]).
    GreedyHotspot,
}

impl SchedulerKind {
    /// Instantiates the scheduler; `seed` is used by the randomized ones.
    #[must_use]
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            Self::RoundRobin => Box::new(RoundRobin::new()),
            Self::Random => Box::new(RandomScheduler::new(seed)),
            Self::GreedyHotspot => Box::new(GreedyHotspot::new(seed)),
        }
    }

    /// A short stable name used in result rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::Random => "random",
            Self::GreedyHotspot => "greedy-hotspot",
        }
    }
}

/// Lock-step scheduler: repeatedly sweeps over process ids in increasing
/// order, advancing each pending process once per sweep. This makes all
/// concurrent tokens move through the network in waves (generations), the
/// regime in which the layer-contention analysis of Section 6.2 is tight.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    #[must_use]
    pub fn new() -> Self {
        Self { cursor: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn select(&mut self, view: &PendingView<'_>) -> usize {
        // Pick the smallest pending process id that is >= cursor, wrapping
        // around; then advance the cursor past it.
        let mut best: Option<usize> = None;
        let mut wrapped_best: Option<usize> = None;
        for &p in view.pending_processes {
            if p >= self.cursor {
                best = Some(best.map_or(p, |b: usize| b.min(p)));
            } else {
                wrapped_best = Some(wrapped_best.map_or(p, |b: usize| b.min(p)));
            }
        }
        let chosen = best.or(wrapped_best).expect("scheduler called with no pending process");
        self.cursor = chosen + 1;
        chosen
    }
}

/// Uniformly random scheduler.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomScheduler {
    fn select(&mut self, view: &PendingView<'_>) -> usize {
        let idx = self.rng.gen_range(0..view.pending_processes.len());
        view.pending_processes[idx]
    }
}

/// Greedy hotspot adversary: advances a token waiting at the balancer with
/// the largest number of waiters (ties broken towards lower balancer ids,
/// the specific token chosen at random). Every traversal it schedules
/// therefore causes the maximum possible number of stalls at that moment.
#[derive(Debug)]
pub struct GreedyHotspot {
    rng: StdRng,
}

impl GreedyHotspot {
    /// Creates a greedy hotspot scheduler with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for GreedyHotspot {
    fn select(&mut self, view: &PendingView<'_>) -> usize {
        let (_, crowd) = view
            .waiting_at
            .iter()
            .enumerate()
            .max_by_key(|(i, v)| (v.len(), usize::MAX - i))
            .expect("network has at least one balancer");
        if crowd.is_empty() {
            // All pending tokens are on balancer-free paths; fall back.
            let idx = self.rng.gen_range(0..view.pending_processes.len());
            return view.pending_processes[idx];
        }
        crowd[self.rng.gen_range(0..crowd.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(waiting_at: &'a [Vec<usize>], pending: &'a [usize]) -> PendingView<'a> {
        PendingView { waiting_at, pending_processes: pending }
    }

    #[test]
    fn round_robin_cycles_through_processes() {
        let mut s = RoundRobin::new();
        let waiting = vec![vec![0, 1, 2]];
        let pending = vec![0, 1, 2];
        let picks: Vec<usize> = (0..6).map(|_| s.select(&view(&waiting, &pending))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_missing_processes() {
        let mut s = RoundRobin::new();
        let waiting = vec![vec![1, 3]];
        let pending = vec![1, 3];
        assert_eq!(s.select(&view(&waiting, &pending)), 1);
        assert_eq!(s.select(&view(&waiting, &pending)), 3);
        assert_eq!(s.select(&view(&waiting, &pending)), 1);
    }

    #[test]
    fn greedy_hotspot_prefers_the_crowd() {
        let mut s = GreedyHotspot::new(7);
        let waiting = vec![vec![0], vec![1, 2, 3], vec![4]];
        let pending = vec![0, 1, 2, 3, 4];
        for _ in 0..10 {
            let p = s.select(&view(&waiting, &pending));
            assert!([1, 2, 3].contains(&p));
        }
    }

    #[test]
    fn random_scheduler_selects_pending_processes() {
        let mut s = RandomScheduler::new(1);
        let waiting = vec![vec![5, 9]];
        let pending = vec![5, 9];
        for _ in 0..20 {
            let p = s.select(&view(&waiting, &pending));
            assert!(p == 5 || p == 9);
        }
    }

    #[test]
    fn kind_builds_and_names() {
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::Random, SchedulerKind::GreedyHotspot]
        {
            let _ = kind.build(0);
            assert!(!kind.name().is_empty());
        }
    }
}
