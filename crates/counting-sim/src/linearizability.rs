//! Linearizability analysis of counting executions (Section 1.4.2).
//!
//! A counting implementation is *linearizable* if whenever token `τ_1`
//! exits the network (receives its value) before token `τ_2` enters, then
//! `τ_1`'s value is smaller than `τ_2`'s. Herlihy, Shavit & Waarts showed
//! that low-contention wait-free linearizable counting requires `Ω(n)`
//! latency, and the paper points out that `C(w, t)` — like every classic
//! counting network — is *not* linearizable. This module detects and
//! counts linearizability violations in recorded simulation runs (see
//! [`crate::Simulation::record_tokens`]), which lets the test-suite
//! exhibit concrete non-linearizable schedules and verify that the
//! degenerate single-balancer counter *is* linearizable.

use crate::report::TokenRecord;

/// A concrete witness of a linearizability violation: the `earlier` token
/// exited before the `later` token entered, yet received a larger value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The token that finished first (with the larger value).
    pub earlier: TokenRecord,
    /// The token that started later (with the smaller value).
    pub later: TokenRecord,
}

/// Finds all linearizability violations in a recorded run.
///
/// Runs in `O(k log k)` for `k` tokens by sorting on entry time and
/// scanning with a running maximum of values of tokens that exited before
/// each entry point — sufficient for counting violations; the witnesses
/// returned are one per offending later-token.
#[must_use]
pub fn violations(tokens: &[TokenRecord]) -> Vec<Violation> {
    let mut by_exit: Vec<&TokenRecord> = tokens.iter().collect();
    by_exit.sort_by_key(|t| t.exit_time);
    let mut by_enter: Vec<&TokenRecord> = tokens.iter().collect();
    by_enter.sort_by_key(|t| t.enter_time);

    let mut result = Vec::new();
    let mut exit_idx = 0usize;
    // The token with the maximum value among those that have already
    // exited strictly before the current entry time.
    let mut max_exited: Option<&TokenRecord> = None;
    for later in by_enter {
        while exit_idx < by_exit.len() && by_exit[exit_idx].exit_time < later.enter_time {
            let candidate = by_exit[exit_idx];
            if max_exited.is_none_or(|m| candidate.value > m.value) {
                max_exited = Some(candidate);
            }
            exit_idx += 1;
        }
        if let Some(earlier) = max_exited {
            if earlier.value > later.value {
                result.push(Violation { earlier: *earlier, later: *later });
            }
        }
    }
    result
}

/// `true` if the recorded run contains no linearizability violation.
#[must_use]
pub fn is_linearizable(tokens: &[TokenRecord]) -> bool {
    violations(tokens).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerKind;
    use crate::sim::{SimConfig, Simulation};
    use baselines::central_balancer;
    use counting::counting_network;

    fn record(enter: u64, exit: u64, value: u64) -> TokenRecord {
        TokenRecord { process: 0, enter_time: enter, exit_time: exit, value }
    }

    #[test]
    fn detects_a_textbook_violation() {
        // Token A: enters at 1, exits at 5 with value 7.
        // Token B: enters at 10 (after A exited), exits at 12 with value 3.
        let tokens = vec![record(1, 5, 7), record(10, 12, 3)];
        let v = violations(&tokens);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].earlier.value, 7);
        assert_eq!(v[0].later.value, 3);
        assert!(!is_linearizable(&tokens));
    }

    #[test]
    fn overlapping_tokens_are_never_violations() {
        // B enters before A exits: any value order is allowed.
        let tokens = vec![record(1, 5, 7), record(4, 12, 3)];
        assert!(is_linearizable(&tokens));
    }

    #[test]
    fn a_single_shared_balancer_is_linearizable() {
        // The central (w, w)-balancer assigns the value in the same atomic
        // step as the traversal, so no later token can overtake.
        let net = central_balancer(8).expect("valid");
        for seed in 0..5u64 {
            let report = Simulation::new(&net, SimConfig { concurrency: 8, total_tokens: 200 })
                .record_tokens(true)
                .run(SchedulerKind::Random.build(seed).as_mut());
            assert!(report.fetch_increment.is_exact_range);
            assert!(is_linearizable(&report.tokens), "seed {seed}");
        }
    }

    #[test]
    fn counting_networks_are_not_linearizable() {
        // Section 1.4.2: some schedule of C(4, 4) lets a token that starts
        // after another has finished obtain a smaller value. A randomized
        // search over schedules finds one quickly.
        let net = counting_network(4, 4).expect("valid");
        let mut found = false;
        for seed in 0..200u64 {
            let report = Simulation::new(&net, SimConfig { concurrency: 4, total_tokens: 40 })
                .record_tokens(true)
                .run(SchedulerKind::Random.build(seed).as_mut());
            if !is_linearizable(&report.tokens) {
                found = true;
                break;
            }
        }
        assert!(found, "expected to find a non-linearizable schedule of C(4,4)");
    }

    #[test]
    fn token_records_are_complete_and_ordered() {
        let net = counting_network(8, 8).expect("valid");
        let m = 160u64;
        let report = Simulation::new(&net, SimConfig { concurrency: 8, total_tokens: m })
            .record_tokens(true)
            .run(SchedulerKind::RoundRobin.build(0).as_mut());
        assert_eq!(report.tokens.len() as u64, m);
        for t in &report.tokens {
            assert!(t.enter_time <= t.exit_time);
            assert!(t.value < m);
        }
        // Without recording, the log stays empty.
        let silent = Simulation::new(&net, SimConfig { concurrency: 8, total_tokens: m })
            .run(SchedulerKind::RoundRobin.build(0).as_mut());
        assert!(silent.tokens.is_empty());
    }
}
