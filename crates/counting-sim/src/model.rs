//! A loom-style exhaustive interleaving model checker (the
//! `counting-model` capability).
//!
//! The torture suites in `counting-runtime` catch races that the host
//! scheduler happens to produce; this module explores interleavings
//! *systematically*. It extends the adversarial-[`scheduler`] idea of this
//! crate — an adversary decides who moves next — into a DFS explorer over
//! real protocol code running on **shim atomics**:
//!
//! * [`AtomicU64`] / [`AtomicUsize`] / [`AtomicI64`] mirror the `std`
//!   types but, when their thread runs under an active exploration, hit a
//!   *scheduling point* before every operation and record the operation
//!   (read / write / RMW / CAS with values) into the execution's event
//!   log. Outside an exploration they behave exactly like `std` atomics,
//!   so code compiled against the shim stays correct in ordinary tests.
//! * [`explore`] runs a [`Scenario`] — a fresh set of thread closures plus
//!   an invariant check — once per schedule, enumerating schedules by DFS
//!   over the decision tree with **bounded preemptions** (the CHESS
//!   insight: almost all real bugs need only 1–2 preemptions) and **state
//!   hashing** to prune schedules that re-converge to an explored state.
//! * Every failure — a failed invariant check, a panic inside protocol
//!   code, or a livelock that exceeds the step bound — is returned as a
//!   [`Counterexample`] carrying the full decision [`Trace`] and event
//!   log; [`replay`] re-runs exactly that schedule, which is what the
//!   pinned regression tests in `counting-runtime` and `counting-service`
//!   are built from.
//! * [`Scenario::with_mutation`] seeds a deliberate protocol mutation
//!   (e.g. the arena capture path skipping its `CLAIMED` intermediate
//!   state): a checker that cannot find the planted bug has no teeth, so
//!   the test suites assert these are caught.
//!
//! Since the real `loom` crate cannot be vendored here (no network), this
//! is a minimal self-contained engine in the same spirit as the other
//! `vendor/*` stubs: sequentially-consistent interleavings only, one
//! scheduling point per shim-atomic operation. See ARCHITECTURE.md for
//! what is and is not explored.
//!
//! [`scheduler`]: crate::scheduler
//!
//! # Example: finding a lost update
//!
//! ```
//! use counting_sim::model::{explore, AtomicU64, ModelConfig, Scenario};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! // A deliberately broken counter: load-then-store instead of fetch_add.
//! let report = explore(&ModelConfig::default(), || {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let bump = |c: Arc<AtomicU64>| {
//!         move || {
//!             let v = c.load(Ordering::SeqCst);
//!             c.store(v + 1, Ordering::SeqCst);
//!         }
//!     };
//!     let check = Arc::clone(&counter);
//!     Scenario::new(
//!         vec![Box::new(bump(Arc::clone(&counter))), Box::new(bump(counter))],
//!         move |_| {
//!             if check.load(Ordering::SeqCst) == 2 {
//!                 Ok(())
//!             } else {
//!                 Err("lost update".into())
//!             }
//!         },
//!     )
//! });
//! let bug = report.counterexample.expect("the lost update must be found");
//! assert!(bug.message.contains("lost update"));
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How long the controller waits for every model thread to reach a
/// scheduling point before declaring the execution stalled (a thread
/// blocked outside the engine's control — e.g. an unseamed OS primitive).
const WATCHDOG: Duration = Duration::from_secs(20);

// ---------------------------------------------------------------------------
// Configuration and reporting types
// ---------------------------------------------------------------------------

/// Exploration bounds for [`explore`].
///
/// The search is exhaustive *within* these bounds: every schedule of the
/// scenario with at most [`ModelConfig::preemptions`] involuntary context
/// switches is visited (modulo state-hash pruning, which only skips
/// schedules that reach an already-explored state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Maximum involuntary preemptions per schedule. Voluntary switches
    /// (a thread blocking in a wait loop calls [`model_yield`]) are free.
    pub preemptions: usize,
    /// Abort an execution after this many scheduling points and report it
    /// as a livelock counterexample.
    pub max_steps: usize,
    /// Safety valve: stop exploring (with `complete = false`) after this
    /// many executions.
    pub max_executions: u64,
    /// How many poll rounds a modeled park ([`park_poll`]) waits before
    /// reporting a timeout — the model analogue of a park timeout.
    pub park_spins: usize,
    /// Whether to prune decision points whose abstract state (shim-atomic
    /// values + per-thread progress + remaining budget) was already
    /// explored.
    pub state_hashing: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            preemptions: 2,
            max_steps: 20_000,
            max_executions: 500_000,
            park_spins: 3,
            state_hashing: true,
        }
    }
}

impl ModelConfig {
    /// A config exploring with the given preemption bound and defaults
    /// elsewhere.
    #[must_use]
    pub fn with_preemptions(preemptions: usize) -> Self {
        Self { preemptions, ..Self::default() }
    }
}

/// A recorded schedule: the thread id granted at each scheduling point.
/// Traces are what make counterexamples replayable — see [`replay`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    /// Thread index chosen at each decision point, in order.
    pub decisions: Vec<usize>,
}

/// A failing schedule found by [`explore`] (or reproduced by [`replay`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Counterexample {
    /// What went wrong: the invariant check's error, a panic message, or
    /// a livelock/stall report.
    pub message: String,
    /// The schedule that triggers it (feed back into [`replay`]).
    pub trace: Trace,
    /// Human-readable shim-atomic event log of the failing execution.
    pub events: Vec<String>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.message)?;
        writeln!(f, "schedule: {:?}", self.trace.decisions)?;
        for line in &self.events {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// The outcome of an [`explore`] call.
#[derive(Debug)]
pub struct ExploreReport {
    /// Executions (distinct schedules) run.
    pub executions: u64,
    /// Scheduling points visited across all executions.
    pub decision_points: u64,
    /// Decision points not branched because their abstract state had
    /// already been explored.
    pub pruned_states: u64,
    /// Deepest schedule (number of scheduling points) seen.
    pub max_depth: usize,
    /// Whether the bounded search space was exhausted (`false` when
    /// [`ModelConfig::max_executions`] stopped the search early or a
    /// counterexample ended it).
    pub complete: bool,
    /// The first failing schedule, if any was found.
    pub counterexample: Option<Counterexample>,
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// The quiescence invariant a [`Scenario`] validates after every
/// execution (thread results in thread-index order).
type CheckFn<T> = Box<dyn FnOnce(&[T]) -> Result<(), String>>;

/// One model-checking scenario: thread bodies plus an invariant check,
/// built fresh for every execution by the factory passed to [`explore`].
pub struct Scenario<T> {
    threads: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    check: CheckFn<T>,
    mutations: Vec<&'static str>,
}

impl<T> Scenario<T> {
    /// A scenario running `threads` under every schedule and validating
    /// each quiescent outcome with `check` (thread results are passed in
    /// thread-index order).
    #[must_use]
    pub fn new(
        threads: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        check: impl FnOnce(&[T]) -> Result<(), String> + 'static,
    ) -> Self {
        Self { threads, check: Box::new(check), mutations: Vec::new() }
    }

    /// Seeds a named protocol mutation: code under test queries
    /// [`mutation_enabled`] and deliberately mis-executes when its name is
    /// active. Used to prove the checker catches planted bugs.
    #[must_use]
    pub fn with_mutation(mut self, name: &'static str) -> Self {
        self.mutations.push(name);
        self
    }
}

// ---------------------------------------------------------------------------
// Execution engine internals
// ---------------------------------------------------------------------------

/// Unwind payload used to tear worker threads down when an execution is
/// aborted (livelock, panic elsewhere, stall). `resume_unwind` with this
/// payload does not invoke the panic hook, so teardown is silent.
struct ModelAbort;

#[derive(Debug, Clone, Copy)]
enum EventKind {
    Load,
    Store,
    RmwAdd,
    RmwSub,
    RmwMax,
    CasOk,
    CasFail,
    Yield,
    Point,
    Start,
    End,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    thread: usize,
    /// Registered cell index, or `usize::MAX` for cell-less events.
    cell: usize,
    kind: EventKind,
    a: u64,
    b: u64,
}

impl Event {
    fn render(&self, step: usize) -> String {
        let t = self.thread;
        let c = self.cell;
        match self.kind {
            EventKind::Load => format!("[{step}] t{t}: load a{c} -> {}", self.a),
            EventKind::Store => format!("[{step}] t{t}: store a{c} <- {}", self.a),
            EventKind::RmwAdd => format!("[{step}] t{t}: fetch_add a{c}: {} -> {}", self.a, self.b),
            EventKind::RmwSub => format!("[{step}] t{t}: fetch_sub a{c}: {} -> {}", self.a, self.b),
            EventKind::RmwMax => format!("[{step}] t{t}: fetch_max a{c}: {} -> {}", self.a, self.b),
            EventKind::CasOk => format!("[{step}] t{t}: cas a{c}: {} -> {} (ok)", self.a, self.b),
            EventKind::CasFail => {
                format!("[{step}] t{t}: cas a{c}: expected {}, saw {} (fail)", self.a, self.b)
            }
            EventKind::Yield => format!("[{step}] t{t}: yield"),
            EventKind::Point => format!("[{step}] t{t}: point #{}", self.a),
            EventKind::Start => format!("[{step}] t{t}: start"),
            EventKind::End => format!("[{step}] t{t}: end"),
        }
    }
}

/// One registered shim-atomic cell. The value lives in a real atomic so
/// pass-through mode (no active execution) is just the `std` operation.
#[derive(Debug)]
struct CellState {
    value: std::sync::atomic::AtomicU64,
}

struct Sched {
    /// Thread currently granted the right to run (all others are paused).
    current: Option<usize>,
    /// Threads paused at a scheduling point awaiting a grant.
    waiting: Vec<bool>,
    finished: Vec<bool>,
    /// Threads whose last pause was a voluntary yield (wait loops): they
    /// are only eligible when every other runnable thread also yielded.
    yielded: Vec<bool>,
    aborted: bool,
    steps: usize,
    /// Per-thread count of scheduling points passed (part of the state
    /// abstraction).
    ops: Vec<u64>,
    /// Per-thread running hash of observed values (part of the state
    /// abstraction: deterministic thread code is a function of what it
    /// has read).
    obs: Vec<u64>,
    events: Vec<Event>,
    panics: Vec<String>,
}

struct ExecInner {
    sched: Mutex<Sched>,
    cv: Condvar,
    cells: Mutex<Vec<Arc<CellState>>>,
    mutations: Mutex<HashSet<&'static str>>,
    max_steps: usize,
    park_spins: usize,
}

thread_local! {
    /// Set while a model worker thread runs: (execution, thread index).
    static EXEC: RefCell<Option<(Arc<ExecInner>, usize)>> = const { RefCell::new(None) };

    /// Set on the controller thread while a scenario factory runs, so
    /// cells created during setup register with the new execution.
    static REGISTRY: RefCell<Option<Arc<ExecInner>>> = const { RefCell::new(None) };
}

fn current_exec() -> Option<(Arc<ExecInner>, usize)> {
    EXEC.with(|e| e.borrow().clone())
}

fn splitmix(mut h: u64, v: u64) -> u64 {
    h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

impl ExecInner {
    fn new(config: &ModelConfig) -> Self {
        Self {
            sched: Mutex::new(Sched {
                current: None,
                waiting: Vec::new(),
                finished: Vec::new(),
                yielded: Vec::new(),
                aborted: false,
                steps: 0,
                ops: Vec::new(),
                obs: Vec::new(),
                events: Vec::new(),
                panics: Vec::new(),
            }),
            cv: Condvar::new(),
            cells: Mutex::new(Vec::new()),
            mutations: Mutex::new(HashSet::new()),
            max_steps: config.max_steps,
            park_spins: config.park_spins,
        }
    }

    /// Sizes the per-thread state once the scenario factory has run and
    /// the thread count is known.
    fn init(&self, threads: usize, mutations: &[&'static str]) {
        let mut s = self.sched.lock().expect("model lock");
        s.waiting = vec![false; threads];
        s.finished = vec![false; threads];
        s.yielded = vec![false; threads];
        s.ops = vec![0; threads];
        s.obs = vec![0; threads];
        *self.mutations.lock().expect("model lock") = mutations.iter().copied().collect();
    }

    fn register_cell(&self, initial: u64) -> Arc<CellState> {
        let cell = Arc::new(CellState { value: std::sync::atomic::AtomicU64::new(initial) });
        self.cells.lock().expect("model lock").push(Arc::clone(&cell));
        cell
    }

    fn cell_index(&self, cell: &Arc<CellState>) -> usize {
        let cells = self.cells.lock().expect("model lock");
        cells.iter().position(|c| Arc::ptr_eq(c, cell)).unwrap_or(usize::MAX)
    }

    /// Pauses the calling worker until the controller grants it the next
    /// step. `voluntary` marks the pause as a yield (wait-loop backoff).
    fn pause(&self, tid: usize, voluntary: bool) {
        let mut s = self.sched.lock().expect("model lock");
        if s.aborted {
            drop(s);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
        s.waiting[tid] = true;
        s.yielded[tid] = voluntary;
        if s.current == Some(tid) {
            s.current = None;
        }
        self.cv.notify_all();
        while s.current != Some(tid) {
            if s.aborted {
                drop(s);
                std::panic::resume_unwind(Box::new(ModelAbort));
            }
            s = self.cv.wait(s).expect("model lock");
        }
    }

    fn record(&self, event: Event) {
        self.sched.lock().expect("model lock").events.push(event);
    }

    fn note_obs(&self, tid: usize, value: u64) {
        let mut s = self.sched.lock().expect("model lock");
        s.obs[tid] = splitmix(s.obs[tid], value);
    }

    fn finish(&self, tid: usize) {
        let mut s = self.sched.lock().expect("model lock");
        s.finished[tid] = true;
        s.waiting[tid] = false;
        if s.current == Some(tid) {
            s.current = None;
        }
        s.events.push(Event { thread: tid, cell: usize::MAX, kind: EventKind::End, a: 0, b: 0 });
        self.cv.notify_all();
    }

    /// The abstract state at a decision point, used for pruning: shim
    /// cell values, per-thread progress/observations/flags and the
    /// remaining preemption budget.
    fn state_hash(&self, s: &Sched, prev: Option<usize>, budget_left: usize) -> u64 {
        let mut h = 0xDEAD_BEEF_u64;
        for cell in self.cells.lock().expect("model lock").iter() {
            h = splitmix(h, cell.value.load(Ordering::Relaxed));
        }
        for i in 0..s.waiting.len() {
            h = splitmix(h, s.ops[i]);
            h = splitmix(h, s.obs[i]);
            h = splitmix(
                h,
                u64::from(s.waiting[i])
                    | u64::from(s.finished[i]) << 1
                    | u64::from(s.yielded[i]) << 2,
            );
        }
        // A finished `prev` no longer shapes future choices (it can be
        // neither continued nor preempted), so normalize it away — this
        // merges schedules that differ only in which finished thread ran
        // last.
        let live_prev = prev.filter(|&p| !s.finished[p]);
        h = splitmix(h, live_prev.map_or(u64::MAX, |p| p as u64));
        splitmix(h, budget_left as u64)
    }
}

fn new_cell(initial: u64) -> Arc<CellState> {
    if let Some((exec, _)) = current_exec() {
        return exec.register_cell(initial);
    }
    REGISTRY.with(|r| {
        if let Some(exec) = r.borrow().as_ref() {
            exec.register_cell(initial)
        } else {
            Arc::new(CellState { value: std::sync::atomic::AtomicU64::new(initial) })
        }
    })
}

// ---------------------------------------------------------------------------
// Shim atomics
// ---------------------------------------------------------------------------

macro_rules! shim_atomic {
    ($name:ident, $ty:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// API-compatible with its `std::sync::atomic` namesake (for the
        /// operations the modeled protocols use). Memory orderings are
        /// honored in pass-through mode; under an active exploration every
        /// operation is sequentially consistent and preceded by a
        /// scheduling point.
        #[derive(Debug)]
        pub struct $name {
            cell: Arc<CellState>,
        }

        impl $name {
            /// Creates a shim atomic holding `value`, registering it with
            /// the active execution (if any).
            #[must_use]
            pub fn new(value: $ty) -> Self {
                Self { cell: new_cell(value as u64) }
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $ty {
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    let v = self.cell.value.load(Ordering::SeqCst);
                    let idx = exec.cell_index(&self.cell);
                    exec.record(Event {
                        thread: tid,
                        cell: idx,
                        kind: EventKind::Load,
                        a: v,
                        b: v,
                    });
                    exec.note_obs(tid, v);
                    v as $ty
                } else {
                    self.cell.value.load(order) as $ty
                }
            }

            /// Stores `value`.
            pub fn store(&self, value: $ty, order: Ordering) {
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    self.cell.value.store(value as u64, Ordering::SeqCst);
                    let idx = exec.cell_index(&self.cell);
                    exec.record(Event {
                        thread: tid,
                        cell: idx,
                        kind: EventKind::Store,
                        a: value as u64,
                        b: value as u64,
                    });
                } else {
                    self.cell.value.store(value as u64, order);
                }
            }

            /// Adds `delta`, returning the previous value (wrapping).
            pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    let old = self.cell.value.fetch_add(delta as u64, Ordering::SeqCst);
                    let idx = exec.cell_index(&self.cell);
                    exec.record(Event {
                        thread: tid,
                        cell: idx,
                        kind: EventKind::RmwAdd,
                        a: old,
                        b: old.wrapping_add(delta as u64),
                    });
                    exec.note_obs(tid, old);
                    old as $ty
                } else {
                    self.cell.value.fetch_add(delta as u64, order) as $ty
                }
            }

            /// Subtracts `delta`, returning the previous value (wrapping).
            pub fn fetch_sub(&self, delta: $ty, order: Ordering) -> $ty {
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    let old = self.cell.value.fetch_sub(delta as u64, Ordering::SeqCst);
                    let idx = exec.cell_index(&self.cell);
                    exec.record(Event {
                        thread: tid,
                        cell: idx,
                        kind: EventKind::RmwSub,
                        a: old,
                        b: old.wrapping_sub(delta as u64),
                    });
                    exec.note_obs(tid, old);
                    old as $ty
                } else {
                    self.cell.value.fetch_sub(delta as u64, order) as $ty
                }
            }

            /// Stores the maximum of the current value and `value`
            /// (signed-aware for the signed shim), returning the previous
            /// value.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                let max_op = |cell: &std::sync::atomic::AtomicU64| {
                    let mut old = cell.load(Ordering::SeqCst);
                    loop {
                        let new = if (old as $ty) >= value { old } else { value as u64 };
                        match cell.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst) {
                            Ok(_) => return (old, new),
                            Err(seen) => old = seen,
                        }
                    }
                };
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    let (old, new) = max_op(&self.cell.value);
                    let idx = exec.cell_index(&self.cell);
                    exec.record(Event {
                        thread: tid,
                        cell: idx,
                        kind: EventKind::RmwMax,
                        a: old,
                        b: new,
                    });
                    exec.note_obs(tid, old);
                    old as $ty
                } else {
                    let _ = order;
                    max_op(&self.cell.value).0 as $ty
                }
            }

            /// Compare-and-swap with the `std` `Ok(previous)`/`Err(seen)`
            /// contract.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                if let Some((exec, tid)) = current_exec() {
                    exec.pause(tid, false);
                    let res = self.cell.value.compare_exchange(
                        current as u64,
                        new as u64,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    let idx = exec.cell_index(&self.cell);
                    match res {
                        Ok(old) => {
                            exec.record(Event {
                                thread: tid,
                                cell: idx,
                                kind: EventKind::CasOk,
                                a: old,
                                b: new as u64,
                            });
                            exec.note_obs(tid, old ^ 1);
                            Ok(old as $ty)
                        }
                        Err(seen) => {
                            exec.record(Event {
                                thread: tid,
                                cell: idx,
                                kind: EventKind::CasFail,
                                a: current as u64,
                                b: seen,
                            });
                            exec.note_obs(tid, seen);
                            Err(seen as $ty)
                        }
                    }
                } else {
                    self.cell
                        .value
                        .compare_exchange(current as u64, new as u64, success, failure)
                        .map(|v| v as $ty)
                        .map_err(|v| v as $ty)
                }
            }

            /// Weak compare-and-swap. Never fails spuriously under the
            /// model: spurious-failure schedules are a strict subset of
            /// the CAS-fail interleavings already explored.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

shim_atomic!(AtomicU64, u64, "Shim of [`std::sync::atomic::AtomicU64`] for model checking.");
shim_atomic!(AtomicUsize, usize, "Shim of [`std::sync::atomic::AtomicUsize`] for model checking.");
shim_atomic!(AtomicI64, i64, "Shim of [`std::sync::atomic::AtomicI64`] for model checking.");

// ---------------------------------------------------------------------------
// In-model helpers used by the feature seams
// ---------------------------------------------------------------------------

/// Whether the calling thread is a worker of an active exploration.
#[must_use]
pub fn in_model() -> bool {
    current_exec().is_some()
}

/// A voluntary scheduling point for wait loops: under the model, marks
/// the thread *yielded* (only re-eligible once every other runnable
/// thread has moved, which keeps spin loops from monopolizing the DFS);
/// outside the model, a plain [`std::thread::yield_now`].
pub fn model_yield() {
    if let Some((exec, tid)) = current_exec() {
        exec.record(Event { thread: tid, cell: usize::MAX, kind: EventKind::Yield, a: 0, b: 0 });
        exec.pause(tid, true);
    } else {
        std::thread::yield_now();
    }
}

/// An explicit named scheduling point (no memory operation) for coarse
/// seams — e.g. "about to check sole ownership". A no-op outside the
/// model.
pub fn model_point(label: u64) {
    if let Some((exec, tid)) = current_exec() {
        exec.record(Event {
            thread: tid,
            cell: usize::MAX,
            kind: EventKind::Point,
            a: label,
            b: 0,
        });
        exec.pause(tid, false);
    }
}

/// The model analogue of parking on a timeout: polls `filled` with a
/// voluntary yield between rounds, for [`ModelConfig::park_spins`]
/// rounds; returns whether the condition was observed (`false` models
/// the park timing out). Outside the model it degenerates to a single
/// probe (callers seam it behind [`in_model`], so that path is unused).
pub fn park_poll(filled: impl Fn() -> bool) -> bool {
    let spins = current_exec().map_or(1, |(exec, _)| exec.park_spins);
    for _ in 0..spins {
        if filled() {
            return true;
        }
        model_yield();
    }
    filled()
}

/// Whether the named seeded mutation is active in this execution. Always
/// `false` outside the model, so production behavior is untouched even
/// with the `model` feature compiled in.
#[must_use]
pub fn mutation_enabled(name: &str) -> bool {
    match current_exec() {
        Some((exec, _)) => exec.mutations.lock().expect("model lock").contains(name),
        None => false,
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

enum ExecOutcome {
    Ok,
    Failed(String),
}

struct Frame {
    choices: Vec<usize>,
    idx: usize,
}

struct Search {
    stack: Vec<Frame>,
    seen: HashSet<u64>,
    pruned: u64,
    decision_points: u64,
    max_depth: usize,
}

/// Runs one execution of a freshly built scenario.
///
/// At each decision point, `forced` is consulted first (trace replay);
/// past it, `search` (if present) replays its stack prefix and pushes a
/// new frame in fresh territory; with neither, the first eligible choice
/// is taken greedily.
fn run_once<T: Send + 'static>(
    config: &ModelConfig,
    factory: impl FnOnce() -> Scenario<T>,
    forced: &[usize],
    mut search: Option<&mut Search>,
) -> (Vec<usize>, Vec<String>, ExecOutcome) {
    let exec = Arc::new(ExecInner::new(config));
    // Cells the factory creates during setup must belong to this
    // execution, so state hashing and the event log see them.
    REGISTRY.with(|r| *r.borrow_mut() = Some(Arc::clone(&exec)));
    let scenario = factory();
    REGISTRY.with(|r| *r.borrow_mut() = None);

    let n = scenario.threads.len();
    assert!(n > 0, "a scenario needs at least one thread");
    exec.init(n, &scenario.mutations);

    let handles: Vec<_> = scenario
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                EXEC.with(|e| *e.borrow_mut() = Some((Arc::clone(&exec), tid)));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    exec.record(Event {
                        thread: tid,
                        cell: usize::MAX,
                        kind: EventKind::Start,
                        a: 0,
                        b: 0,
                    });
                    exec.pause(tid, false);
                    body()
                }));
                let out = match result {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        if payload.downcast_ref::<ModelAbort>().is_none() {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_owned())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "opaque panic payload".to_owned());
                            let mut s = exec.sched.lock().expect("model lock");
                            s.panics.push(format!("thread {tid} panicked: {msg}"));
                            s.aborted = true;
                            exec.cv.notify_all();
                        }
                        None
                    }
                };
                exec.finish(tid);
                EXEC.with(|e| *e.borrow_mut() = None);
                out
            })
        })
        .collect();

    let mut decisions: Vec<usize> = Vec::new();
    let mut prev: Option<usize> = None;
    let mut preemptions_used = 0usize;
    let mut failure: Option<String> = None;

    loop {
        // Wait until every thread is paused at a scheduling point (or
        // finished) and nobody holds a grant.
        let mut s = exec.sched.lock().expect("model lock");
        loop {
            if s.aborted {
                break;
            }
            let all_paused = s.current.is_none() && (0..n).all(|i| s.finished[i] || s.waiting[i]);
            if all_paused {
                break;
            }
            let (guard, timeout) = exec.cv.wait_timeout(s, WATCHDOG).expect("model lock");
            s = guard;
            if timeout.timed_out() {
                failure = Some(
                    "model execution stalled: a thread is blocked outside the \
                     engine's control (unseamed blocking primitive?)"
                        .to_owned(),
                );
                s.aborted = true;
                exec.cv.notify_all();
                break;
            }
        }
        if s.aborted {
            drop(s);
            break;
        }
        if (0..n).all(|i| s.finished[i]) {
            drop(s);
            break;
        }
        if s.steps >= exec.max_steps {
            failure =
                Some(format!("livelock: execution exceeded {} scheduling points", exec.max_steps));
            s.aborted = true;
            exec.cv.notify_all();
            drop(s);
            break;
        }

        // Eligibility: paused, unfinished; yielded threads step aside
        // until every runnable thread has yielded (loom-style), which
        // guarantees wait loops make way for the thread they wait on.
        let runnable: Vec<usize> = (0..n).filter(|&i| s.waiting[i] && !s.finished[i]).collect();
        let non_yielded: Vec<usize> = runnable.iter().copied().filter(|&i| !s.yielded[i]).collect();
        let pool = if non_yielded.is_empty() {
            for i in &runnable {
                s.yielded[*i] = false;
            }
            runnable.clone()
        } else {
            non_yielded
        };

        let depth = decisions.len();
        let budget_left = config.preemptions.saturating_sub(preemptions_used);
        let chosen =
            if let Some(&forced_tid) = forced.get(depth).filter(|&&t| runnable.contains(&t)) {
                // Honoring the pinned trace. A forced thread that is no
                // longer runnable (the code under the trace changed — e.g. a
                // fixed protocol takes fewer steps than the mutated one the
                // trace was recorded against) falls through to the greedy
                // arm: the trace steers the schedule as far as it remains
                // valid, and the scenario's invariant check still judges the
                // outcome.
                forced_tid
            } else if let Some(search) = search.as_deref_mut() {
                search.decision_points += 1;
                if depth < search.stack.len() {
                    // Replaying the prefix the DFS stack pins for this run.
                    let frame = &search.stack[depth];
                    frame.choices[frame.idx]
                } else {
                    // Fresh territory: enumerate preemption-bounded choices —
                    // continue `prev` for free, branch only with budget left.
                    let mut choices: Vec<usize> = Vec::new();
                    match prev {
                        Some(p) if pool.contains(&p) => {
                            choices.push(p);
                            if budget_left > 0 {
                                choices.extend(pool.iter().copied().filter(|&t| t != p));
                            }
                        }
                        _ => choices.extend(pool.iter().copied()),
                    }
                    if config.state_hashing && choices.len() > 1 {
                        let h = exec.state_hash(&s, prev, budget_left);
                        if !search.seen.insert(h) {
                            search.pruned += 1;
                            choices.truncate(1);
                        }
                    }
                    let first = choices[0];
                    search.stack.push(Frame { choices, idx: 0 });
                    first
                }
            } else {
                // Past the pinned trace (or no search): continue greedily.
                match prev {
                    Some(p) if pool.contains(&p) => p,
                    _ => pool[0],
                }
            };

        if let Some(p) = prev {
            if chosen != p && !s.finished[p] {
                preemptions_used += 1;
            }
        }
        decisions.push(chosen);
        if let Some(search) = search.as_deref_mut() {
            search.max_depth = search.max_depth.max(decisions.len());
        }
        prev = Some(chosen);
        s.current = Some(chosen);
        s.waiting[chosen] = false;
        s.yielded[chosen] = false;
        s.steps += 1;
        s.ops[chosen] += 1;
        drop(s);
        exec.cv.notify_all();
    }

    // Make sure every worker unwinds, then collect results.
    let mut outs: Vec<Option<T>> = Vec::with_capacity(n);
    for handle in handles {
        outs.push(handle.join().unwrap_or(None));
    }
    let (events, panics) = {
        let s = exec.sched.lock().expect("model lock");
        let events: Vec<String> = s.events.iter().enumerate().map(|(i, e)| e.render(i)).collect();
        (events, s.panics.clone())
    };

    let outcome = if let Some(msg) = panics.into_iter().next() {
        ExecOutcome::Failed(msg)
    } else if let Some(msg) = failure {
        ExecOutcome::Failed(msg)
    } else {
        let results: Option<Vec<T>> = outs.into_iter().collect();
        match results {
            Some(values) => match (scenario.check)(&values) {
                Ok(()) => ExecOutcome::Ok,
                Err(msg) => ExecOutcome::Failed(msg),
            },
            None => ExecOutcome::Failed("a model thread produced no result".to_owned()),
        }
    };
    (decisions, events, outcome)
}

/// Exhaustively explores the scenario's schedules within the config's
/// preemption bound, returning the first counterexample found (if any)
/// with a replayable trace.
///
/// `scenario` is a *factory*: it is invoked once per execution and must
/// build fresh, fully independent state each time (shim atomics created
/// inside it register with that execution automatically).
pub fn explore<T: Send + 'static>(
    config: &ModelConfig,
    mut scenario: impl FnMut() -> Scenario<T>,
) -> ExploreReport {
    let mut search = Search {
        stack: Vec::new(),
        seen: HashSet::new(),
        pruned: 0,
        decision_points: 0,
        max_depth: 0,
    };
    let mut executions = 0u64;
    let mut complete = true;
    let mut counterexample = None;

    loop {
        if executions >= config.max_executions {
            complete = false;
            break;
        }
        let (decisions, events, outcome) = run_once(config, &mut scenario, &[], Some(&mut search));
        executions += 1;
        if let ExecOutcome::Failed(message) = outcome {
            counterexample = Some(Counterexample { message, trace: Trace { decisions }, events });
            complete = false;
            break;
        }
        // Backtrack the DFS stack to the next unexplored branch; the next
        // run_once replays frames 0..stack.len() as its forced prefix.
        loop {
            match search.stack.last_mut() {
                None => break,
                Some(frame) => {
                    if frame.idx + 1 < frame.choices.len() {
                        frame.idx += 1;
                        break;
                    }
                    search.stack.pop();
                }
            }
        }
        if search.stack.is_empty() {
            break;
        }
    }

    ExploreReport {
        executions,
        decision_points: search.decision_points,
        pruned_states: search.pruned,
        max_depth: search.max_depth,
        complete,
        counterexample,
    }
}

/// Runs the scenario once under the pinned schedule, continuing greedily
/// once the trace is exhausted — or from the first decision the trace
/// can no longer force (replaying a mutated protocol's trace against the
/// fixed code legitimately takes different steps; the trace steers the
/// schedule as far as it stays valid). Returns the failure if the
/// schedule still (or again) breaks the invariant — pinned regression
/// tests assert `Ok` on fixed code and `Err` on mutated code.
pub fn replay<T: Send + 'static>(
    config: &ModelConfig,
    scenario: impl FnOnce() -> Scenario<T>,
    trace: &Trace,
) -> Result<(), Counterexample> {
    let (decisions, events, outcome) = run_once(config, scenario, &trace.decisions, None);
    match outcome {
        ExecOutcome::Ok => Ok(()),
        ExecOutcome::Failed(message) => {
            Err(Counterexample { message, trace: Trace { decisions }, events })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;

    fn broken_counter_scenario() -> Scenario<()> {
        let counter = Arc::new(AtomicU64::new(0));
        let bump = |c: Arc<AtomicU64>| {
            move || {
                // Load-then-store: the classic lost update.
                let v = c.load(SeqCst);
                c.store(v + 1, SeqCst);
            }
        };
        let check = Arc::clone(&counter);
        Scenario::new(
            vec![Box::new(bump(Arc::clone(&counter))), Box::new(bump(Arc::clone(&counter)))],
            move |_: &[()]| {
                let v = check.load(SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: counter is {v}, expected 2"))
                }
            },
        )
    }

    #[test]
    fn finds_a_lost_update_with_one_preemption() {
        let report = explore(&ModelConfig::with_preemptions(1), broken_counter_scenario);
        let bug = report.counterexample.expect("lost update must be found");
        assert!(bug.message.contains("lost update"), "{}", bug.message);
        assert!(!bug.trace.decisions.is_empty());
        assert!(!bug.events.is_empty());
    }

    #[test]
    fn replays_the_exact_counterexample() {
        let report = explore(&ModelConfig::with_preemptions(1), broken_counter_scenario);
        let bug = report.counterexample.expect("lost update must be found");
        let err = replay(&ModelConfig::default(), broken_counter_scenario, &bug.trace)
            .expect_err("the pinned schedule must still fail on the broken code");
        assert!(err.message.contains("lost update"), "{}", err.message);
    }

    #[test]
    fn verifies_a_cas_retry_counter() {
        let report = explore(&ModelConfig::with_preemptions(2), || {
            let counter = Arc::new(AtomicU64::new(0));
            let bump = |c: Arc<AtomicU64>| {
                move || loop {
                    let v = c.load(SeqCst);
                    if c.compare_exchange(v, v + 1, SeqCst, SeqCst).is_ok() {
                        break;
                    }
                }
            };
            let check = Arc::clone(&counter);
            Scenario::new(
                vec![Box::new(bump(Arc::clone(&counter))), Box::new(bump(Arc::clone(&counter)))],
                move |_: &[()]| {
                    let v = check.load(SeqCst);
                    if v == 2 {
                        Ok(())
                    } else {
                        Err(format!("counter is {v}"))
                    }
                },
            )
        });
        assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
        assert!(report.complete);
        assert!(report.executions > 1, "multiple schedules must be explored");
    }

    #[test]
    fn yield_loops_make_progress() {
        // A waiter spins (with model_yield) until a setter flips a flag.
        // Yield deprioritization must let the setter run, and the
        // execution must terminate well under the step bound.
        let report = explore(&ModelConfig::with_preemptions(1), || {
            let flag = Arc::new(AtomicU64::new(0));
            let waiter = {
                let flag = Arc::clone(&flag);
                move || {
                    while flag.load(SeqCst) == 0 {
                        model_yield();
                    }
                    1u64
                }
            };
            let setter = {
                let flag = Arc::clone(&flag);
                move || {
                    flag.store(1, SeqCst);
                    0u64
                }
            };
            Scenario::new(vec![Box::new(waiter), Box::new(setter)], |outs: &[u64]| {
                if outs[0] == 1 {
                    Ok(())
                } else {
                    Err("waiter did not observe the flag".into())
                }
            })
        });
        assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
        assert!(report.complete);
    }

    #[test]
    fn panics_inside_protocol_code_become_counterexamples() {
        let report = explore(&ModelConfig::with_preemptions(1), || {
            let cell = Arc::new(AtomicU64::new(0));
            let a = {
                let cell = Arc::clone(&cell);
                move || {
                    // Panics only when the other thread ran first.
                    assert_eq!(cell.fetch_add(1, SeqCst), 0, "second place");
                }
            };
            let b = {
                let cell = Arc::clone(&cell);
                move || {
                    cell.fetch_add(1, SeqCst);
                }
            };
            Scenario::new(vec![Box::new(a), Box::new(b)], |_: &[()]| Ok(()))
        });
        let bug = report.counterexample.expect("the ordering-dependent panic must be found");
        assert!(bug.message.contains("panicked"), "{}", bug.message);
    }

    #[test]
    fn state_hashing_prunes_commuting_schedules() {
        // Three threads each storing the same value to one cell: all
        // orders converge to identical states, so pruning must cut the
        // execution count.
        let run = |hashing: bool| {
            let config = ModelConfig { state_hashing: hashing, ..ModelConfig::default() };
            explore(&config, || {
                let cell = Arc::new(AtomicU64::new(0));
                let put = |c: Arc<AtomicU64>| {
                    move || {
                        c.store(7, SeqCst);
                    }
                };
                Scenario::new(
                    vec![
                        Box::new(put(Arc::clone(&cell))),
                        Box::new(put(Arc::clone(&cell))),
                        Box::new(put(Arc::clone(&cell))),
                    ],
                    |_: &[()]| Ok(()),
                )
            })
        };
        let pruned = run(true);
        let full = run(false);
        assert!(pruned.counterexample.is_none());
        assert!(full.counterexample.is_none());
        assert!(pruned.pruned_states > 0, "pruning should trigger");
        assert!(
            pruned.executions < full.executions,
            "pruning should reduce executions ({} vs {})",
            pruned.executions,
            full.executions
        );
    }

    #[test]
    fn mutations_are_visible_only_inside_their_execution() {
        assert!(!mutation_enabled("demo-mutation"));
        let report = explore(&ModelConfig::with_preemptions(0), || {
            Scenario::new(
                vec![Box::new(|| mutation_enabled("demo-mutation"))],
                |outs: &[bool]| {
                    if outs[0] {
                        Ok(())
                    } else {
                        Err("mutation flag not visible in model thread".into())
                    }
                },
            )
            .with_mutation("demo-mutation")
        });
        assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
        assert!(!mutation_enabled("demo-mutation"));
    }

    #[test]
    fn shim_atomics_pass_through_outside_the_model() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load(SeqCst), 5);
        assert_eq!(a.fetch_add(3, SeqCst), 5);
        assert_eq!(a.fetch_sub(1, SeqCst), 8);
        assert_eq!(a.fetch_max(100, SeqCst), 7);
        assert_eq!(a.compare_exchange(100, 0, SeqCst, SeqCst), Ok(100));
        assert_eq!(a.compare_exchange(7, 1, SeqCst, SeqCst), Err(0));
        let s = AtomicI64::new(-4);
        assert_eq!(s.fetch_max(-10, SeqCst), -4);
        assert_eq!(s.load(SeqCst), -4);
        assert_eq!(s.fetch_max(2, SeqCst), -4);
        assert_eq!(s.load(SeqCst), 2);
        let u = AtomicUsize::new(1);
        assert_eq!(u.fetch_add(1, SeqCst), 1);
        assert!(!in_model());
    }

    #[test]
    fn livelock_is_reported_as_a_counterexample() {
        let config = ModelConfig { max_steps: 200, ..ModelConfig::with_preemptions(0) };
        let report = explore(&config, || {
            let flag = Arc::new(AtomicU64::new(0));
            let waiter = {
                let flag = Arc::clone(&flag);
                move || {
                    // Waits for a value nobody ever writes.
                    while flag.load(SeqCst) == 0 {
                        model_yield();
                    }
                }
            };
            Scenario::new(vec![Box::new(waiter)], |_: &[()]| Ok(()))
        });
        let bug = report.counterexample.expect("livelock must be reported");
        assert!(bug.message.contains("livelock"), "{}", bug.message);
    }

    #[test]
    fn traces_roundtrip_through_serde() {
        let trace = Trace { decisions: vec![0, 1, 1, 0, 2] };
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Trace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, trace);
    }
}
