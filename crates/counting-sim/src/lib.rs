//! # counting-sim — token-level simulation and contention measurement
//!
//! The paper measures the quality of a counting network by its *amortized
//! contention* under the stall-counting model of Dwork, Herlihy & Waarts
//! (Section 1.2 and Section 6): each balancer is a shared memory location;
//! when a token passes through a balancer it causes one stall to every
//! other token currently waiting at that balancer; the amortized contention
//! is the total number of stalls divided by the number of tokens, maximized
//! over schedules chosen by an adversary.
//!
//! This crate provides a discrete, single-threaded but fully
//! interleaving-accurate simulator of that model:
//!
//! * [`Simulation`] drives `n` concurrent processes, each shepherding one
//!   token at a time through an arbitrary [`balnet::Network`]; the order of
//!   atomic balancer traversals is chosen by a pluggable [`Scheduler`].
//! * Stalls are accounted per balancer and per layer, so the contention of
//!   the blocks `N_a`, `N_b`, `N_c` of `C(w, t)` can be separated
//!   (Section 1.3.2).
//! * [`scheduler`]s include round-robin (lock-step waves — the
//!   high-contention regime the bounds are stated for), uniformly random,
//!   and a greedy "hotspot" adversary that preferentially drains the most
//!   crowded balancer.
//! * [`contention`] offers sweep helpers producing serializable result rows
//!   used by the benchmark harness to regenerate the paper's comparisons.
//! * [`elimination`] models the elimination/combining arena that
//!   `counting-runtime` places in front of a counter, predicting collision
//!   rates and combining factors for comparison against real-hardware
//!   measurements, and hosts the deterministic mixed-batch-size stream
//!   shared with the stress harness.
//! * [`des`] is a seeded discrete-event kernel with per-message fault
//!   injection (drop / duplicate / delay / reorder) — the deterministic
//!   substrate under the `counting-cluster` distributed simulation.
//!
//! The simulator also verifies Fetch&Increment semantics: in a counting
//! network the values handed out on the output wires form exactly the range
//! `0..m-1`.

#![warn(missing_docs)]

pub mod contention;
pub mod des;
pub mod elimination;
pub mod linearizability;
pub mod model;
pub mod report;
pub mod scheduler;
pub mod sim;

pub use contention::{measure_contention, sweep_concurrency, ContentionPoint};
pub use des::{EventQueue, FaultPlan, SimRng};
pub use elimination::{batch_size_sequence, simulate_arena, ArenaConfig, ArenaReport};
pub use linearizability::{is_linearizable, violations, Violation};
pub use model::{explore, replay, Counterexample, ExploreReport, ModelConfig, Scenario, Trace};
pub use report::{ContentionReport, FetchIncrementOutcome, TokenRecord};
pub use scheduler::{GreedyHotspot, RandomScheduler, RoundRobin, Scheduler, SchedulerKind};
pub use sim::{SimConfig, Simulation};
