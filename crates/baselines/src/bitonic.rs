//! The bitonic counting network of Aspnes, Herlihy & Shavit.
//!
//! `Bitonic[w]` (for `w = 2^k`) is the prime example of a regular counting
//! network (Section 1.3 of Busch & Mavronicolas). It is built recursively:
//! two `Bitonic[w/2]` networks count the two halves of the inputs and a
//! `Merger[w]` network merges their (step) outputs. The merger splits its
//! inputs into even/odd subsequences crosswise, merges those recursively,
//! and fixes up the result with a final layer of balancers. Its depth is
//! `lg w`, giving the bitonic network total depth `lgw·(lgw+1)/2` — the
//! same as `C(w, t)` — but its amortized contention is `Θ(n·lg²w/w)`
//! (Dwork, Herlihy & Waarts), which `C(w, t)` improves on by a `lg w`
//! factor when `t = w·lgw`.

use balnet::{BuildError, Network, NetworkBuilder};

/// Where a wire comes from (local copy of the wiring helper used by the
/// `counting` crate; kept crate-private to avoid a public dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Input(usize),
    Bal(balnet::BalancerId, usize),
}

fn feed_balancer(b: &mut NetworkBuilder, src: Src, to: balnet::BalancerId, port: usize) {
    match src {
        Src::Input(i) => b.connect_input(i, to, port),
        Src::Bal(from, from_port) => b.connect(from, from_port, to, port),
    }
}

fn feed_output(b: &mut NetworkBuilder, src: Src, output: usize) {
    match src {
        Src::Input(i) => b.connect_input_to_output(i, output),
        Src::Bal(from, from_port) => b.connect_to_output(from, from_port, output),
    }
}

fn evens(srcs: &[Src]) -> Vec<Src> {
    srcs.iter().step_by(2).copied().collect()
}

fn odds(srcs: &[Src]) -> Vec<Src> {
    srcs.iter().skip(1).step_by(2).copied().collect()
}

/// Adds the bitonic `Merger[2k]` over two step input sequences `x` and `y`
/// of length `k` each, returning the `2k` output sources.
fn merger_into(b: &mut NetworkBuilder, x: &[Src], y: &[Src]) -> Vec<Src> {
    assert_eq!(x.len(), y.len());
    let k = x.len();
    if k == 1 {
        let bal = b.add_balancer(2, 2);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, y[0], bal, 1);
        return vec![Src::Bal(bal, 0), Src::Bal(bal, 1)];
    }
    // Cross split: even of x with odd of y, odd of x with even of y.
    let a = merger_into(b, &evens(x), &odds(y));
    let bb = merger_into(b, &odds(x), &evens(y));
    // Final layer: the i-th outputs of the two sub-mergers feed a balancer
    // whose outputs are wires 2i and 2i+1.
    let mut out = Vec::with_capacity(2 * k);
    for i in 0..k {
        let bal = b.add_balancer(2, 2);
        feed_balancer(b, a[i], bal, 0);
        feed_balancer(b, bb[i], bal, 1);
        out.push(Src::Bal(bal, 0));
        out.push(Src::Bal(bal, 1));
    }
    out
}

/// Adds `Bitonic[w]` over the given sources, returning the output sources.
fn bitonic_into(b: &mut NetworkBuilder, x: &[Src]) -> Vec<Src> {
    let w = x.len();
    if w == 1 {
        return x.to_vec();
    }
    let (top, bottom) = x.split_at(w / 2);
    let g = bitonic_into(b, top);
    let h = bitonic_into(b, bottom);
    merger_into(b, &g, &h)
}

/// Builds the bitonic merging network `Merger[w]` as a standalone network:
/// its first `w/2` input wires carry the first step sequence, the last
/// `w/2` the second.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is a power of two
/// `>= 2`.
pub fn bitonic_merger(w: usize) -> Result<Network, BuildError> {
    if w < 2 || !w.is_power_of_two() {
        return Err(BuildError::InvalidParameter(format!(
            "Merger[w] requires w to be a power of two >= 2, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs: Vec<Src> = (0..w).map(Src::Input).collect();
    let (x, y) = srcs.split_at(w / 2);
    let out = merger_into(&mut b, x, y);
    for (i, s) in out.into_iter().enumerate() {
        feed_output(&mut b, s, i);
    }
    Ok(b.build_expect("bitonic merger"))
}

/// Builds the bitonic counting network `Bitonic[w]` for `w` a power of two.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is a power of two
/// `>= 2`.
pub fn bitonic_counting_network(w: usize) -> Result<Network, BuildError> {
    if w < 2 || !w.is_power_of_two() {
        return Err(BuildError::InvalidParameter(format!(
            "Bitonic[w] requires w to be a power of two >= 2, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs: Vec<Src> = (0..w).map(Src::Input).collect();
    let out = bitonic_into(&mut b, &srcs);
    for (i, s) in out.into_iter().enumerate() {
        feed_output(&mut b, s, i);
    }
    Ok(b.build_expect("bitonic counting network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{
        is_counting_network_exhaustive, is_counting_network_randomized, is_step, quiescent_output,
        step_sequence,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn depth_is_lgw_lgw_plus_1_over_2() {
        for k in 1..6 {
            let w = 1usize << k;
            let net = bitonic_counting_network(w).expect("valid");
            assert_eq!(net.depth(), k * (k + 1) / 2, "Bitonic[{w}]");
            assert_eq!(net.input_width(), w);
            assert_eq!(net.output_width(), w);
            assert!(net.is_regular());
        }
    }

    #[test]
    fn merger_depth_is_lgw() {
        for k in 1..7 {
            let w = 1usize << k;
            let net = bitonic_merger(w).expect("valid");
            assert_eq!(net.depth(), k, "Merger[{w}]");
            // lg w layers of w/2 balancers.
            assert_eq!(net.num_balancers(), k * w / 2);
        }
    }

    #[test]
    fn merger_merges_step_sequences() {
        let mut rng = StdRng::seed_from_u64(11);
        for w in [4usize, 8, 16, 32] {
            let net = bitonic_merger(w).expect("valid");
            for _ in 0..200 {
                let sx: u64 = rng.gen_range(0..100);
                let sy: u64 = rng.gen_range(0..100);
                let mut input = step_sequence(sx, w / 2);
                input.extend(step_sequence(sy, w / 2));
                let out = quiescent_output(&net, &input);
                assert!(is_step(&out), "Merger[{w}] Σx={sx} Σy={sy}: {out:?}");
            }
        }
    }

    #[test]
    fn small_bitonic_networks_count_exhaustively() {
        let b2 = bitonic_counting_network(2).expect("valid");
        assert!(is_counting_network_exhaustive(&b2, 8));
        let b4 = bitonic_counting_network(4).expect("valid");
        assert!(is_counting_network_exhaustive(&b4, 4));
    }

    #[test]
    fn larger_bitonic_networks_count_randomized() {
        let mut rng = StdRng::seed_from_u64(12);
        for w in [8usize, 16, 32] {
            let net = bitonic_counting_network(w).expect("valid");
            assert!(is_counting_network_randomized(&net, 150, 64, &mut rng), "Bitonic[{w}]");
        }
    }

    #[test]
    fn bitonic_balancer_count() {
        // B(w) = 2 B(w/2) + (w/2)·lg w, B(1) = 0 ⇒ B(w) = w·lgw·(lgw+1)/4.
        for k in 1..6 {
            let w = 1usize << k;
            let net = bitonic_counting_network(w).expect("valid");
            assert_eq!(net.num_balancers(), w * k * (k + 1) / 4);
        }
    }

    #[test]
    fn rejects_invalid_widths() {
        assert!(bitonic_counting_network(0).is_err());
        assert!(bitonic_counting_network(1).is_err());
        assert!(bitonic_counting_network(6).is_err());
        assert!(bitonic_merger(3).is_err());
    }
}
