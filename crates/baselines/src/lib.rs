//! # baselines — classic counting networks for comparison
//!
//! The paper evaluates its counting network `C(w, t)` against the classic
//! constructions; this crate implements them on top of the `balnet`
//! substrate so that the same verification, simulation and runtime
//! machinery applies to every network:
//!
//! * the **bitonic counting network** of Aspnes, Herlihy & Shavit —
//!   depth `lgw·(lgw+1)/2`, amortized contention `Θ(n·lg²w/w)`;
//! * the **periodic counting network** of Aspnes, Herlihy & Shavit —
//!   `lg w` cascaded blocks, depth `lg²w`, contention `O(n·lg³w/w)`;
//! * the **diffracting tree** of Shavit & Zemach (structural form) — a
//!   binary tree of `(1,2)`-balancers, depth `lg w`, adversarial
//!   contention `Θ(n)`;
//! * a **single central balancer** — the degenerate width-`w` network
//!   consisting of one `(w, w)`-balancer, the topological analogue of a
//!   centralized counter.
//!
//! All constructors return [`balnet::Network`] topologies.

#![warn(missing_docs)]

pub mod bitonic;
pub mod difftree;
pub mod periodic;
pub mod trivial;

pub use bitonic::{bitonic_counting_network, bitonic_merger};
pub use difftree::diffracting_tree;
pub use periodic::{periodic_block, periodic_counting_network};
pub use trivial::{central_balancer, identity_network};
