//! The periodic counting network of Aspnes, Herlihy & Shavit.
//!
//! `Periodic[w]` consists of `lg w` identical `Block[w]` networks cascaded
//! in series. A block is defined via *cochains*: the A-cochain of a
//! sequence consists of the even entries of its first half together with
//! the odd entries of its second half, the B-cochain of the remaining
//! entries. `Block[2k]` routes the A-cochain through one `Block[k]`, the
//! B-cochain through another, and joins the i-th outputs of the two
//! sub-blocks with a final layer of balancers feeding output wires `2i`
//! and `2i+1`. Each block has depth `lg w`, so the full network has depth
//! `lg²w` and amortized contention `O(n·lg³w/w)` (Dwork, Herlihy &
//! Waarts) — the weakest of the classic constructions, included as the
//! second comparison baseline of the paper.

use balnet::{BuildError, Network, NetworkBuilder};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Input(usize),
    Bal(balnet::BalancerId, usize),
}

fn feed_balancer(b: &mut NetworkBuilder, src: Src, to: balnet::BalancerId, port: usize) {
    match src {
        Src::Input(i) => b.connect_input(i, to, port),
        Src::Bal(from, from_port) => b.connect(from, from_port, to, port),
    }
}

fn feed_output(b: &mut NetworkBuilder, src: Src, output: usize) {
    match src {
        Src::Input(i) => b.connect_input_to_output(i, output),
        Src::Bal(from, from_port) => b.connect_to_output(from, from_port, output),
    }
}

/// Adds one `Block[w]` over the given sources, returning the output
/// sources.
///
/// The block is the balancing analogue of one period of the
/// Dowd–Perl–Rudolph–Saks balanced sorting network: a first layer of
/// balancers pairing wire `i` with wire `w-1-i` (the "mirror" layer),
/// followed by a `Block[w/2]` on each half. Each block has depth `lg w`.
fn block_into(builder: &mut NetworkBuilder, x: &[Src]) -> Vec<Src> {
    let w = x.len();
    if w == 1 {
        return x.to_vec();
    }
    // Mirror layer: balancer i joins wires i and w-1-i; its first output
    // stays on wire i, its second on wire w-1-i.
    let mut after = vec![None; w];
    for i in 0..w / 2 {
        let bal = builder.add_balancer(2, 2);
        feed_balancer(builder, x[i], bal, 0);
        feed_balancer(builder, x[w - 1 - i], bal, 1);
        after[i] = Some(Src::Bal(bal, 0));
        after[w - 1 - i] = Some(Src::Bal(bal, 1));
    }
    let after: Vec<Src> = after.into_iter().map(|s| s.expect("assigned")).collect();
    // Recurse on the two halves.
    let (top, bottom) = after.split_at(w / 2);
    let mut out = block_into(builder, top);
    out.extend(block_into(builder, bottom));
    out
}

/// Builds a single `Block[w]` network (one period of the periodic
/// network). A block alone is *not* a counting network; `lg w` of them in
/// series are.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is a power of two
/// `>= 2`.
pub fn periodic_block(w: usize) -> Result<Network, BuildError> {
    if w < 2 || !w.is_power_of_two() {
        return Err(BuildError::InvalidParameter(format!(
            "Block[w] requires w to be a power of two >= 2, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs: Vec<Src> = (0..w).map(Src::Input).collect();
    let out = block_into(&mut b, &srcs);
    for (i, s) in out.into_iter().enumerate() {
        feed_output(&mut b, s, i);
    }
    Ok(b.build_expect("periodic block"))
}

/// Builds the periodic counting network `Periodic[w]`: `lg w` cascaded
/// copies of `Block[w]`.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is a power of two
/// `>= 2`.
pub fn periodic_counting_network(w: usize) -> Result<Network, BuildError> {
    let block = periodic_block(w)?;
    let lgw = w.trailing_zeros() as usize;
    let mut net = block.clone();
    for _ in 1..lgw {
        net = net.cascade(&block).expect("blocks have matching widths");
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{is_counting_network_exhaustive, is_counting_network_randomized, output_is_step};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_shape() {
        for k in 1..6 {
            let w = 1usize << k;
            let net = periodic_block(w).expect("valid");
            assert_eq!(net.depth(), k, "Block[{w}] depth");
            assert_eq!(net.num_balancers(), k * w / 2);
            assert!(net.is_regular());
        }
    }

    #[test]
    fn periodic_depth_is_lg_squared() {
        for k in 1..5 {
            let w = 1usize << k;
            let net = periodic_counting_network(w).expect("valid");
            assert_eq!(net.depth(), k * k, "Periodic[{w}]");
            assert_eq!(net.num_balancers(), k * k * w / 2);
        }
    }

    #[test]
    fn a_single_block_is_not_a_counting_network() {
        // [0,0,2,0] is a counterexample for Block[4].
        let net = periodic_block(4).expect("valid");
        assert!(!output_is_step(&net, &[0, 0, 2, 0]));
    }

    #[test]
    fn small_periodic_networks_count_exhaustively() {
        let p2 = periodic_counting_network(2).expect("valid");
        assert!(is_counting_network_exhaustive(&p2, 8));
        let p4 = periodic_counting_network(4).expect("valid");
        assert!(is_counting_network_exhaustive(&p4, 4));
    }

    #[test]
    fn larger_periodic_networks_count_randomized() {
        let mut rng = StdRng::seed_from_u64(21);
        for w in [8usize, 16, 32] {
            let net = periodic_counting_network(w).expect("valid");
            assert!(is_counting_network_randomized(&net, 120, 64, &mut rng), "Periodic[{w}]");
        }
    }

    #[test]
    fn rejects_invalid_widths() {
        assert!(periodic_block(3).is_err());
        assert!(periodic_counting_network(0).is_err());
        assert!(periodic_counting_network(12).is_err());
    }
}
