//! Trivial comparison topologies: the central balancer and the identity
//! network.
//!
//! A single `(w, w)`-balancer is the topological analogue of a centralized
//! counter: every token serializes through one shared object, so it is a
//! perfect counting network with maximal contention (every concurrent
//! token stalls every other). The identity network (pure wires) is the
//! degenerate no-op used in tests and as a scaffolding aid.

use balnet::{BuildError, Network, NetworkBuilder};

/// Builds the width-`w` network consisting of a single `(w, w)`-balancer.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] if `w == 0`.
pub fn central_balancer(w: usize) -> Result<Network, BuildError> {
    if w == 0 {
        return Err(BuildError::InvalidParameter(
            "the central balancer needs a positive width".into(),
        ));
    }
    let mut b = NetworkBuilder::new(w, w);
    let bal = b.add_balancer(w, w);
    for i in 0..w {
        b.connect_input(i, bal, i);
        b.connect_to_output(bal, i, i);
    }
    Ok(b.build_expect("central balancer"))
}

/// Builds the identity network of width `w`: `w` pure wires and no
/// balancers.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] if `w == 0`.
pub fn identity_network(w: usize) -> Result<Network, BuildError> {
    if w == 0 {
        return Err(BuildError::InvalidParameter(
            "the identity network needs a positive width".into(),
        ));
    }
    let mut b = NetworkBuilder::new(w, w);
    for i in 0..w {
        b.connect_input_to_output(i, i);
    }
    Ok(b.build_expect("identity network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{is_counting_network_exhaustive, quiescent_output};

    #[test]
    fn central_balancer_counts() {
        for w in [1usize, 2, 4, 6, 8] {
            let net = central_balancer(w).expect("valid");
            assert_eq!(net.depth(), 1);
            assert_eq!(net.num_balancers(), 1);
            assert!(is_counting_network_exhaustive(&net, 3), "central balancer width {w}");
        }
    }

    #[test]
    fn identity_network_is_a_no_op() {
        let net = identity_network(4).expect("valid");
        assert_eq!(net.depth(), 0);
        let input = [3u64, 1, 4, 1];
        assert_eq!(quiescent_output(&net, &input), input.to_vec());
    }

    #[test]
    fn zero_width_rejected() {
        assert!(central_balancer(0).is_err());
        assert!(identity_network(0).is_err());
    }
}
