//! The diffracting tree of Shavit & Zemach (structural form).
//!
//! The diffracting tree is one of the two other known irregular counting
//! networks (Section 1.4.1): a binary tree of `(1, 2)`-balancers with one
//! input wire, `w` output wires and depth `lg w`. The "diffraction"
//! optimization (randomized prisms that let colliding tokens eliminate
//! each other) is a runtime technique and lives in `counting-runtime`; the
//! structural network here captures the topology and its quiescent
//! behaviour. Its adversarial amortized contention is `Θ(n)` because an
//! adversary can pile every token onto the root balancer.

use balnet::{BuildError, Network, NetworkBuilder};

#[derive(Debug, Clone, Copy)]
enum Src {
    Input(usize),
    Bal(balnet::BalancerId, usize),
}

fn feed_balancer(b: &mut NetworkBuilder, src: Src, to: balnet::BalancerId, port: usize) {
    match src {
        Src::Input(i) => b.connect_input(i, to, port),
        Src::Bal(from, from_port) => b.connect(from, from_port, to, port),
    }
}

fn feed_output(b: &mut NetworkBuilder, src: Src, output: usize) {
    match src {
        Src::Input(i) => b.connect_input_to_output(i, output),
        Src::Bal(from, from_port) => b.connect_to_output(from, from_port, output),
    }
}

/// Recursively adds a subtree fanning one source out to the given output
/// positions. The first output of each `(1,2)`-balancer leads to the
/// even-indexed positions and the second to the odd-indexed ones, so that
/// leaf `i` is reached by the bit-reversed path of `i` — this interleaving
/// is what makes the tree a counting network (the `i`-th token overall
/// exits on wire `i mod w`).
fn tree_into(b: &mut NetworkBuilder, src: Src, positions: &[usize], out: &mut [Option<Src>]) {
    if positions.len() == 1 {
        out[positions[0]] = Some(src);
        return;
    }
    let bal = b.add_balancer(1, 2);
    feed_balancer(b, src, bal, 0);
    let evens: Vec<usize> = positions.iter().step_by(2).copied().collect();
    let odds: Vec<usize> = positions.iter().skip(1).step_by(2).copied().collect();
    tree_into(b, Src::Bal(bal, 0), &evens, out);
    tree_into(b, Src::Bal(bal, 1), &odds, out);
}

/// Builds a diffracting tree with a single input wire and `w` output
/// wires, `w` a power of two.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is a power of two
/// `>= 2`.
pub fn diffracting_tree(w: usize) -> Result<Network, BuildError> {
    if w < 2 || !w.is_power_of_two() {
        return Err(BuildError::InvalidParameter(format!(
            "a diffracting tree requires a power-of-two output width >= 2, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(1, w);
    let positions: Vec<usize> = (0..w).collect();
    let mut out: Vec<Option<Src>> = vec![None; w];
    tree_into(&mut b, Src::Input(0), &positions, &mut out);
    for (i, s) in out.into_iter().enumerate() {
        feed_output(&mut b, s.expect("every output position assigned"), i);
    }
    Ok(b.build_expect("diffracting tree"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{assign_counter_values, is_step, quiescent_output};

    #[test]
    fn tree_shape() {
        for k in 1..8 {
            let w = 1usize << k;
            let net = diffracting_tree(w).expect("valid");
            assert_eq!(net.input_width(), 1);
            assert_eq!(net.output_width(), w);
            assert_eq!(net.depth(), k);
            assert_eq!(net.num_balancers(), w - 1);
            assert_eq!(net.balancer_census(), vec![((1, 2), w - 1)]);
        }
    }

    #[test]
    fn tree_counts_for_every_token_count() {
        // With a single input wire, the quiescent output must be the
        // canonical step sequence of the token count — but note the tree
        // interleaves bits, so this is not automatic; it is the classic
        // "tree counter" property.
        for w in [2usize, 4, 8, 16, 32] {
            let net = diffracting_tree(w).expect("valid");
            for m in 0..(4 * w as u64) {
                let out = quiescent_output(&net, &[m]);
                assert!(is_step(&out), "tree[{w}] with {m} tokens: {out:?}");
                assert_eq!(out.iter().sum::<u64>(), m);
            }
        }
    }

    #[test]
    fn counter_values_are_a_prefix_of_naturals() {
        let net = diffracting_tree(8).expect("valid");
        let out = quiescent_output(&net, &[13]);
        let mut values: Vec<u64> = assign_counter_values(&out).into_iter().flatten().collect();
        values.sort_unstable();
        assert_eq!(values, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_invalid_widths() {
        assert!(diffracting_tree(0).is_err());
        assert!(diffracting_tree(1).is_err());
        assert!(diffracting_tree(6).is_err());
    }
}
