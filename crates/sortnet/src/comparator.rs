//! Comparator-semantics evaluation of regular balancing networks.

use balnet::{Network, Port};

/// A comparator network obtained from a regular `(2,2)` balancing network
/// by the balancer→comparator substitution of Aspnes, Herlihy & Shavit:
/// each balancer compares its two inputs, sends the **larger** value to its
/// first output wire and the smaller to its second. The network sorts (into
/// non-increasing order) exactly when the balancing network counts.
#[derive(Debug, Clone)]
pub struct ComparatorNetwork {
    network: Network,
}

impl ComparatorNetwork {
    /// Wraps a regular balancing network built exclusively from
    /// `(2,2)`-balancers.
    ///
    /// # Errors
    ///
    /// Returns the offending balancer shape if any balancer is not `(2,2)`.
    pub fn from_balancing(network: Network) -> Result<Self, (usize, usize)> {
        for b in network.balancers() {
            if b.fan_in != 2 || b.fan_out != 2 {
                return Err((b.fan_in, b.fan_out));
            }
        }
        Ok(Self { network })
    }

    /// The width of the network (number of values it sorts).
    #[must_use]
    pub fn width(&self) -> usize {
        self.network.input_width()
    }

    /// The depth of the comparator network (layers of comparators).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.network.depth()
    }

    /// The number of comparators.
    #[must_use]
    pub fn size(&self) -> usize {
        self.network.num_balancers()
    }

    /// The underlying balancing-network topology.
    #[must_use]
    pub fn as_network(&self) -> &Network {
        &self.network
    }

    /// Routes `values` through the network and returns the output
    /// sequence. If the underlying balancing network is a counting network
    /// the result is sorted in non-increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.width()`.
    #[must_use]
    pub fn apply<T: Ord + Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.width(), "value count must equal the network width");
        // Every wire carries exactly one value; evaluate balancers in
        // topological order. Each balancer input port holds one value.
        let mut balancer_inputs: Vec<[Option<T>; 2]> =
            vec![[None, None]; self.network.num_balancers()];
        let mut outputs: Vec<Option<T>> = vec![None; self.network.output_width()];

        let deliver = |port: Port,
                       value: T,
                       balancer_inputs: &mut Vec<[Option<T>; 2]>,
                       outputs: &mut Vec<Option<T>>| match port {
            Port::Balancer { balancer, port } => {
                debug_assert!(balancer_inputs[balancer][port].is_none());
                balancer_inputs[balancer][port] = Some(value);
            }
            Port::Output(o) => {
                debug_assert!(outputs[o].is_none());
                outputs[o] = Some(value);
            }
        };

        for (wire, value) in values.iter().cloned().enumerate() {
            deliver(self.network.inputs()[wire], value, &mut balancer_inputs, &mut outputs);
        }
        for id in self.network.topological_order() {
            let [a, b] = std::mem::take(&mut balancer_inputs[id.index()]);
            let a = a.expect("both comparator inputs present");
            let b = b.expect("both comparator inputs present");
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let node = self.network.balancer(id);
            deliver(node.outputs[0], hi, &mut balancer_inputs, &mut outputs);
            deliver(node.outputs[1], lo, &mut balancer_inputs, &mut outputs);
        }
        outputs.into_iter().map(|v| v.expect("every output wire carries a value")).collect()
    }

    /// Sorts a slice in non-increasing order using the network.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.width()`.
    pub fn sort_descending<T: Ord + Clone>(&self, values: &mut [T]) {
        let sorted = self.apply(values);
        values.clone_from_slice(&sorted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::bitonic_counting_network;
    use counting::counting_network;

    #[test]
    fn rejects_irregular_networks() {
        let net = counting_network(4, 8).expect("valid");
        assert_eq!(ComparatorNetwork::from_balancing(net).unwrap_err(), (2, 4));
    }

    #[test]
    fn cww_comparator_network_sorts_concrete_inputs() {
        let net = counting_network(8, 8).expect("valid");
        let cn = ComparatorNetwork::from_balancing(net).expect("regular");
        assert_eq!(cn.width(), 8);
        assert_eq!(cn.depth(), 6);
        let out = cn.apply(&[3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(out, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn bitonic_comparator_network_sorts_concrete_inputs() {
        let net = bitonic_counting_network(8).expect("valid");
        let cn = ComparatorNetwork::from_balancing(net).expect("regular");
        let out = cn.apply(&[0, 0, 1, 0, 1, 1, 0, 1]);
        assert_eq!(out, vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn sort_descending_in_place() {
        let net = counting_network(4, 4).expect("valid");
        let cn = ComparatorNetwork::from_balancing(net).expect("regular");
        let mut values = vec!["pear", "apple", "quince", "fig"];
        cn.sort_descending(&mut values);
        assert_eq!(values, vec!["quince", "pear", "fig", "apple"]);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn apply_checks_width() {
        let net = counting_network(4, 4).expect("valid");
        let cn = ComparatorNetwork::from_balancing(net).expect("regular");
        let _ = cn.apply(&[1, 2, 3]);
    }
}
