//! Verification of sorting networks via the 0–1 principle.
//!
//! A comparator network sorts every input sequence if and only if it sorts
//! every sequence of zeros and ones (Knuth). For width `w` this gives an
//! exhaustive check over `2^w` boolean inputs — practical for the widths
//! used in tests — and a randomized check for larger widths.

use rand::Rng;

use crate::comparator::ComparatorNetwork;

/// Returns `true` if the sequence is sorted in non-increasing order.
fn is_non_increasing<T: Ord>(values: &[T]) -> bool {
    values.windows(2).all(|w| w[0] >= w[1])
}

/// Exhaustively checks the 0–1 principle: the network sorts all `2^w`
/// boolean inputs. Practical up to `w ≈ 20`.
///
/// # Panics
///
/// Panics if the width exceeds 25 (2^25 evaluations would be excessive for
/// a test helper; use the randomized check instead).
#[must_use]
pub fn is_sorting_network_exhaustive(network: &ComparatorNetwork) -> bool {
    let w = network.width();
    assert!(w <= 25, "exhaustive 0-1 verification is limited to width <= 25");
    for mask in 0u64..(1u64 << w) {
        let input: Vec<u8> = (0..w).map(|i| ((mask >> i) & 1) as u8).collect();
        if !is_non_increasing(&network.apply(&input)) {
            return false;
        }
    }
    true
}

/// Randomized check over `trials` random integer inputs (duplicates
/// included). A failure is definitive; a pass is probabilistic.
#[must_use]
pub fn is_sorting_network_randomized<R: Rng>(
    network: &ComparatorNetwork,
    trials: usize,
    rng: &mut R,
) -> bool {
    let w = network.width();
    for _ in 0..trials {
        let input: Vec<u32> = (0..w).map(|_| rng.gen_range(0..64)).collect();
        if !is_non_increasing(&network.apply(&input)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::NetworkBuilder;
    use baselines::{bitonic_counting_network, periodic_counting_network};
    use counting::counting_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn comparator(net: balnet::Network) -> ComparatorNetwork {
        ComparatorNetwork::from_balancing(net).expect("regular")
    }

    #[test]
    fn cww_networks_sort() {
        // Section 7: C(w, w) gives a sorting network of depth O(lg²w).
        for w in [2usize, 4, 8, 16] {
            let cn = comparator(counting_network(w, w).expect("valid"));
            assert!(is_sorting_network_exhaustive(&cn), "C({w},{w}) comparator network");
        }
    }

    #[test]
    fn bitonic_and_periodic_networks_sort() {
        for w in [2usize, 4, 8, 16] {
            let b = comparator(bitonic_counting_network(w).expect("valid"));
            assert!(is_sorting_network_exhaustive(&b), "bitonic[{w}]");
            let p = comparator(periodic_counting_network(w).expect("valid"));
            assert!(is_sorting_network_exhaustive(&p), "periodic[{w}]");
        }
    }

    #[test]
    fn larger_widths_randomized() {
        let mut rng = StdRng::seed_from_u64(31);
        let cn = comparator(counting_network(32, 32).expect("valid"));
        assert!(is_sorting_network_randomized(&cn, 300, &mut rng));
    }

    #[test]
    fn a_non_sorting_network_is_detected() {
        // A single layer of independent comparators on 4 wires does not
        // sort.
        let mut b = NetworkBuilder::new(4, 4);
        let b0 = b.add_balancer(2, 2);
        let b1 = b.add_balancer(2, 2);
        b.connect_input(0, b0, 0);
        b.connect_input(1, b0, 1);
        b.connect_input(2, b1, 0);
        b.connect_input(3, b1, 1);
        b.connect_to_output(b0, 0, 0);
        b.connect_to_output(b0, 1, 1);
        b.connect_to_output(b1, 0, 2);
        b.connect_to_output(b1, 1, 3);
        let cn = comparator(b.build().expect("valid"));
        assert!(!is_sorting_network_exhaustive(&cn));
    }

    #[test]
    fn depth_comparison_cww_equals_bitonic() {
        // The derived sorting network has exactly the bitonic sorter's
        // depth at every width (both are lgw(lgw+1)/2).
        for w in [4usize, 8, 16, 32, 64] {
            let ours = comparator(counting_network(w, w).expect("valid"));
            let bitonic = comparator(bitonic_counting_network(w).expect("valid"));
            assert_eq!(ours.depth(), bitonic.depth());
            let periodic = comparator(periodic_counting_network(w).expect("valid"));
            assert!(ours.depth() <= periodic.depth());
        }
    }
}
