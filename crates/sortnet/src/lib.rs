//! # sortnet — sorting networks derived from balancing networks
//!
//! Section 7 of the paper observes that substituting a comparator for each
//! balancer of a regular counting network yields a sorting network
//! (Aspnes, Herlihy & Shavit's isomorphism between counting and sorting).
//! Applied to `C(w, w)` this produces a new sorting network of depth
//! `O(lg²w)`. This crate implements:
//!
//! * [`ComparatorNetwork`] — a comparator-semantics view of any *regular*
//!   `(2,2)` balancing-network topology: each balancer routes the larger
//!   input to its first output wire and the smaller to its second;
//! * verification via the **0–1 principle** — exhaustive over all boolean
//!   inputs for small widths, randomized for larger ones;
//! * sorting of arbitrary `Ord` data by routing values through the network;
//! * the comparison baseline: the bitonic sorting network obtained from the
//!   bitonic counting network, and the classic odd–even transposition sort
//!   as a depth reference.
//!
//! "Sorted" here means **non-increasing** order, matching the step property
//! of token counts (larger counts on upper wires).

#![warn(missing_docs)]

pub mod comparator;
pub mod verify;

pub use comparator::ComparatorNetwork;
pub use verify::{is_sorting_network_exhaustive, is_sorting_network_randomized};
