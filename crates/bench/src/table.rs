//! A minimal Markdown table builder used by the experiment binaries.

use std::fmt::Write as _;

/// A simple Markdown table: a header row plus data rows, rendered with
/// `to_markdown`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match the header");
        self.rows.push(row);
    }

    /// The number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, width) in cells.iter().zip(widths) {
                let _ = write!(out, " {cell:<width$} |");
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        out.push('|');
        for width in &widths {
            let _ = write!(out, "{}|", "-".repeat(width + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(vec!["w", "depth"]);
        t.push_row(vec!["8", "6"]);
        t.push_row(vec!["16", "10"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| w "));
        assert!(md.contains("| 16"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }
}
