//! Ablation experiment — the two design choices called out in `DESIGN.md`.
//!
//! 1. Replace `M(t, w/2)` by a bitonic merger: the network still counts but
//!    its depth (and, at high concurrency, its contention) now grows with
//!    the output width `t`.
//! 2. Remove the ladder `L(w)`: the construction stops being a counting
//!    network.
//!
//! Run with: `cargo run --release -p bench --bin exp_ablation`

use bench::Table;
use counting::{
    counting_depth, counting_network, counting_network_bitonic_merger, counting_network_no_ladder,
};
use counting_sim::{measure_contention, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let w = 16usize;
    let n = 8 * w;
    let tokens_per_process: u64 = if quick { 10 } else { 60 };
    let m = tokens_per_process * n as u64;

    println!("## Ablation A — M(t, w/2) vs a bitonic merger inside C({w}, t), n = {n}\n");
    let mut table = Table::new(vec![
        "t",
        "depth C(w,t)",
        "depth bitonic-merge variant",
        "contention C(w,t)",
        "contention variant",
    ]);
    for p in [1usize, 2, 4, 8] {
        let t = w * p;
        let ours = counting_network(w, t).expect("valid");
        let variant = counting_network_bitonic_merger(w, t).expect("valid");
        let c_ours =
            measure_contention(&ours, n, m, SchedulerKind::RoundRobin, 1).amortized_contention;
        let c_variant =
            measure_contention(&variant, n, m, SchedulerKind::RoundRobin, 1).amortized_contention;
        table.push_row(vec![
            t.to_string(),
            ours.depth().to_string(),
            variant.depth().to_string(),
            format!("{c_ours:.1}"),
            format!("{c_variant:.1}"),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "C({w}, t) keeps depth {} for every t; the ablation is already deeper at t = w\n\
         (its merger costs lg t' instead of lg δ at every recursion level) and keeps\n\
         growing with t — the paper's difference merger is what keeps depth a function\n\
         of w alone, and the extra layers translate directly into extra stalls.\n",
        counting_depth(w)
    );

    println!("## Ablation B — removing the ladder L(w)\n");
    let mut table = Table::new(vec!["w", "t", "counting network?", "counterexample input"]);
    let mut rng = StdRng::seed_from_u64(1);
    for (w, t) in [(8usize, 8usize), (8, 16), (16, 16)] {
        let variant = counting_network_no_ladder(w, t).expect("builds");
        let cex =
            balnet::properties::counting_counterexample_randomized(&variant, 500, 16, &mut rng);
        table.push_row(vec![
            w.to_string(),
            t.to_string(),
            cex.is_none().to_string(),
            cex.map_or_else(|| "-".to_owned(), |c| format!("{c:?}")),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Without the ladder the difference of the two recursive halves is unbounded,\n\
         violating the contract of M(t, w/2): randomized search finds violating inputs\n\
         immediately."
    );
}
