//! Experiment E18 — the distributed counting cluster under simulated
//! faults: every cell of a node-count × fault-plan × churn-plan sweep
//! runs the block-lease protocol through the deterministic
//! discrete-event simulation ([`counting_cluster::run_sim`]) and checks
//! global uniqueness plus the exact-range invariant at quiescence. A
//! second axis replays the same protocol behind a *replicated*
//! coordinator (3 or 5 replicas, leader lease + quorum append) while
//! replica crashes and split-brain-shaped partitions fire.
//!
//! Everything in a cell — demand schedule, crash/restart/join/leave
//! plan, replica crash and partition windows, per-hop
//! drop/duplicate/delay decisions — derives from `--seed`, so the whole
//! sweep (including the JSON artifact, which carries no wall-clock
//! data) is byte-identical across runs: a failing cell *is* its replay
//! recipe.
//!
//! `--mutation <flag>` injects a calibration bug and inverts the gate:
//! the run fails unless the checker catches the mutation somewhere in
//! the sweep. CI runs every direction. `--trace-dir <dir>` re-runs each
//! broken cell with trace recording on and writes the replayable
//! counterexample trace there (nightly CI uploads them as artifacts).
//!
//! Run with: `cargo run --release -p bench --bin exp_cluster
//! [-- --quick] [--json <path>] [--seed <u64>] [--mutation <flag>]
//! [--trace-dir <dir>]`

use bench::Table;
use counting_cluster::{run_sim, ClusterSimConfig, Mutation};
use counting_sim::des::FaultPlan;
use serde::Serialize;

/// Default `--seed`: every cell's demand, churn and fault streams
/// derive from it (each cell salts it with its own index).
const DEFAULT_SEED: u64 = 0xE18;

/// One fault level of the sweep.
struct FaultLevel {
    label: &'static str,
    plan: FaultPlan,
}

/// One churn level of the sweep.
struct ChurnLevel {
    label: &'static str,
    crashes: u64,
    joins: u64,
    leaves: u64,
}

/// The whole JSON document. Deliberately free of wall-clock and host
/// data: two runs under one seed must serialize byte-identically (the
/// smoke suite pins this).
#[derive(Debug, Serialize)]
struct ClusterJson {
    seed: u64,
    mutation: Option<String>,
    reports: Vec<ClusterCellReport>,
}

/// One sweep cell's outcome.
#[derive(Debug, Serialize)]
struct ClusterCellReport {
    workers: u64,
    /// Coordinator replicas backing the cell (1 = the single durable
    /// coordinator, 3/5 = the replicated quorum log).
    replicas: u64,
    fault: String,
    churn: String,
    drop_per_mille: u32,
    dup_per_mille: u32,
    crashes: u64,
    restarts: u64,
    joins: u64,
    leaves: u64,
    replica_crashes: u64,
    replica_restarts: u64,
    severed_hops: u64,
    handed: u64,
    unique: u64,
    dropped_hops: u64,
    duplicated_hops: u64,
    converged: bool,
    final_tick: u64,
    /// Hand-outs per 1000 virtual ticks — a *deterministic* rate, so it
    /// can live in the recorded trajectory without host noise.
    values_per_kilotick: Option<f64>,
    violations: Vec<String>,
}

/// Parses a `--mutation` flag strictly: an unknown name is an error
/// naming every valid flag, not a panic backtrace.
fn parse_mutation(flag: &str) -> Result<Mutation, String> {
    Mutation::parse(flag).ok_or_else(|| {
        let valid: Vec<&str> = Mutation::ALL.iter().map(|m| m.flag()).collect();
        format!("unknown --mutation {flag:?}; valid mutations: {}", valid.join(" | "))
    })
}

/// Output sinks shared by every sweep cell: the human table, the JSON
/// report rows, and the optional counterexample trace directory.
struct CellSink<'a> {
    trace_dir: Option<&'a str>,
    table: &'a mut Table,
    reports: &'a mut Vec<ClusterCellReport>,
}

/// Runs one sweep cell: simulate, print the table row and the
/// machine-readable aggregate line, record the JSON report, and — when
/// the cell is broken and `--trace-dir` was given — write the
/// replayable counterexample trace.
fn run_cell(
    label: &str,
    fault_label: &str,
    churn_label: &str,
    config: &ClusterSimConfig,
    cell_seed: u64,
    sink: &mut CellSink<'_>,
) {
    let report = run_sim(config, cell_seed);
    let rate =
        (report.final_tick > 0).then(|| report.handed as f64 * 1_000.0 / report.final_tick as f64);
    let status = if report.violations.is_empty() && report.converged {
        "ok".to_owned()
    } else if report.converged {
        format!("VIOLATED({})", report.violations.len())
    } else {
        "STUCK".to_owned()
    };
    let broken = !report.violations.is_empty() || !report.converged;
    sink.table.push_row(vec![
        label.to_owned(),
        report.handed.to_string(),
        report.stats.dropped.to_string(),
        report.stats.duplicated.to_string(),
        format!(
            "{}/{}/{}/{}",
            report.stats.crashes, report.stats.restarts, report.stats.joins, report.stats.leaves
        ),
        rate.map_or_else(|| "n/a".to_owned(), |r| format!("{r:.1}")),
        status,
    ]);
    println!(
        "E18-aggregate cell={label} seed={cell_seed} handed={} unique={} \
         dropped={} duplicated={} severed={} converged={} violations={}",
        report.handed,
        report.unique,
        report.stats.dropped,
        report.stats.duplicated,
        report.stats.severed,
        report.converged,
        report.violations.len()
    );
    if broken {
        if let Some(dir) = sink.trace_dir {
            // Re-run with trace recording on: the trace layer draws no
            // randomness, so the replay is byte-identical to the run
            // that just failed.
            let traced = run_sim(&ClusterSimConfig { record_trace: true, ..*config }, cell_seed);
            let trace = traced.trace.expect("record_trace was set");
            let file = format!("{dir}/E18-{}-seed{cell_seed}.json", label.replace('/', "_"));
            std::fs::create_dir_all(dir).expect("create --trace-dir");
            std::fs::write(&file, serde_json::to_string(&trace).expect("trace serializes"))
                .expect("write counterexample trace");
            println!("counterexample trace written to {file}");
        }
    }
    sink.reports.push(ClusterCellReport {
        workers: config.workers,
        replicas: config.replicas,
        fault: fault_label.to_owned(),
        churn: churn_label.to_owned(),
        drop_per_mille: config.fault.drop_per_mille,
        dup_per_mille: config.fault.dup_per_mille,
        crashes: report.stats.crashes,
        restarts: report.stats.restarts,
        joins: report.stats.joins,
        leaves: report.stats.leaves,
        replica_crashes: report.stats.replica_crashes,
        replica_restarts: report.stats.replica_restarts,
        severed_hops: report.stats.severed,
        handed: report.handed,
        unique: report.unique,
        dropped_hops: report.stats.dropped,
        duplicated_hops: report.stats.duplicated,
        converged: report.converged,
        final_tick: report.final_tick,
        values_per_kilotick: rate,
        violations: report.violations,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());
    let seed: u64 = args.iter().position(|a| a == "--seed").map_or(DEFAULT_SEED, |i| {
        args.get(i + 1).expect("--seed requires a value").parse().expect("--seed takes a u64")
    });
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace-dir")
        .map(|i| args.get(i + 1).expect("--trace-dir requires a path").clone());
    let mutation = args.iter().position(|a| a == "--mutation").map(|i| {
        let flag = args.get(i + 1).expect("--mutation requires a value");
        parse_mutation(flag).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        })
    });

    let worker_counts: &[u64] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let fault_levels = [
        FaultLevel { label: "reliable", plan: FaultPlan::reliable(1) },
        FaultLevel {
            label: "lossy",
            plan: FaultPlan { drop_per_mille: 50, dup_per_mille: 30, min_delay: 1, max_delay: 20 },
        },
        FaultLevel {
            label: "chaos",
            plan: FaultPlan { drop_per_mille: 120, dup_per_mille: 80, min_delay: 1, max_delay: 40 },
        },
    ];
    let fault_levels: &[FaultLevel] = if quick { &fault_levels[1..] } else { &fault_levels };
    let churn_levels = [
        ChurnLevel { label: "calm", crashes: 0, joins: 0, leaves: 0 },
        ChurnLevel { label: "churny", crashes: 2, joins: 1, leaves: 1 },
    ];
    let (demand_per_node, horizon) = if quick { (60, 3_000) } else { (200, 8_000) };
    // The replicated-coordinator axis: fixed 4 workers under the lossy
    // (and, in the full sweep, chaos) plan with worker churn, one
    // replica crash/restart and split-brain-shaped partition windows.
    let replica_counts: &[u64] = &[3, 5];
    let replica_faults: &[&FaultLevel] =
        if quick { &[&fault_levels[0]] } else { &[&fault_levels[1], &fault_levels[2]] };

    println!(
        "## E18 — distributed counting cluster, block-lease protocol under a \
         deterministic fault-injecting simulation (seed {seed}{})\n",
        mutation.map_or_else(String::new, |m| format!(", mutation {}", m.flag()))
    );

    let mut table = Table::new(vec![
        "cell",
        "handed",
        "dropped",
        "duplicated",
        "churn c/r/j/l",
        "values/ktick",
        "status",
    ]);
    let mut reports = Vec::new();
    let mut sink =
        CellSink { trace_dir: trace_dir.as_deref(), table: &mut table, reports: &mut reports };
    let mut cell_index = 0u64;
    for &workers in worker_counts {
        for fault in fault_levels {
            for churn in &churn_levels {
                let config = ClusterSimConfig {
                    workers,
                    demand_per_node,
                    horizon,
                    fault: fault.plan,
                    crashes: churn.crashes,
                    joins: churn.joins,
                    leaves: churn.leaves,
                    mutation,
                    ..ClusterSimConfig::default()
                };
                // Each cell gets its own deterministic sub-seed.
                let cell_seed = seed.wrapping_add(cell_index.wrapping_mul(0x9E37_79B9));
                cell_index += 1;
                let label = format!("{}n/{}/{}", workers, fault.label, churn.label);
                run_cell(&label, fault.label, churn.label, &config, cell_seed, &mut sink);
            }
        }
    }
    // Replica cells come after every legacy cell so the legacy cells
    // keep their historical sub-seed indices.
    for &replicas in replica_counts {
        for fault in replica_faults {
            let config = ClusterSimConfig {
                workers: 4,
                demand_per_node,
                horizon,
                fault: fault.plan,
                crashes: 2,
                joins: 1,
                leaves: 1,
                replicas,
                replica_crashes: 1,
                partitions: 3,
                mutation,
                ..ClusterSimConfig::default()
            };
            let cell_seed = seed.wrapping_add(cell_index.wrapping_mul(0x9E37_79B9));
            cell_index += 1;
            let label = format!("4n/r{}/{}/churny", replicas, fault.label);
            run_cell(&label, fault.label, "churny", &config, cell_seed, &mut sink);
        }
    }
    println!("\n{}", table.to_markdown());
    println!(
        "Notes: every value handed out anywhere in the cluster is checked online for\n\
         global uniqueness, and at quiescence the coordinator's truncated grants plus\n\
         its free-list must tile 0..cursor exactly — across message loss, duplication,\n\
         reordering, crash-restarts (watermark recovery) and membership churn. The\n\
         `rN` cells run the same protocol behind N coordinator replicas (leader lease\n\
         + quorum append) while replica crashes and leader-isolating partitions fire.\n\
         The rate column is per *virtual* kilotick: deterministic, host-independent.\n"
    );

    let doc = ClusterJson { seed, mutation: mutation.map(|m| m.flag().to_owned()), reports };
    let json = serde_json::to_string(&doc).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    let broken: Vec<&ClusterCellReport> =
        doc.reports.iter().filter(|r| !r.violations.is_empty() || !r.converged).collect();
    match mutation {
        None => {
            // Correctness gate: the clean protocol must survive every
            // cell of the sweep.
            if !broken.is_empty() {
                eprintln!("error: {} cell(s) violated the global counting contract", broken.len());
                std::process::exit(1);
            }
        }
        Some(m) => {
            // Calibration gate, inverted: the injected bug must be
            // caught somewhere, or the checker has no teeth.
            if broken.is_empty() {
                eprintln!(
                    "error: mutation {} survived all {} cells — the checker has no teeth",
                    m.flag(),
                    doc.reports.len()
                );
                std::process::exit(1);
            }
            println!(
                "mutation {} caught in {}/{} cells",
                m.flag(),
                broken.len(),
                doc.reports.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_mutation;
    use counting_cluster::Mutation;

    #[test]
    fn known_mutations_parse() {
        for mutation in Mutation::ALL {
            assert_eq!(parse_mutation(mutation.flag()), Ok(mutation));
        }
    }

    #[test]
    fn unknown_mutation_error_lists_every_valid_flag() {
        let err = parse_mutation("no-such-bug").expect_err("must be rejected");
        assert!(err.contains("no-such-bug"), "{err}");
        for mutation in Mutation::ALL {
            assert!(err.contains(mutation.flag()), "{} not listed in: {err}", mutation.flag());
        }
    }
}
