//! Experiment E8 — the sorting-network byproduct (Section 7).
//!
//! Derives the comparator network from `C(w, w)`, verifies it (0–1
//! principle, exhaustively up to width 16 and randomized beyond), and
//! tabulates depth and comparator count against the bitonic and periodic
//! sorters.
//!
//! Run with: `cargo run --release -p bench --bin exp_sorting`

use baselines::{bitonic_counting_network, periodic_counting_network};
use bench::Table;
use counting::counting_network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sortnet::{is_sorting_network_exhaustive, is_sorting_network_randomized, ComparatorNetwork};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rng = StdRng::seed_from_u64(99);

    println!("## E8 — sorting networks obtained by the balancer→comparator substitution\n");
    let mut table = Table::new(vec![
        "w",
        "C(w,w) depth",
        "C(w,w) comparators",
        "Bitonic depth",
        "Periodic depth",
        "verified",
    ]);
    for k in 1..=6usize {
        let w = 1 << k;
        let ours = ComparatorNetwork::from_balancing(counting_network(w, w).expect("valid"))
            .expect("regular");
        let bitonic =
            ComparatorNetwork::from_balancing(bitonic_counting_network(w).expect("valid"))
                .expect("regular");
        let periodic =
            ComparatorNetwork::from_balancing(periodic_counting_network(w).expect("valid"))
                .expect("regular");
        let verified = if w <= 16 && !quick {
            is_sorting_network_exhaustive(&ours)
        } else {
            is_sorting_network_randomized(&ours, if quick { 50 } else { 500 }, &mut rng)
        };
        table.push_row(vec![
            w.to_string(),
            ours.depth().to_string(),
            ours.size().to_string(),
            bitonic.depth().to_string(),
            periodic.depth().to_string(),
            verified.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
}
