//! Experiment E15 — the multi-tenant counter service under skewed
//! serving traffic: 64 tenants × 8 threads drive a [`CounterService`]
//! per backend configuration, with tenant popularity drawn from a Zipf
//! distribution, mixed batch sizes, and a churn thread evicting idle
//! tenants the whole time.
//!
//! Every tenant's hand-out is checked against the Fetch&Increment
//! contract — unique and exactly `0..watermark` at quiescence, across
//! evictions — via one `ValueBitmap` per tenant; the table reports
//! per-backend aggregate and hot/cold tenant rates, and the JSON
//! artifact carries the full per-tenant breakdown.
//!
//! Run with: `cargo run --release -p bench --bin exp_service
//! [-- --quick] [--json <path>] [--seed <u64>]`

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use bench::{kilo_rate, Table};
use counting_runtime::{rate_over, MeasuredWindow, SharedCounter, ValueBitmap, WaitStrategy};
use counting_service::{Backend, CounterService, ServiceConfig};
use serde::Serialize;

/// Largest batch size drawn by the mixed-size stream.
const MAX_BATCH: usize = 4;
/// Default `--seed`: every deterministic stream of the run — the
/// per-thread batch-size sequences *and* the per-thread tenant-pick RNGs
/// — derives from this one seed, so a trajectory cell is reproducible
/// from its recorded seed alone.
const DEFAULT_SEED: u64 = 0xE15;

/// The whole JSON document: the seed plus one report per backend.
#[derive(Debug, Serialize)]
struct ServiceJson {
    seed: u64,
    reports: Vec<BackendReport>,
}

/// One backend row of the matrix.
#[derive(Debug, Serialize)]
struct BackendReport {
    backend: String,
    tenants: usize,
    threads: usize,
    ops_per_thread: u64,
    total_values: u64,
    elapsed_secs: f64,
    /// `None` when the measured window was degenerate (see
    /// `counting_runtime::MIN_MEASURED_WINDOW`).
    aggregate_values_per_second: Option<f64>,
    evictions: u64,
    duplicates: u64,
    out_of_range: u64,
    range_violations: u64,
    tenant_stats: Vec<TenantStat>,
}

/// Per-tenant traffic share and rate.
#[derive(Debug, Serialize)]
struct TenantStat {
    tenant: String,
    values: u64,
    /// `None` when the measured window was degenerate.
    values_per_second: Option<f64>,
}

/// Increments the shared finished-worker count on drop — *including* an
/// unwinding drop, so a panicking worker still releases the churn
/// thread's loop condition and the binary fails instead of hanging.
struct FinishedGuard<'a>(&'a AtomicUsize);

impl Drop for FinishedGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

/// xorshift64* — a tiny deterministic per-thread RNG for tenant picks.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Cumulative Zipf(1) weights over `n` tenants: tenant `i` is picked
/// with probability proportional to `1 / (i + 1)` — the skewed
/// popularity of real serving traffic (a few hot tenants, a long cold
/// tail).
fn zipf_cumulative(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|i| {
            acc += 1.0 / (i + 1) as f64;
            acc
        })
        .collect()
}

/// Draws a tenant index from the cumulative weight table.
fn pick_tenant(cumulative: &[f64], rng: &mut u64) -> usize {
    let total = *cumulative.last().expect("non-empty");
    // 53 uniform mantissa bits, scaled into the cumulative range.
    let r = (xorshift(rng) >> 11) as f64 / (1u64 << 53) as f64 * total;
    cumulative.partition_point(|&c| c <= r).min(cumulative.len() - 1)
}

/// Drives one service configuration through the skewed-tenant workload
/// and verifies every tenant's stream.
fn run_backend(
    config: ServiceConfig,
    tenants: usize,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> BackendReport {
    let service = CounterService::new(config);
    let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i:03}")).collect();
    let cumulative = zipf_cumulative(tenants);

    // Upper bound on any single tenant's value count: the whole run.
    let capacity = threads as u64 * ops_per_thread * MAX_BATCH as u64;
    let bitmaps: Vec<ValueBitmap> = (0..tenants).map(|_| ValueBitmap::new(capacity)).collect();
    let duplicates: Vec<AtomicU64> = (0..tenants).map(|_| AtomicU64::new(0)).collect();
    let out_of_range = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let finished = AtomicUsize::new(0);
    // Worker-side window timestamps: coordinator-side timing would
    // under-count whenever the OS runs the workers to completion before
    // rescheduling the coordinator (routine on an oversubscribed box).
    let window = MeasuredWindow::new(threads);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (service, names, cumulative) = (&service, &names, &cumulative);
            let (bitmaps, duplicates, out_of_range) = (&bitmaps, &duplicates, &out_of_range);
            let (window, finished) = (&window, &finished);
            scope.spawn(move || {
                let _finished = FinishedGuard(finished);
                // Both per-thread streams derive from the one --seed.
                let mut rng = (seed ^ 0x9E37_79B9_7F4A_7C15u64).wrapping_mul(tid as u64 + 1) | 1;
                let mut sizes = counting_sim::batch_size_sequence(seed, tid as u64, MAX_BATCH);
                let mut scratch = Vec::with_capacity(MAX_BATCH);
                window.enter();
                for _ in 0..ops_per_thread {
                    let tenant = pick_tenant(cumulative, &mut rng);
                    let k = sizes.next().expect("the size stream is infinite");
                    // Fetch-per-op: the registry read path *is* part of
                    // the serving hot path being measured. The handle is
                    // dropped right after the operation, opening the
                    // eviction window the churn thread probes.
                    let counter = service.get_or_create(&names[tenant]);
                    scratch.clear();
                    counter.next_batch(tid, k, &mut scratch);
                    // Relaxed tallies: monotone statistics, never a
                    // control input; read back only after the join.
                    for &value in &scratch {
                        if value >= capacity {
                            out_of_range.fetch_add(1, Ordering::Relaxed);
                        } else if !bitmaps[tenant].mark(value) {
                            duplicates[tenant].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                window.exit();
            });
        }
        // Churn thread: sweep idle tenants for the whole run — eviction
        // racing live traffic must never fork a tenant's stream.
        let (service, finished, evictions) = (&service, &finished, &evictions);
        scope.spawn(move || {
            while finished.load(Ordering::Acquire) < threads {
                // Relaxed: monotone statistic, never a control input.
                evictions.fetch_add(service.evict_idle() as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
        });
    });
    let elapsed = window.elapsed();

    // Quiescent verification: each tenant's hand-out must be exactly
    // `0..watermark` — dense across however many evict/revive cycles the
    // churn thread managed to land.
    let mut range_violations = 0u64;
    let mut tenant_stats = Vec::with_capacity(tenants);
    let mut total_values = 0u64;
    for (i, name) in names.iter().enumerate() {
        let watermark = service.watermark(name);
        total_values += watermark;
        let marked = capacity - bitmaps[i].missing();
        let first_gap = bitmaps[i].missing_values(1);
        let dense =
            marked == watermark && (watermark == capacity || first_gap.first() == Some(&watermark));
        if !dense {
            range_violations += 1;
            eprintln!(
                "tenant {name}: watermark {watermark}, marked {marked}, first gap {first_gap:?}"
            );
        }
        tenant_stats.push(TenantStat {
            tenant: name.clone(),
            values: watermark,
            values_per_second: rate_over(watermark, elapsed),
        });
    }

    BackendReport {
        backend: config.label(),
        tenants,
        threads,
        ops_per_thread,
        total_values,
        elapsed_secs: elapsed.as_secs_f64(),
        aggregate_values_per_second: rate_over(total_values, elapsed),
        // Relaxed loads: post-join quiescent reads.
        evictions: evictions.load(Ordering::Relaxed),
        duplicates: duplicates.iter().map(|d| d.load(Ordering::Relaxed)).sum::<u64>(),
        out_of_range: out_of_range.load(Ordering::Relaxed),
        range_violations,
        tenant_stats,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());
    let seed: u64 = args.iter().position(|a| a == "--seed").map_or(DEFAULT_SEED, |i| {
        args.get(i + 1).expect("--seed requires a value").parse().expect("--seed takes a u64")
    });

    let tenants = 64usize;
    let threads = 8usize;
    let ops_per_thread: u64 = if quick { 192 } else { 6_144 };

    let network = |elimination: bool, strategy: WaitStrategy| ServiceConfig {
        backend: Backend::Network,
        width: 16,
        elimination,
        strategy,
        ..ServiceConfig::default()
    };
    let mut configs = vec![
        network(false, WaitStrategy::SpinYield),
        network(true, WaitStrategy::SpinYield),
        network(true, WaitStrategy::Park),
        ServiceConfig { backend: Backend::Central, elimination: false, ..ServiceConfig::default() },
    ];
    if !quick {
        configs.push(ServiceConfig {
            backend: Backend::Diffracting,
            width: 16,
            elimination: true,
            strategy: WaitStrategy::SpinYield,
            ..ServiceConfig::default()
        });
    }

    println!(
        "## E15 — multi-tenant counter service, {tenants} tenants × {threads} threads, \
         Zipf-skewed popularity, mixed batches (1..={MAX_BATCH}), idle-tenant churn\n"
    );

    let mut table = Table::new(vec![
        "backend",
        "values/s",
        "hot tenant /s",
        "median /s",
        "cold tenant /s",
        "evictions",
        "status",
    ]);
    let mut reports = Vec::new();
    for config in configs {
        let report = run_backend(config, tenants, threads, ops_per_thread, seed);
        // Degenerate-window tenants (None) are excluded from the skew
        // percentiles rather than counted as zero-rate.
        let mut rates: Vec<f64> =
            report.tenant_stats.iter().filter_map(|t| t.values_per_second).collect();
        rates.sort_by(|a, b| a.total_cmp(b));
        let skew_cell = |rate: Option<f64>, decimals: usize| {
            rate.map_or_else(|| "n/a".to_owned(), |r| format!("{:.decimals$}k", r / 1_000.0))
        };
        let broken =
            report.duplicates > 0 || report.out_of_range > 0 || report.range_violations > 0;
        table.push_row(vec![
            report.backend.clone(),
            kilo_rate(report.aggregate_values_per_second),
            skew_cell(rates.last().copied(), 1),
            skew_cell(rates.get(rates.len() / 2).copied(), 1),
            skew_cell(rates.first().copied(), 2),
            report.evictions.to_string(),
            if broken {
                format!(
                    "BROKEN(dup {}, oor {}, range {})",
                    report.duplicates, report.out_of_range, report.range_violations
                )
            } else {
                "ok".to_owned()
            },
        ]);
        println!(
            "E15-aggregate backend={} rate={} evictions={} duplicates={} out_of_range={} \
             range_violations={}",
            report.backend,
            report
                .aggregate_values_per_second
                .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.0}")),
            report.evictions,
            report.duplicates,
            report.out_of_range,
            report.range_violations
        );
        reports.push(report);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "Notes: every tenant stream is drawn through contiguous block reservations, so\n\
         each tenant's hand-out must tile 0..watermark exactly — across idle-tenant\n\
         evictions, whose watermark hand-over is what the churn thread exercises. The\n\
         hot/median/cold columns show the Zipf skew surviving into per-tenant rates.\n"
    );

    let doc = ServiceJson { seed, reports };
    let json = serde_json::to_string(&doc).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    // Correctness gate: any duplicate or non-dense tenant stream fails
    // the process (CI runs this binary in the smoke job), after the JSON
    // was written for forensics.
    let broken = doc
        .reports
        .iter()
        .filter(|r| r.duplicates > 0 || r.out_of_range > 0 || r.range_violations > 0)
        .count();
    if broken > 0 {
        eprintln!("error: {broken} backend run(s) violated the per-tenant counting contract");
        std::process::exit(1);
    }
}
