//! Experiment E2 — depth tables (Theorem 4.1, Lemma 3.1, Lemma 5.1).
//!
//! Prints the depth of every construction across widths and verifies that
//! the built topologies match the closed-form formulas. The key fact of the
//! paper: `depth(C(w, t))` does not depend on `t`.
//!
//! Run with: `cargo run --release -p bench --bin exp_depth`

use baselines::{bitonic_counting_network, diffracting_tree, periodic_counting_network};
use bench::Table;
use counting::{
    bitonic_depth, counting_depth, counting_network, merger_depth, merging_network, periodic_depth,
};

fn main() {
    println!("## E2a — depth of C(w, t) for several output widths (must be t-independent)\n");
    let mut t1 = Table::new(vec!["w", "t=w", "t=2w", "t=w·lgw", "t=8w", "formula (lg²w+lgw)/2"]);
    for k in 1..=7usize {
        let w = 1 << k;
        let lgw = k.max(1);
        let depth_of = |t: usize| counting_network(w, t).expect("valid").depth().to_string();
        t1.push_row(vec![
            w.to_string(),
            depth_of(w),
            depth_of(2 * w),
            depth_of(w * lgw),
            depth_of(8 * w),
            counting_depth(w).to_string(),
        ]);
    }
    println!("{}", t1.to_markdown());

    println!("## E2b — depth comparison against the baselines\n");
    let mut t2 = Table::new(vec![
        "w",
        "C(w,·) depth",
        "Bitonic[w]",
        "Periodic[w]",
        "DiffTree[w]",
        "bitonic formula",
        "periodic formula",
    ]);
    for k in 1..=7usize {
        let w = 1 << k;
        t2.push_row(vec![
            w.to_string(),
            counting_network(w, w).expect("valid").depth().to_string(),
            bitonic_counting_network(w).expect("valid").depth().to_string(),
            periodic_counting_network(w).expect("valid").depth().to_string(),
            diffracting_tree(w).expect("valid").depth().to_string(),
            bitonic_depth(w).to_string(),
            periodic_depth(w).to_string(),
        ]);
    }
    println!("{}", t2.to_markdown());

    println!("## E2c — merging network depth lg δ, independent of t (Lemma 3.1)\n");
    let mut t3 = Table::new(vec!["t", "δ", "depth(M(t,δ))", "lg δ", "balancers"]);
    for &(t, d) in
        &[(8usize, 2usize), (8, 4), (16, 4), (16, 8), (32, 8), (64, 16), (64, 32), (128, 16)]
    {
        let m = merging_network(t, d).expect("valid");
        t3.push_row(vec![
            t.to_string(),
            d.to_string(),
            m.depth().to_string(),
            merger_depth(d).to_string(),
            m.num_balancers().to_string(),
        ]);
    }
    println!("{}", t3.to_markdown());

    println!("## E2d — size (number of balancers): the price of a wide output\n");
    let mut t4 = Table::new(vec!["w", "C(w,w)", "C(w,w·lgw)", "Bitonic[w]", "Periodic[w]"]);
    for k in 2..=7usize {
        let w = 1 << k;
        t4.push_row(vec![
            w.to_string(),
            counting_network(w, w).expect("valid").num_balancers().to_string(),
            counting_network(w, w * k).expect("valid").num_balancers().to_string(),
            bitonic_counting_network(w).expect("valid").num_balancers().to_string(),
            periodic_counting_network(w).expect("valid").num_balancers().to_string(),
        ]);
    }
    println!("{}", t4.to_markdown());
}
