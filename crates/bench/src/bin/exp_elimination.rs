//! Experiment E14 — the elimination layer under mixed batch sizes: every
//! counter of the runtime matrix is driven at 8 threads through four
//! batching regimes — uniform `next_batch` on the raw counter, uniform
//! and mixed through the elimination arena, and mixed on the raw counter
//! (the configuration whose stride reservations are *expected* to leave
//! gaps, demonstrating the caveat the layer removes).
//!
//! A second table (E14b) compares the arena statistics measured on real
//! hardware (collision rate, combining factor) against the
//! schedule-controlled prediction of `counting-sim`'s arena model, which
//! replays the *same* deterministic batch-size streams.
//!
//! A third table (E14c) compares the **waiting strategies**: the full
//! 4-counter × 6-scenario × 3-strategy matrix of mixed-batch stress runs,
//! each cell reporting the arena merge rate. On a box whose worker
//! threads outnumber its cpus, `park` is the strategy that makes
//! rendezvous land — the machine-readable `E14c-aggregate` lines (and the
//! `E14c-oversubscribed` marker) let the smoke test gate exactly that.
//!
//! Run with: `cargo run --release -p bench --bin exp_elimination
//! [-- --quick] [--json <path>] [--strategy <spin|spin-yield|park>]
//! [--seed <u64>]`

use bench::{kilo_rate, Table};
use counting::counting_network;
use counting_runtime::{
    run_stress, Batching, BlockReserve, CentralCounter, DiffractingCounter, EliminationConfig,
    EliminationCounter, LockCounter, NetworkCounter, Scenario, StressConfig, StressReport,
    WaitStrategy,
};
use counting_sim::{simulate_arena, ArenaConfig, ArenaReport};
use serde::Serialize;

const THREADS: usize = 8;
const UNIFORM_K: usize = 8;
const MAX_K: usize = 16;
/// Default `--seed` of the deterministic batch-size streams (also fed to
/// the arena model so E14b compares like against like).
const DEFAULT_SEED: u64 = 0xE11A;
/// Arena geometry used for every wrapped counter in this experiment.
const SLOTS: usize = 4;
const SPIN: usize = 16;
const PROBE: usize = 2;

/// Arena statistics measured on one real-hardware mixed-batch run.
#[derive(Debug, Clone, Serialize)]
struct MeasuredArena {
    counter: String,
    collisions: u64,
    fallbacks: u64,
    collision_rate: f64,
    combining_factor: f64,
}

/// One cell of the E14c strategy matrix.
#[derive(Debug, Clone, Serialize)]
struct StrategyCell {
    counter: String,
    scenario: String,
    strategy: String,
    merge_rate: f64,
    exact_range: bool,
}

/// Aggregate merge rate of one strategy over the whole E14c matrix.
#[derive(Debug, Clone, Serialize)]
struct StrategyAggregate {
    strategy: String,
    merge_rate: f64,
}

/// Everything the experiment emits as JSON.
#[derive(Debug, Serialize)]
struct EliminationJson {
    seed: u64,
    strategy: String,
    oversubscribed: bool,
    stress: Vec<StressReport>,
    arena_measured: Vec<MeasuredArena>,
    arena_model: ArenaReport,
    strategy_matrix: Vec<StrategyCell>,
    strategy_aggregates: Vec<StrategyAggregate>,
}

/// The four batching regimes of one E14 matrix row.
struct RowOutcome {
    rates: Vec<String>,
    reports: Vec<StressReport>,
    arena: MeasuredArena,
}

fn arena_config(strategy: WaitStrategy) -> EliminationConfig {
    EliminationConfig { slots: SLOTS, spin: SPIN, probe: PROBE, strategy, ..Default::default() }
}

fn steady(batch: Batching, ops_per_thread: u64) -> StressConfig {
    StressConfig {
        threads: THREADS,
        ops_per_thread,
        batch,
        scenario: Scenario::Steady,
        record_tokens: false,
    }
}

fn rate_cell(report: &StressReport, gaps_expected: bool) -> String {
    let rate = kilo_rate(report.values_per_second);
    if report.is_exact_range() {
        rate
    } else if gaps_expected && report.duplicates == 0 {
        // Raw stride reservations under mixed sizes: gaps — and their
        // mirror image, values beyond `m` — are the documented behaviour
        // this experiment demonstrates (see the JSON report's
        // `first_missing`). Duplicates would be a genuine failure.
        format!("{rate} (gaps: {})", report.missing)
    } else {
        format!(
            "{rate} BROKEN(dup {}, gap {}, oor {})",
            report.duplicates, report.missing, report.out_of_range
        )
    }
}

/// Runs the four E14 regimes for one counter. `make` produces a fresh raw
/// counter per run (a counter hands out each value once);
/// `gaps_expected` marks counters whose raw mixed-size runs legitimately
/// gap (stride reservations: network and diffracting-tree counters).
fn run_subject<C, F>(
    name: &str,
    make: F,
    ops_per_thread: u64,
    gaps_expected: bool,
    strategy: WaitStrategy,
    seed: u64,
) -> RowOutcome
where
    C: BlockReserve,
    F: Fn() -> C,
{
    let uniform = Batching::Fixed(UNIFORM_K);
    let mixed = Batching::Mixed { max_k: MAX_K, seed };
    let mut rates = Vec::new();
    let mut reports = Vec::new();

    // Uniform k, raw counter — the PR 2 fast path and the baseline the
    // elimination path must not fall behind.
    let report = run_stress(&make(), &steady(uniform, ops_per_thread));
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Uniform k through the arena.
    let wrapped = EliminationCounter::with_config(make(), arena_config(strategy));
    let report = run_stress(&wrapped, &steady(uniform, ops_per_thread));
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Mixed k through the arena — the regime the layer exists for. Keep
    // this counter's arena statistics for the model comparison.
    let wrapped = EliminationCounter::with_config(make(), arena_config(strategy));
    let report = run_stress(&wrapped, &steady(mixed, ops_per_thread));
    let ops = THREADS as u64 * ops_per_thread;
    let collisions = wrapped.collisions();
    let fallbacks = wrapped.fallbacks();
    let arena = MeasuredArena {
        counter: name.to_owned(),
        collisions,
        fallbacks,
        collision_rate: collisions as f64 / ops as f64,
        combining_factor: ops as f64 / (collisions / 2 + fallbacks).max(1) as f64,
    };
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Mixed k on the raw counter — the documented caveat.
    let report = run_stress(&make(), &steady(mixed, ops_per_thread));
    rates.push(rate_cell(&report, gaps_expected));
    reports.push(report);

    RowOutcome { rates, reports, arena }
}

/// The six stress scenarios of the E14c strategy matrix.
fn scenarios() -> [Scenario; 6] {
    [
        Scenario::Steady,
        Scenario::Bursty { phases: 4 },
        Scenario::Skewed { groups: 2 },
        Scenario::Churn { stagger_micros: 100 },
        Scenario::Oscillating { pulses: 4 },
        Scenario::Pinned { nodes: 2 },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());
    let strategy: WaitStrategy = args
        .iter()
        .position(|a| a == "--strategy")
        .map(|i| args.get(i + 1).expect("--strategy requires a value"))
        .map_or(Ok(WaitStrategy::SpinYield), |s| s.parse())
        .unwrap_or_else(|err| panic!("{err}"));
    let seed: u64 = args.iter().position(|a| a == "--seed").map_or(DEFAULT_SEED, |i| {
        args.get(i + 1).expect("--seed requires a value").parse().expect("--seed takes a u64")
    });

    let w = 16usize;
    // Total traversals of the uniform raw runs (threads × ops) stay a
    // multiple of the output width, so their stride reservations tile.
    let ops_per_thread: u64 = if quick { 240 } else { 6_000 };
    let net = counting_network(w, w).expect("valid");

    println!(
        "## E14 — elimination layer under mixed batch sizes (values/s), {THREADS} threads, \
         {ops_per_thread} ops/thread, arena {SLOTS} slots × spin {SPIN}, strategy {strategy}\n"
    );

    let mut table = Table::new(vec![
        "counter".to_owned(),
        format!("uniform k={UNIFORM_K} raw"),
        format!("uniform k={UNIFORM_K} elim"),
        format!("mixed ≤{MAX_K} elim"),
        format!("mixed ≤{MAX_K} raw"),
    ]);
    let mut stress: Vec<StressReport> = Vec::new();
    let mut measured: Vec<MeasuredArena> = Vec::new();
    let mut unexpected_broken = 0usize;

    let outcomes = [
        run_subject(
            &format!("C({w},{w})"),
            || NetworkCounter::new("C(16,16)", &net),
            ops_per_thread,
            true,
            strategy,
            seed,
        ),
        run_subject(
            &format!("prism DiffTree[{w}]"),
            || DiffractingCounter::new(w, 8, 128),
            ops_per_thread,
            true,
            strategy,
            seed,
        ),
        run_subject(
            "central fetch_add",
            CentralCounter::new,
            ops_per_thread,
            false,
            strategy,
            seed,
        ),
        run_subject("mutex counter", LockCounter::new, ops_per_thread, false, strategy, seed),
    ];
    for outcome in outcomes {
        unexpected_broken += outcome.rates.iter().filter(|cell| cell.contains("BROKEN")).count();
        let mut row = vec![outcome.arena.counter.clone()];
        row.extend(outcome.rates);
        table.push_row(row);
        stress.extend(outcome.reports);
        measured.push(outcome.arena);
    }
    println!("{}", table.to_markdown());

    // The deterministic arena model replays the same batch-size streams;
    // spin_rounds is the model's coarse analogue of the runtime's spin
    // bound (protocol rounds, not loop iterations), and the park flag
    // mirrors the selected waiting strategy (parked waiters skip rounds).
    let model = simulate_arena(&ArenaConfig {
        processes: THREADS,
        slots: SLOTS,
        spin_rounds: 4,
        ops_per_process: ops_per_thread,
        max_k: MAX_K,
        seed,
        probe: PROBE,
        park: strategy == WaitStrategy::Park,
    });

    println!(
        "## E14b — arena statistics: measured on real threads vs the \
         counting-sim model (same size streams)\n"
    );
    let mut arena_table = Table::new(vec![
        "source".to_owned(),
        "collision rate".to_owned(),
        "combining factor".to_owned(),
        "fallbacks/op".to_owned(),
    ]);
    for m in &measured {
        arena_table.push_row(vec![
            format!("measured: {}", m.counter),
            format!("{:.2}", m.collision_rate),
            format!("{:.2}", m.combining_factor),
            format!("{:.2}", m.fallbacks as f64 / (m.collisions + m.fallbacks).max(1) as f64),
        ]);
    }
    arena_table.push_row(vec![
        "model (counting-sim)".to_owned(),
        format!("{:.2}", model.collision_rate),
        format!("{:.2}", model.combining_factor),
        format!("{:.2}", model.fallbacks as f64 / model.ops.max(1) as f64),
    ]);
    println!("{}", arena_table.to_markdown());
    println!(
        "Notes: `mixed raw` cells on network-backed counters report gaps — that is the\n\
         documented stride-reservation caveat the elimination layer removes; those\n\
         cells are demonstrations, not failures. Every `elim` cell must be exact, for\n\
         any size mix and op count. The model assumes partners can run concurrently,\n\
         so its collision rate is an upper envelope: with a spinning strategy on a\n\
         machine with fewer cores than threads, a waiting thread owns the only core\n\
         and the measured rate collapses toward solo reservations. The park strategy\n\
         closes exactly that gap — see E14c.\n"
    );

    // E14c — the waiting-strategy comparison: 4 counters × 6 scenarios ×
    // 3 strategies, all mixed-batch, each cell the measured merge rate.
    let strategy_ops: u64 = if quick { 120 } else { 1_500 };
    println!(
        "## E14c — waiting strategies under mixed batches (arena merge rate per op), \
         {THREADS} threads, {strategy_ops} ops/thread\n"
    );
    type WrapFactory = (String, Box<dyn Fn(WaitStrategy) -> Box<dyn CountingArena>>);
    /// A wrapped counter that exposes its arena statistics behind a
    /// uniform object-safe face.
    trait CountingArena: counting_runtime::SharedCounter {
        fn merges(&self) -> u64;
    }
    impl<C: BlockReserve> CountingArena for EliminationCounter<C> {
        fn merges(&self) -> u64 {
            self.collisions()
        }
    }
    let wrapped: [WrapFactory; 4] = [
        (
            format!("C({w},{w})"),
            Box::new({
                let net = net.clone();
                move |s| {
                    Box::new(EliminationCounter::with_config(
                        NetworkCounter::new("C(16,16)", &net),
                        arena_config(s),
                    ))
                }
            }),
        ),
        (
            format!("prism DiffTree[{w}]"),
            Box::new(move |s| {
                Box::new(EliminationCounter::with_config(
                    DiffractingCounter::new(w, 8, 128),
                    arena_config(s),
                ))
            }),
        ),
        (
            "central fetch_add".to_owned(),
            Box::new(|s| {
                Box::new(EliminationCounter::with_config(CentralCounter::new(), arena_config(s)))
            }),
        ),
        (
            "mutex counter".to_owned(),
            Box::new(|s| {
                Box::new(EliminationCounter::with_config(LockCounter::new(), arena_config(s)))
            }),
        ),
    ];

    let scenario_list = scenarios();
    let mut header = vec!["counter × strategy".to_owned()];
    header.extend(scenario_list.iter().map(Scenario::label));
    let mut strategy_table = Table::new(header);
    let mut strategy_matrix: Vec<StrategyCell> = Vec::new();
    let mut per_strategy_ops = vec![0u64; WaitStrategy::ALL.len()];
    let mut per_strategy_merges = vec![0u64; WaitStrategy::ALL.len()];

    for (name, make) in &wrapped {
        for (s_idx, s) in WaitStrategy::ALL.iter().enumerate() {
            let mut row = vec![format!("{name} / {s}")];
            for scenario in scenario_list {
                let counter = make(*s);
                let config = StressConfig {
                    threads: THREADS,
                    ops_per_thread: strategy_ops,
                    batch: Batching::Mixed { max_k: MAX_K, seed },
                    scenario,
                    record_tokens: false,
                };
                let report = run_stress(counter.as_ref(), &config);
                let ops = THREADS as u64 * strategy_ops;
                let merge_rate = counter.merges() as f64 / ops as f64;
                per_strategy_ops[s_idx] += ops;
                per_strategy_merges[s_idx] += counter.merges();
                let exact = report.is_exact_range();
                if exact {
                    row.push(format!("{merge_rate:.2}"));
                } else {
                    unexpected_broken += 1;
                    row.push(format!(
                        "{merge_rate:.2} BROKEN(dup {}, gap {}, oor {})",
                        report.duplicates, report.missing, report.out_of_range
                    ));
                }
                strategy_matrix.push(StrategyCell {
                    counter: name.clone(),
                    scenario: scenario.label(),
                    strategy: s.label().to_owned(),
                    merge_rate,
                    exact_range: exact,
                });
                stress.push(report);
            }
            strategy_table.push_row(row);
        }
    }
    println!("{}", strategy_table.to_markdown());

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let oversubscribed = THREADS > cpus;
    let strategy_aggregates: Vec<StrategyAggregate> = WaitStrategy::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| StrategyAggregate {
            strategy: s.label().to_owned(),
            merge_rate: per_strategy_merges[i] as f64 / per_strategy_ops[i].max(1) as f64,
        })
        .collect();
    // Machine-readable summary consumed by the smoke-test gate: on an
    // oversubscribed box, park must out-merge spin-yield.
    for aggregate in &strategy_aggregates {
        println!(
            "E14c-aggregate strategy={} merge_rate={:.4}",
            aggregate.strategy, aggregate.merge_rate
        );
    }
    println!("E14c-oversubscribed={oversubscribed} threads={THREADS} cpus={cpus}");
    println!(
        "\nNotes: each cell wraps the counter in a fresh arena ({SLOTS} slots, probe\n\
         window {PROBE}) and reports merged operations per op (2 merges per combined\n\
         reservation, so 1.00 = perfect pairing). Spinning strategies need genuine\n\
         parallelism to rendezvous; park surrenders the publisher's core to its\n\
         partner, so its rate should stay high even at threads > cpus.\n"
    );

    let json = EliminationJson {
        seed,
        strategy: strategy.label().to_owned(),
        oversubscribed,
        stress,
        arena_measured: measured,
        arena_model: model,
        strategy_matrix,
        strategy_aggregates,
    };
    let json = serde_json::to_string(&json).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    // Gate: any BROKEN cell (a non-demonstration violation) fails the
    // process after the JSON was written for forensics.
    if unexpected_broken > 0 {
        eprintln!(
            "error: {unexpected_broken} elimination run(s) violated the Fetch&Increment contract"
        );
        std::process::exit(1);
    }
}
