//! Experiment E14 — the elimination layer under mixed batch sizes: every
//! counter of the runtime matrix is driven at 8 threads through four
//! batching regimes — uniform `next_batch` on the raw counter, uniform
//! and mixed through the elimination arena, and mixed on the raw counter
//! (the configuration whose stride reservations are *expected* to leave
//! gaps, demonstrating the caveat the layer removes).
//!
//! A second table compares the arena statistics measured on real
//! hardware (collision rate, combining factor) against the
//! schedule-controlled prediction of `counting-sim`'s arena model, which
//! replays the *same* deterministic batch-size streams.
//!
//! Run with: `cargo run --release -p bench --bin exp_elimination
//! [-- --quick] [--json <path>]`

use bench::Table;
use counting::counting_network;
use counting_runtime::{
    run_stress, Batching, BlockReserve, CentralCounter, DiffractingCounter, EliminationCounter,
    LockCounter, NetworkCounter, Scenario, StressConfig, StressReport,
};
use counting_sim::{simulate_arena, ArenaConfig, ArenaReport};
use serde::Serialize;

const THREADS: usize = 8;
const UNIFORM_K: usize = 8;
const MAX_K: usize = 16;
const SEED: u64 = 0xE11A;
/// Arena geometry used for every wrapped counter in this experiment.
const SLOTS: usize = 4;
const SPIN: usize = 16;

/// Arena statistics measured on one real-hardware mixed-batch run.
#[derive(Debug, Clone, Serialize)]
struct MeasuredArena {
    counter: String,
    collisions: u64,
    fallbacks: u64,
    collision_rate: f64,
    combining_factor: f64,
}

/// Everything the experiment emits as JSON.
#[derive(Debug, Serialize)]
struct EliminationJson {
    stress: Vec<StressReport>,
    arena_measured: Vec<MeasuredArena>,
    arena_model: ArenaReport,
}

/// The four batching regimes of one matrix row.
struct RowOutcome {
    rates: Vec<String>,
    reports: Vec<StressReport>,
    arena: MeasuredArena,
}

fn steady(batch: Batching, ops_per_thread: u64) -> StressConfig {
    StressConfig {
        threads: THREADS,
        ops_per_thread,
        batch,
        scenario: Scenario::Steady,
        record_tokens: false,
    }
}

fn rate_cell(report: &StressReport, gaps_expected: bool) -> String {
    let rate = format!("{:.0}k", report.values_per_second / 1_000.0);
    if report.is_exact_range() {
        rate
    } else if gaps_expected && report.duplicates == 0 {
        // Raw stride reservations under mixed sizes: gaps — and their
        // mirror image, values beyond `m` — are the documented behaviour
        // this experiment demonstrates (see the JSON report's
        // `first_missing`). Duplicates would be a genuine failure.
        format!("{rate} (gaps: {})", report.missing)
    } else {
        format!(
            "{rate} BROKEN(dup {}, gap {}, oor {})",
            report.duplicates, report.missing, report.out_of_range
        )
    }
}

/// Runs the four regimes for one counter. `make` produces a fresh raw
/// counter per run (a counter hands out each value once);
/// `gaps_expected` marks counters whose raw mixed-size runs legitimately
/// gap (stride reservations: network and diffracting-tree counters).
fn run_subject<C, F>(name: &str, make: F, ops_per_thread: u64, gaps_expected: bool) -> RowOutcome
where
    C: BlockReserve,
    F: Fn() -> C,
{
    let uniform = Batching::Fixed(UNIFORM_K);
    let mixed = Batching::Mixed { max_k: MAX_K, seed: SEED };
    let mut rates = Vec::new();
    let mut reports = Vec::new();

    // Uniform k, raw counter — the PR 2 fast path and the baseline the
    // elimination path must not fall behind.
    let report = run_stress(&make(), &steady(uniform, ops_per_thread));
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Uniform k through the arena.
    let wrapped = EliminationCounter::with_arena(make(), SLOTS, SPIN);
    let report = run_stress(&wrapped, &steady(uniform, ops_per_thread));
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Mixed k through the arena — the regime the layer exists for. Keep
    // this counter's arena statistics for the model comparison.
    let wrapped = EliminationCounter::with_arena(make(), SLOTS, SPIN);
    let report = run_stress(&wrapped, &steady(mixed, ops_per_thread));
    let ops = THREADS as u64 * ops_per_thread;
    let collisions = wrapped.collisions();
    let fallbacks = wrapped.fallbacks();
    let arena = MeasuredArena {
        counter: name.to_owned(),
        collisions,
        fallbacks,
        collision_rate: collisions as f64 / ops as f64,
        combining_factor: ops as f64 / (collisions / 2 + fallbacks).max(1) as f64,
    };
    rates.push(rate_cell(&report, false));
    reports.push(report);

    // Mixed k on the raw counter — the documented caveat.
    let report = run_stress(&make(), &steady(mixed, ops_per_thread));
    rates.push(rate_cell(&report, gaps_expected));
    reports.push(report);

    RowOutcome { rates, reports, arena }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let w = 16usize;
    // Total traversals of the uniform raw runs (threads × ops) stay a
    // multiple of the output width, so their stride reservations tile.
    let ops_per_thread: u64 = if quick { 240 } else { 6_000 };
    let net = counting_network(w, w).expect("valid");

    println!(
        "## E14 — elimination layer under mixed batch sizes (values/s), {THREADS} threads, \
         {ops_per_thread} ops/thread, arena {SLOTS} slots × spin {SPIN}\n"
    );

    let mut table = Table::new(vec![
        "counter".to_owned(),
        format!("uniform k={UNIFORM_K} raw"),
        format!("uniform k={UNIFORM_K} elim"),
        format!("mixed ≤{MAX_K} elim"),
        format!("mixed ≤{MAX_K} raw"),
    ]);
    let mut stress: Vec<StressReport> = Vec::new();
    let mut measured: Vec<MeasuredArena> = Vec::new();
    let mut unexpected_broken = 0usize;

    let outcomes = [
        run_subject(
            &format!("C({w},{w})"),
            || NetworkCounter::new("C(16,16)", &net),
            ops_per_thread,
            true,
        ),
        run_subject(
            &format!("prism DiffTree[{w}]"),
            || DiffractingCounter::new(w, 8, 128),
            ops_per_thread,
            true,
        ),
        run_subject("central fetch_add", CentralCounter::new, ops_per_thread, false),
        run_subject("mutex counter", LockCounter::new, ops_per_thread, false),
    ];
    for outcome in outcomes {
        unexpected_broken += outcome.rates.iter().filter(|cell| cell.contains("BROKEN")).count();
        let mut row = vec![outcome.arena.counter.clone()];
        row.extend(outcome.rates);
        table.push_row(row);
        stress.extend(outcome.reports);
        measured.push(outcome.arena);
    }
    println!("{}", table.to_markdown());

    // The deterministic arena model replays the same batch-size streams;
    // spin_rounds is the model's coarse analogue of the runtime's spin
    // bound (protocol rounds, not loop iterations).
    let model = simulate_arena(&ArenaConfig {
        processes: THREADS,
        slots: SLOTS,
        spin_rounds: 4,
        ops_per_process: ops_per_thread,
        max_k: MAX_K,
        seed: SEED,
    });

    println!(
        "## E14b — arena statistics: measured on real threads vs the \
         counting-sim model (same size streams)\n"
    );
    let mut arena_table = Table::new(vec![
        "source".to_owned(),
        "collision rate".to_owned(),
        "combining factor".to_owned(),
        "fallbacks/op".to_owned(),
    ]);
    for m in &measured {
        arena_table.push_row(vec![
            format!("measured: {}", m.counter),
            format!("{:.2}", m.collision_rate),
            format!("{:.2}", m.combining_factor),
            format!("{:.2}", m.fallbacks as f64 / (m.collisions + m.fallbacks).max(1) as f64),
        ]);
    }
    arena_table.push_row(vec![
        "model (counting-sim)".to_owned(),
        format!("{:.2}", model.collision_rate),
        format!("{:.2}", model.combining_factor),
        format!("{:.2}", model.fallbacks as f64 / model.ops.max(1) as f64),
    ]);
    println!("{}", arena_table.to_markdown());
    println!(
        "Notes: `mixed raw` cells on network-backed counters report gaps — that is the\n\
         documented stride-reservation caveat the elimination layer removes; those\n\
         cells are demonstrations, not failures. Every `elim` cell must be exact, for\n\
         any size mix and op count. The model assumes partners can run concurrently,\n\
         so its collision rate is an upper envelope: on a machine with fewer cores\n\
         than threads a spinning waiter owns the only core and the measured rate\n\
         collapses toward solo reservations (the layer then still provides the\n\
         gap-free guarantee, at fast-path cost). Compare the two to judge how much\n\
         combining headroom the hardware leaves unused.\n"
    );

    let json = EliminationJson { stress, arena_measured: measured, arena_model: model };
    let json = serde_json::to_string(&json).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    // Gate: any BROKEN cell (a non-demonstration violation) fails the
    // process after the JSON was written for forensics.
    if unexpected_broken > 0 {
        eprintln!(
            "error: {unexpected_broken} elimination run(s) violated the Fetch&Increment contract"
        );
        std::process::exit(1);
    }
}
