//! Experiment E13 — real-thread stress matrix: every counter in the
//! comparison suite (plus the centralized baselines and the runtime
//! diffracting tree) is tortured under every workload scenario of
//! `counting_runtime::stress`, with the Fetch&Increment contract checked
//! online and linearizability violations measured on the steady runs.
//!
//! Prints the scenario × counter matrix as Markdown tables and emits the
//! full reports as JSON (to stdout, or to a file with `--json <path>`).
//!
//! Run with: `cargo run --release -p bench --bin exp_stress [-- --quick]
//! [--json <path>]`

use bench::{comparison_suite, kilo_rate, Table};
use counting_runtime::{
    run_stress, Batching, CentralCounter, DiffractingCounter, LockCounter, NetworkCounter,
    Scenario, SharedCounter, StressConfig, StressReport,
};

/// One row of the matrix: a display name plus a factory producing a fresh
/// counter per run (a counter hands out each value once).
struct Subject {
    name: String,
    make: Box<dyn Fn() -> Box<dyn SharedCounter>>,
}

fn subjects(w: usize) -> Vec<Subject> {
    let mut subjects: Vec<Subject> = comparison_suite(w)
        .into_iter()
        .map(|named| {
            let name = named.name.clone();
            Subject {
                name: named.name.clone(),
                make: Box::new(move || Box::new(NetworkCounter::new(name.clone(), &named.network))),
            }
        })
        .collect();
    subjects.push(Subject {
        name: format!("prism DiffTree[{w}]"),
        make: Box::new(move || Box::new(DiffractingCounter::new(w, 8, 128))),
    });
    subjects.push(Subject {
        name: "central fetch_add".to_owned(),
        make: Box::new(|| Box::new(CentralCounter::new())),
    });
    subjects.push(Subject {
        name: "mutex counter".to_owned(),
        make: Box::new(|| Box::new(LockCounter::new())),
    });
    subjects
}

fn cell(report: &StressReport) -> String {
    let rate = kilo_rate(report.values_per_second);
    if report.is_exact_range() {
        rate
    } else {
        format!(
            "{rate} BROKEN(dup {}, gap {}, oor {})",
            report.duplicates, report.missing, report.out_of_range
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let w = 16usize;
    let threads = 8usize;
    // Per-thread operation count: total traversals stay a multiple of
    // every output width in the matrix (16 and 64), so batched stride
    // reservations tile the value range exactly at quiescence.
    let ops_per_thread: u64 = if quick { 192 } else { 12_288 };
    let batch_k = 8usize;

    let scenarios = [
        Scenario::Steady,
        Scenario::Bursty { phases: 8 },
        Scenario::Skewed { groups: 2 },
        Scenario::Churn { stagger_micros: if quick { 200 } else { 1_000 } },
        Scenario::Oscillating { pulses: 8 },
        Scenario::Pinned { nodes: 2 },
    ];

    println!(
        "## E13 — real-thread stress matrix (values/s), {threads} threads, \
         {ops_per_thread} ops/thread, online uniqueness+range checking\n"
    );

    let subjects = subjects(w);
    let mut reports: Vec<StressReport> = Vec::new();
    let mut header = vec!["counter".to_owned()];
    header.extend(scenarios.iter().map(|s| s.label()));
    header.push(format!("steady ×{batch_k} batch"));
    let mut table = Table::new(header);

    for subject in &subjects {
        let mut row = vec![subject.name.clone()];
        for scenario in scenarios {
            let config = StressConfig {
                threads,
                ops_per_thread,
                batch: Batching::Fixed(1),
                scenario,
                record_tokens: false,
            };
            let report = run_stress((subject.make)().as_ref(), &config);
            row.push(cell(&report));
            reports.push(report);
        }
        // The combining fast path: same value volume, 1/k traversals.
        let batched = StressConfig {
            threads,
            ops_per_thread: ops_per_thread / batch_k as u64,
            batch: Batching::Fixed(batch_k),
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress((subject.make)().as_ref(), &batched);
        row.push(cell(&report));
        reports.push(report);
        table.push_row(row);
    }
    println!("{}", table.to_markdown());

    println!(
        "## E13b — linearizability violations measured on steady runs \
         (Section 1.4.2: counting networks trade linearizability for throughput)\n"
    );
    let mut lin_table = Table::new(vec!["counter".to_owned(), "violations".to_owned()]);
    for subject in &subjects {
        let config = StressConfig {
            threads,
            ops_per_thread: ops_per_thread.min(2_048),
            batch: Batching::Fixed(1),
            scenario: Scenario::Steady,
            record_tokens: true,
        };
        let report = run_stress((subject.make)().as_ref(), &config);
        let violations = report.linearizability_violations.unwrap_or(0);
        lin_table.push_row(vec![subject.name.clone(), violations.to_string()]);
        reports.push(report);
    }
    println!("{}", lin_table.to_markdown());
    println!(
        "Notes: every cell is measured with the invariant checker inline (one atomic\n\
         fetch_or per value), so rates are comparable across cells but slightly below\n\
         exp_throughput's. A BROKEN cell means the counter violated uniqueness or\n\
         exact-range coverage. Violations are a measurement, not a failure: the\n\
         centralized counters must show 0, the network counters may show more.\n"
    );

    let json = serde_json::to_string(&reports).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    // The matrix doubles as a correctness gate: a broken cell must fail
    // the process (CI runs this binary as a dedicated step), after the
    // JSON was written for forensics.
    let broken = reports.iter().filter(|r| !r.is_exact_range()).count();
    if broken > 0 {
        eprintln!("error: {broken} stress run(s) violated the Fetch&Increment contract");
        std::process::exit(1);
    }
}
