//! Experiment E6 — per-block contention of `C(w, t)` (Section 1.3.2).
//!
//! Attributes the measured stalls to the blocks `N_a`, `N_b`, `N_c` of the
//! unfolded construction and shows how the dominant block `N_c` cools down
//! as the output width `t` grows while `N_a`/`N_b` stay fixed.
//!
//! Run with: `cargo run --release -p bench --bin exp_blocks`

use bench::Table;
use counting::{block_of_layer, counting_network, BlockKind};
use counting_sim::{measure_contention, SchedulerKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let w = 16usize;
    let n = 8 * w;
    let tokens_per_process: u64 = if quick { 10 } else { 60 };
    let m = tokens_per_process * n as u64;

    println!("## E6 — per-block amortized contention of C({w}, t), n = {n}, round-robin\n");
    let mut table = Table::new(vec![
        "t",
        "depth",
        "Na stalls/token",
        "Nb stalls/token",
        "Nc stalls/token",
        "total",
    ]);
    for p in [1usize, 2, 4, 8, 16] {
        let t = w * p;
        let net = counting_network(w, t).expect("valid");
        let report = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 1);
        let mut per_block = [0u64; 3];
        for layer in 1..=net.depth() {
            let idx = match block_of_layer(w, layer) {
                BlockKind::A => 0,
                BlockKind::B => 1,
                BlockKind::C => 2,
            };
            per_block[idx] += report.per_layer_stalls[layer - 1];
        }
        let per_token = |stalls: u64| format!("{:.2}", stalls as f64 / m as f64);
        table.push_row(vec![
            t.to_string(),
            net.depth().to_string(),
            per_token(per_block[0]),
            per_token(per_block[1]),
            per_token(per_block[2]),
            format!("{:.2}", report.amortized_contention),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading the table: Na and Nb have fixed width w, so their per-token stalls are\n\
         essentially independent of t; Nc has width t and dominates the depth, and its\n\
         per-token stalls fall as t grows — exactly the structural argument of\n\
         Section 1.3.2 for why contention decreases with t."
    );
}
