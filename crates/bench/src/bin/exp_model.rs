//! Experiment E16 — exhaustive interleaving checking of the lock-free
//! cores: the elimination arena's slot state machine and the service
//! layer's eviction/watermark hand-off, rate-limiter rollover (including
//! its torn-read seqlock calibration), and ticket-gate admission bound,
//! all explored schedule-by-schedule under a bounded-preemption DFS (see
//! `counting_sim::model`).
//!
//! Two kinds of row, both must land for the run to pass:
//!
//! * **clean** — the real protocol, explored to completion with no
//!   counterexample;
//! * **mutation** — the same scenario with a seeded protocol bug (e.g.
//!   capture skipping the `CLAIMED` hand-off state). The checker must
//!   find a counterexample, the pinned trace must still fail when
//!   replayed against the mutant, and the *fixed* protocol must survive
//!   that exact schedule. This calibrates the checker: a clean sweep
//!   only means something if the same sweep catches a known bug.
//!
//! Prints the scenario table as Markdown, emits the reports as JSON (to
//! stdout, or to a file with `--json <path>`), and writes every
//! counterexample found to `--trace-dir <dir>` for offline replay. Exits
//! nonzero if any clean scenario fails or any mutation goes uncaught.
//!
//! Run with: `cargo run --release -p bench --features model --bin
//! exp_model [-- --quick] [--preemptions <n>] [--json <path>]
//! [--trace-dir <dir>]`

use bench::Table;
use counting_sim::model::{explore, replay, Counterexample, ModelConfig, Scenario};

use counting_runtime::model_scenarios::{arena_pair, arena_probe, arena_trio, arena_trio_mutated};
use counting_runtime::WaitStrategy;
use counting_service::model_scenarios::{
    evict_handoff, evict_handoff_mutated, rate_straddle, rate_straddle_mutated,
    rate_torn_base_mutated, ticket_admit_bound, ticket_admit_bound_mutated,
};

/// What a row is asserting: a real protocol explored clean, or a seeded
/// mutation the checker must catch (and whose pinned schedule the fixed
/// protocol must survive).
#[derive(Clone, Copy, PartialEq, Eq, serde::Serialize)]
enum Kind {
    Clean,
    Mutation,
}

/// One scenario's result, serialized verbatim into the JSON report.
#[derive(serde::Serialize)]
struct Row {
    scenario: &'static str,
    kind: Kind,
    preemptions: usize,
    executions: u64,
    decision_points: u64,
    pruned_states: u64,
    max_depth: usize,
    complete: bool,
    /// `None` means the row passed; `Some` carries the failure text.
    failure: Option<String>,
    /// The counterexample behind a mutation catch (expected) or a clean
    /// failure (a real bug) — replayable via its `trace`.
    counterexample: Option<Counterexample>,
}

impl Row {
    fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Explores a real protocol: passes iff the schedule space is exhausted
/// (within the budgets) and no schedule breaks the invariant.
fn run_clean<T: Send + 'static>(
    config: &ModelConfig,
    name: &'static str,
    factory: impl FnMut() -> Scenario<T>,
) -> Row {
    let report = explore(config, factory);
    let failure = if let Some(cex) = &report.counterexample {
        Some(format!("real counterexample: {}", cex.message))
    } else if !report.complete {
        Some(format!("exploration hit a budget after {} executions", report.executions))
    } else if report.executions <= 1 {
        Some("only one interleaving explored — the scenario has no scheduling points".into())
    } else {
        None
    };
    Row {
        scenario: name,
        kind: Kind::Clean,
        preemptions: config.preemptions,
        executions: report.executions,
        decision_points: report.decision_points,
        pruned_states: report.pruned_states,
        max_depth: report.max_depth,
        complete: report.complete,
        failure,
        counterexample: report.counterexample,
    }
}

/// Explores a seeded mutation: passes iff the checker finds a
/// counterexample, the pinned trace still fails on the mutant, and the
/// fixed protocol survives the exact same schedule.
fn run_mutation<T: Send + 'static>(
    config: &ModelConfig,
    name: &'static str,
    mutated: impl FnMut() -> Scenario<T> + Copy,
    fixed: impl FnMut() -> Scenario<T> + Copy,
) -> Row {
    let report = explore(config, mutated);
    let failure = match &report.counterexample {
        None => Some(format!(
            "mutation survived {} executions — the checker has no teeth",
            report.executions
        )),
        Some(cex) => {
            if replay(config, mutated, &cex.trace).is_ok() {
                Some("pinned schedule no longer fails on the mutated protocol".into())
            } else if let Err(cex) = replay(config, fixed, &cex.trace) {
                Some(format!("fixed protocol failed the mutation's schedule: {}", cex.message))
            } else {
                None
            }
        }
    };
    Row {
        scenario: name,
        kind: Kind::Mutation,
        preemptions: config.preemptions,
        executions: report.executions,
        decision_points: report.decision_points,
        pruned_states: report.pruned_states,
        max_depth: report.max_depth,
        complete: report.complete,
        failure,
        counterexample: report.counterexample,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} requires a value")).clone())
    };
    let json_path = flag_value("--json");
    let trace_dir = flag_value("--trace-dir");
    // The PR gate runs the tested bound; the nightly widens it one notch
    // (every real counterexample so far needs ≤ 2 preemptions, so 3 is a
    // genuine widening, not a formality).
    let preemptions: usize = flag_value("--preemptions")
        .map(|v| v.parse().expect("--preemptions takes an integer"))
        .unwrap_or(if quick { 2 } else { 3 });
    let config = ModelConfig::with_preemptions(preemptions);

    println!(
        "## E16 — exhaustive interleaving checking, preemption bound {preemptions} \
         (schedule DFS + state-hash pruning over the shim atomics)\n"
    );

    let rows = vec![
        run_clean(&config, "arena: pair (spin)", || arena_pair(WaitStrategy::Spin)),
        run_clean(&config, "arena: pair (spin-yield)", || arena_pair(WaitStrategy::SpinYield)),
        run_clean(&config, "arena: pair (park)", || arena_pair(WaitStrategy::Park)),
        run_clean(&config, "arena: trio, one slot", arena_trio),
        run_clean(&config, "arena: two-slot probe window", arena_probe),
        run_mutation(&config, "arena: skip CLAIMED (seeded)", arena_trio_mutated, arena_trio),
        run_clean(&config, "service: evict/watermark hand-off", evict_handoff),
        run_clean(&config, "service: rate-limit window straddle", rate_straddle),
        run_mutation(
            &config,
            "service: evict in-use (seeded)",
            evict_handoff_mutated,
            evict_handoff,
        ),
        run_mutation(
            &config,
            "service: pre-fix straddle (seeded)",
            rate_straddle_mutated,
            rate_straddle,
        ),
        run_mutation(
            &config,
            "service: torn epoch/base read (seeded)",
            rate_torn_base_mutated,
            rate_straddle,
        ),
        run_clean(&config, "service: ticket admission bound", ticket_admit_bound),
        run_mutation(
            &config,
            "service: unclamped admit (seeded)",
            ticket_admit_bound_mutated,
            ticket_admit_bound,
        ),
    ];

    let mut table = Table::new(vec![
        "scenario",
        "kind",
        "executions",
        "decision points",
        "pruned",
        "max depth",
        "verdict",
    ]);
    for row in &rows {
        let verdict = match (&row.failure, row.kind) {
            (None, Kind::Clean) => "clean".to_owned(),
            (None, Kind::Mutation) => "caught + replayed".to_owned(),
            (Some(failure), _) => format!("FAIL: {failure}"),
        };
        table.push_row(vec![
            row.scenario.to_owned(),
            match row.kind {
                Kind::Clean => "clean".to_owned(),
                Kind::Mutation => "mutation".to_owned(),
            },
            row.executions.to_string(),
            row.decision_points.to_string(),
            row.pruned_states.to_string(),
            row.max_depth.to_string(),
            verdict,
        ]);
    }
    println!("{}", table.to_markdown());

    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("--trace-dir is creatable");
        for row in &rows {
            if let Some(cex) = &row.counterexample {
                let slug: String = row
                    .scenario
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                    .collect();
                let path = format!("{dir}/{slug}.json");
                let json = serde_json::to_string(cex).expect("counterexample serializes");
                std::fs::write(&path, json).expect("trace file is writable");
                println!("trace written to {path}");
            }
        }
    }

    let json = serde_json::to_string(&rows).expect("rows serialize");
    match &json_path {
        Some(path) => {
            std::fs::write(path, &json).expect("JSON file is writable");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    let failures: Vec<&Row> = rows.iter().filter(|r| !r.passed()).collect();
    if !failures.is_empty() {
        eprintln!("{} scenario(s) failed:", failures.len());
        for row in &failures {
            eprintln!("  {}: {}", row.scenario, row.failure.as_deref().unwrap_or(""));
            if let Some(cex) = &row.counterexample {
                eprintln!("{cex}");
            }
        }
        std::process::exit(1);
    }
    println!("\nall {} scenarios passed — every mutation caught, every protocol clean", rows.len());
}
