//! Experiment E4 — smoothing bounds (Lemma 5.2 and Lemma 6.6).
//!
//! Measures the worst observed output spread (max − min) of the butterfly
//! `D(w)` and of the prefix `C'(w, t)` over many random inputs and places
//! it next to the proven bounds `lg w` and `⌊w·lgw/t⌋ + 2`.
//!
//! Run with: `cargo run --release -p bench --bin exp_smoothing`

use bench::Table;
use counting::{bounds::prefix_smoothness_bound, counting_prefix, forward_butterfly};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 100 } else { 2_000 };
    let max_tokens = 500;
    let mut rng = StdRng::seed_from_u64(2024);

    println!("## E4a — butterfly smoothing (Lemma 5.2): observed spread vs lg w\n");
    let mut t1 = Table::new(vec!["w", "observed spread", "bound lg w"]);
    for k in 1..=7usize {
        let w = 1 << k;
        let d = forward_butterfly(w).expect("valid");
        let observed = balnet::properties::observed_smoothness(&d, trials, max_tokens, &mut rng);
        t1.push_row(vec![w.to_string(), observed.to_string(), k.to_string()]);
    }
    println!("{}", t1.to_markdown());

    println!("## E4b — prefix C'(w, t) smoothing (Lemma 6.6): observed spread vs ⌊w·lgw/t⌋+2\n");
    let mut t2 = Table::new(vec!["w", "t", "observed spread", "bound s"]);
    for &(w, t) in
        &[(8usize, 8usize), (8, 16), (8, 24), (16, 16), (16, 32), (16, 64), (32, 32), (32, 160)]
    {
        let net = counting_prefix(w, t).expect("valid");
        let observed = balnet::properties::observed_smoothness(&net, trials, max_tokens, &mut rng);
        t2.push_row(vec![
            w.to_string(),
            t.to_string(),
            observed.to_string(),
            prefix_smoothness_bound(w, t).to_string(),
        ]);
    }
    println!("{}", t2.to_markdown());
}
