//! Experiment EB — the recorded benchmark trajectory (see
//! [`bench::trajectory`]).
//!
//! Measures the native `hot-path` (flat-route vs boxed-route
//! [`counting_runtime::CompiledNetwork`] traversal) and `id-lease`
//! (lease-cached vs per-op id grants) suites, runs the sibling
//! `exp_throughput` / `exp_elimination` / `exp_service` / `exp_server`
//! / `exp_cluster` binaries with `--json` under the same `--seed` and
//! ingests their reports, assembles
//! everything into one `BENCH_<tag>.json` trajectory file, then loads
//! every committed `BENCH_*.json` and prints the per-cell ratio table.
//!
//! Exit status: nonzero on **schema drift** (a committed trajectory no
//! longer parses under the current schema), on a degenerate-window cell
//! (a rate the measurement harness refused to report), or on a failing
//! sibling suite. Regression *ratios* are reported, never gated — CI
//! boxes vary.
//!
//! Flags:
//!
//! * `--quick` — smoke-test sizes, forwarded to the sibling suites;
//! * `--seed <u64>` — forwarded to every suite and recorded (default 7);
//! * `--tag <tag>` — PR tag of the output file (default `dev`);
//! * `--out <path>` — output path (default `BENCH_<tag>.json` in `--dir`);
//! * `--dir <dir>` — where committed `BENCH_*.json` live (default `.`);
//! * `--native-only` — skip the sibling suites (hot-path + id-lease only;
//!   what the smoke test runs, since sibling binaries may not be built);
//! * `--ingest-throughput/-elimination/-service/-server/-cluster <path>`
//!   — use an existing suite JSON instead of spawning that sibling;
//! * `--compare-only` — no measurement: load `--dir`, print the ratio
//!   table, exit nonzero on drift.
//!
//! Run with: `cargo build --release -p bench --bins && cargo run
//! --release -p bench --bin exp_bench -- --quick`

use std::path::{Path, PathBuf};
use std::process::Command;

use bench::trajectory::{
    self, comparison_table, degenerate_cells, load_trajectories, validate, LoadedTrajectory,
    Trajectory,
};
use bench::HostFingerprint;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} requires a value")).clone())
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Runs a sibling experiment binary with `--json` and returns the path
/// its report was written to.
fn run_sibling(name: &str, quick: bool, seed: u64, out_dir: &Path) -> PathBuf {
    let exe = std::env::current_exe().expect("own path");
    let sibling = exe.with_file_name(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !sibling.exists() {
        fail(&format!(
            "{} not found — build the suite binaries first (cargo build --release -p bench \
             --bins), or pass --ingest-* / --native-only",
            sibling.display()
        ));
    }
    let json = out_dir.join(format!("{name}-trajectory.json"));
    let mut cmd = Command::new(&sibling);
    if quick {
        cmd.arg("--quick");
    }
    cmd.arg("--seed").arg(seed.to_string());
    cmd.arg("--json").arg(&json);
    println!("exp_bench: running {name} (seed {seed}, quick {quick})…");
    let status = cmd.status().unwrap_or_else(|e| fail(&format!("spawn {name}: {e}")));
    if !status.success() {
        fail(&format!("{name} exited with {status} — fix the suite before recording"));
    }
    json
}

fn read_json<T: serde::Deserialize>(path: &Path, what: &str) -> T {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("read {what} report {}: {e}", path.display())));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("parse {what} report {}: {e:?}", path.display())))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let native_only = args.iter().any(|a| a == "--native-only");
    let compare_only = args.iter().any(|a| a == "--compare-only");
    let seed: u64 =
        flag_value(&args, "--seed").map_or(7, |s| s.parse().expect("--seed takes a u64"));
    let tag = flag_value(&args, "--tag").unwrap_or_else(|| "dev".to_owned());
    let dir = PathBuf::from(flag_value(&args, "--dir").unwrap_or_else(|| ".".to_owned()));
    let out = flag_value(&args, "--out")
        .map_or_else(|| dir.join(format!("BENCH_{tag}.json")), PathBuf::from);

    if compare_only {
        let loaded = load_trajectories(&dir).unwrap_or_else(|e| fail(&e));
        if loaded.is_empty() {
            fail(&format!("no BENCH_*.json trajectories in {}", dir.display()));
        }
        print_comparison(&loaded);
        return;
    }

    println!("## EB — benchmark trajectory (tag {tag}, seed {seed}, quick {quick})\n");

    // Native suites first: they need no sibling binaries.
    let mut records = trajectory::measure_hot_path(quick);
    records.extend(trajectory::measure_id_lease(quick));

    if !native_only {
        let tmp = std::env::temp_dir().join(format!("exp_bench-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("create temp dir");

        let path = flag_value(&args, "--ingest-throughput")
            .map_or_else(|| run_sibling("exp_throughput", quick, seed, &tmp), PathBuf::from);
        let doc: trajectory::ThroughputSuiteJson = read_json(&path, "throughput");
        records.extend(trajectory::records_from_throughput(&doc));

        let path = flag_value(&args, "--ingest-elimination")
            .map_or_else(|| run_sibling("exp_elimination", quick, seed, &tmp), PathBuf::from);
        let doc: trajectory::EliminationIngest = read_json(&path, "elimination");
        records.extend(trajectory::records_from_elimination(&doc));

        let path = flag_value(&args, "--ingest-service")
            .map_or_else(|| run_sibling("exp_service", quick, seed, &tmp), PathBuf::from);
        let doc: trajectory::ServiceIngest = read_json(&path, "service");
        records.extend(trajectory::records_from_service(&doc));

        let path = flag_value(&args, "--ingest-server")
            .map_or_else(|| run_sibling("exp_server", quick, seed, &tmp), PathBuf::from);
        let doc: trajectory::ServerIngest = read_json(&path, "server");
        records.extend(trajectory::records_from_server(&doc));

        let path = flag_value(&args, "--ingest-cluster")
            .map_or_else(|| run_sibling("exp_cluster", quick, seed, &tmp), PathBuf::from);
        let doc: trajectory::ClusterIngest = read_json(&path, "cluster");
        records.extend(trajectory::records_from_cluster(&doc));
    }

    let current = Trajectory {
        schema_version: trajectory::SCHEMA_VERSION,
        pr_tag: tag.clone(),
        seed,
        quick,
        host: HostFingerprint::detect(),
        records,
    };
    validate(&current).unwrap_or_else(|e| fail(&format!("assembled trajectory invalid: {e}")));

    // A degenerate-window cell means a suite ran too briefly to measure —
    // refuse to record it (the committed trajectory must never carry
    // epsilon-clamp-style artifacts).
    let degenerate = degenerate_cells(&current);
    if !degenerate.is_empty() {
        fail(&format!(
            "{} degenerate-window cell(s) — raise the op counts: {}",
            degenerate.len(),
            degenerate.join(", ")
        ));
    }

    let json = serde_json::to_string(&current).expect("trajectory serializes");
    std::fs::write(&out, &json).expect("write trajectory file");
    println!("trajectory ({} cells) written to {}\n", current.records.len(), out.display());

    // Comparator: committed trajectories plus this run as the newest
    // column. The freshly written file is excluded from the disk scan (it
    // may live outside --dir or be the very file being refreshed) and
    // re-appended from memory instead.
    let out_name = out.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_owned();
    let mut loaded: Vec<LoadedTrajectory> = load_trajectories(&dir)
        .unwrap_or_else(|e| fail(&e))
        .into_iter()
        .filter(|t| t.file != out_name)
        .collect();
    loaded.push(LoadedTrajectory { file: out_name, trajectory: current });
    print_comparison(&loaded);
}

fn print_comparison(loaded: &[LoadedTrajectory]) {
    println!("## EB — trajectory comparison ({} file(s), newest last)\n", loaded.len());
    for t in loaded {
        let host = &t.trajectory.host;
        println!(
            "* {} — tag {}, seed {}, quick {}, host {}/{}/{} cpus, {} cells",
            t.file,
            t.trajectory.pr_tag,
            t.trajectory.seed,
            t.trajectory.quick,
            host.os,
            host.arch,
            host.cpus,
            t.trajectory.records.len()
        );
    }
    println!();
    println!("{}", comparison_table(loaded).to_markdown());
    println!(
        "Notes: ratios compare the newest column against its predecessor; they are\n\
         reported for review, not gated — absolute rates are machine-dependent, and\n\
         only same-host, same-seed columns are apples-to-apples (see the host\n\
         fingerprints above). Schema drift, by contrast, is a hard error."
    );
}
