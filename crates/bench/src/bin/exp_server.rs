//! Experiment E17 — end-to-end serving: an open-loop load generator
//! drives tens of thousands of simulated clients over real sockets
//! against the `counting-server` HTTP admission service, once per
//! backend configuration.
//!
//! Arrivals are open-loop (Poisson-ish: exponential inter-arrival gaps
//! drawn from the seeded RNG, scheduled in advance, never gated on
//! responses), multiplexed over one keep-alive connection per driver
//! thread. Each simulated client runs a small cookie state machine:
//!
//! * **waiting-room clients** (half): draw a ticket from their queue
//!   tenant, then poll `/status?ticket=` until admitted. Capacity is
//!   released only after *every* ticket is drawn — the room fills
//!   completely, then a control thread drains it through `/admit` in
//!   small batches, so the run holds all waiting clients concurrently
//!   live (the ≥ 1k-concurrency claim is structural, not a timing
//!   accident) and exercises the clamped admission bound end to end.
//! * **lease clients** (a quarter): two `/lease?k=` block reservations a
//!   beat apart.
//! * **rate clients** (a quarter): two `/rate?window=` probes whose
//!   window index derives from the scheduled arrival time.
//!
//! Every value observed in an HTTP response is checked: per-tenant
//! tickets and lease ids must be unique and exactly dense (`0..n`), no
//! rate window may over-admit its budget, and every waiting client must
//! eventually be admitted with the final bound equal to the dispensed
//! count. Per-endpoint latencies land in log₂-bucketed histograms
//! (table + JSON artifact). Exits nonzero on any violation, after the
//! JSON is written.
//!
//! Run with: `cargo run --release -p bench --bin exp_server
//! [-- --quick] [--json <path>] [--seed <u64>] [--clients <n>]`

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bench::{kilo_rate, Table};
use counting_runtime::{rate_over, MeasuredWindow, WaitStrategy};
use counting_server::router::{LeaseBody, RateBody, StatusBody, TicketBody};
use counting_server::{ClientConnection, CountingServer, ServerConfig};
use counting_service::{Backend, ServiceConfig};
use serde::Serialize;

/// Driver threads; also the server's worker-pool size (one keep-alive
/// connection per driver, one worker per connection).
const DRIVERS: usize = 8;
/// Queue (waiting-room) tenants.
const QUEUE_TENANTS: usize = 4;
/// Lease tenants.
const LEASE_TENANTS: usize = 4;
/// Rate-limited tenants.
const RATE_TENANTS: usize = 2;
/// Per-window budget configured into the server's rate limiters.
const RATE_LIMIT: u64 = 8;
/// Wall-clock length of one rate window, in scheduled-arrival µs.
const RATE_WINDOW_US: u64 = 100_000;
/// Slots released per `/admit` call while draining the waiting room —
/// small enough that the drain takes many calls (exercising repeated
/// clamped releases), large enough to finish promptly.
const ADMIT_BATCH: u64 = 64;
/// Histogram bucket count: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs, the last bucket catches everything slower.
const HIST_BUCKETS: usize = 24;
/// Default `--seed`: every arrival time, batch size, and window index
/// derives from it, so a run is reproducible from its JSON alone.
const DEFAULT_SEED: u64 = 0xE17;

/// Endpoint families, indexed into the latency histograms.
const ENDPOINTS: [&str; 5] = ["ticket", "status", "lease", "rate", "admit"];
const EP_TICKET: usize = 0;
const EP_STATUS: usize = 1;
const EP_LEASE: usize = 2;
const EP_RATE: usize = 3;
const EP_ADMIT: usize = 4;

/// The whole JSON document: the seed plus one report per backend.
#[derive(Debug, Serialize)]
struct ServerJson {
    seed: u64,
    quick: bool,
    reports: Vec<ServerReport>,
}

/// One backend's end-to-end serving run.
#[derive(Debug, Serialize)]
struct ServerReport {
    backend: String,
    clients: u64,
    drivers: usize,
    /// Simulated clients live at once at the high-water mark (a client
    /// is live from its scheduled arrival until its flow completes).
    peak_active: u64,
    /// Waiting-room clients — all of them are concurrently live when
    /// the drain starts, by construction.
    waiting_clients: u64,
    total_requests: u64,
    elapsed_secs: f64,
    /// `None` when the measured window was degenerate.
    aggregate_requests_per_second: Option<f64>,
    violations: Violations,
    endpoints: Vec<EndpointReport>,
}

/// Correctness-gate tallies; any nonzero field fails the run.
#[derive(Debug, Serialize)]
struct Violations {
    duplicates: u64,
    range_violations: u64,
    rate_over_admissions: u64,
    unadmitted_clients: u64,
    admission_bound_errors: u64,
}

impl Violations {
    fn total(&self) -> u64 {
        self.duplicates
            + self.range_violations
            + self.rate_over_admissions
            + self.unadmitted_clients
            + self.admission_bound_errors
    }
}

/// Per-endpoint request count, rate, and latency distribution.
#[derive(Debug, Serialize)]
struct EndpointReport {
    endpoint: String,
    requests: u64,
    /// `None` when the measured window was degenerate.
    requests_per_second: Option<f64>,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    /// Non-empty log₂ buckets: `le_us` is the bucket's inclusive upper
    /// bound in µs.
    buckets: Vec<HistBucket>,
}

/// One non-empty histogram bucket.
#[derive(Debug, Serialize)]
struct HistBucket {
    le_us: u64,
    count: u64,
}

/// xorshift64* — the deterministic RNG behind arrivals and batch sizes.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A uniform draw in `(0, 1]` — never 0, so `ln` is safe.
fn uniform01(state: &mut u64) -> f64 {
    (((xorshift(state) >> 11) + 1) as f64) / (1u64 << 53) as f64
}

/// Client flow families.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Family {
    Waiting,
    Lease,
    Rate,
}

fn family_of(client: u64) -> Family {
    match client % 4 {
        0 | 2 => Family::Waiting,
        1 => Family::Lease,
        _ => Family::Rate,
    }
}

/// One simulated client's cookie state.
struct Client {
    id: u64,
    family: Family,
    /// Next scheduled action time, µs from run start.
    due_us: u64,
    /// Steps completed in the flow (requests sent, or polls for waiting
    /// clients past the ticket draw).
    step: u32,
    /// The waiting-room cookie: the ticket drawn by step 0.
    ticket: Option<u64>,
}

/// Heap ordering: earliest due time first.
struct Pending(u64, u32);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.0.cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

/// Driver-local latency histograms, merged after the join.
struct Histograms([[u64; HIST_BUCKETS]; ENDPOINTS.len()]);

impl Histograms {
    fn new() -> Self {
        Self([[0; HIST_BUCKETS]; ENDPOINTS.len()])
    }

    fn record(&mut self, endpoint: usize, latency: Duration) {
        let us = latency.as_micros() as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize).min(HIST_BUCKETS) - 1;
        self.0[endpoint][bucket] += 1;
    }

    fn merge(&mut self, other: &Histograms) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += t;
            }
        }
    }
}

/// The bucket upper bound (µs) under which fraction `q` of samples fall.
fn percentile(buckets: &[u64; HIST_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * q).ceil() as u64;
    let mut seen = 0;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= target {
            return 1u64 << (i + 1);
        }
    }
    1u64 << HIST_BUCKETS
}

/// Everything the drivers observe over HTTP, merged after the join.
#[derive(Default)]
struct Observations {
    tickets: Vec<Vec<u64>>,
    leases: Vec<Vec<(u64, u64)>>,
    /// `(window, admitted)` per rate tenant.
    rates: Vec<Vec<(u64, bool)>>,
}

impl Observations {
    fn new() -> Self {
        Self {
            tickets: vec![Vec::new(); QUEUE_TENANTS],
            leases: vec![Vec::new(); LEASE_TENANTS],
            rates: vec![Vec::new(); RATE_TENANTS],
        }
    }

    fn merge(&mut self, other: Observations) {
        for (mine, theirs) in self.tickets.iter_mut().zip(other.tickets) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.leases.iter_mut().zip(other.leases) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.rates.iter_mut().zip(other.rates) {
            mine.extend(theirs);
        }
    }
}

struct RunOutcome {
    observations: Observations,
    histograms: Histograms,
    total_requests: u64,
    peak_active: u64,
    elapsed: Duration,
}

/// Sleeps (coarsely) until `due_us` past `start`, then returns.
fn wait_until(start: Instant, due_us: u64) {
    loop {
        let now_us = start.elapsed().as_micros() as u64;
        if now_us >= due_us {
            return;
        }
        let gap = due_us - now_us;
        if gap > 200 {
            std::thread::sleep(Duration::from_micros(gap - 100));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn run_backend(
    service: ServiceConfig,
    clients: u64,
    horizon_us: u64,
    poll_interval_us: u64,
    seed: u64,
) -> ServerReport {
    let backend = service.label();
    let config = ServerConfig { service, workers: DRIVERS, rate_limit: RATE_LIMIT, max_lease: 64 };
    let server = CountingServer::start("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Open-loop schedule: exponential gaps around the mean spread every
    // client over the horizon, fixed before the first connection opens.
    let mean_us = horizon_us as f64 / clients as f64;
    let mut rng = seed ^ 0xE17_0000_0000;
    let mut at = 0.0f64;
    let arrivals: Vec<u64> = (0..clients)
        .map(|_| {
            at += -mean_us * uniform01(&mut rng).ln();
            at as u64
        })
        .collect();

    let waiting_total: u64 =
        (0..clients).filter(|&c| family_of(c) == Family::Waiting).count() as u64;
    let tickets_drawn = AtomicU64::new(0);
    let admitted_seen = AtomicU64::new(0);
    let active_now = AtomicU64::new(0);
    let peak_active = AtomicU64::new(0);
    let finished = AtomicUsize::new(0);
    let window = MeasuredWindow::new(DRIVERS);
    let start = Instant::now();

    let (mut observations, mut histograms, mut total_requests) =
        (Observations::new(), Histograms::new(), 0u64);

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(DRIVERS);
        for tid in 0..DRIVERS {
            let arrivals = &arrivals;
            let (tickets_drawn, admitted_seen) = (&tickets_drawn, &admitted_seen);
            let (active_now, peak_active) = (&active_now, &peak_active);
            let (window, finished) = (&window, &finished);
            workers.push(scope.spawn(move || {
                let guard = FinishedGuard(finished);
                let mut conn = ClientConnection::new(addr);
                let mut obs = Observations::new();
                let mut hist = Histograms::new();
                let mut requests = 0u64;
                let mut rng = (seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(tid as u64 + 1) | 1;

                // This driver owns every client with id ≡ tid (mod DRIVERS).
                let mut clients_local: Vec<Client> = (0..clients)
                    .filter(|c| (*c as usize) % DRIVERS == tid)
                    .map(|id| Client {
                        id,
                        family: family_of(id),
                        due_us: arrivals[id as usize],
                        step: 0,
                        ticket: None,
                    })
                    .collect();
                let mut heap: BinaryHeap<Pending> = clients_local
                    .iter()
                    .enumerate()
                    .map(|(i, c)| Pending(c.due_us, i as u32))
                    .collect();

                window.enter();
                while let Some(Pending(due, idx)) = heap.pop() {
                    wait_until(start, due);
                    let c = &mut clients_local[idx as usize];
                    if c.step == 0 {
                        // The client comes alive at its scheduled arrival.
                        let live = active_now.fetch_add(1, Ordering::Relaxed) + 1;
                        peak_active.fetch_max(live, Ordering::Relaxed);
                    }
                    let mut done = false;
                    match c.family {
                        Family::Waiting => {
                            if c.step == 0 {
                                let tenant = c.id % QUEUE_TENANTS as u64;
                                let sent = Instant::now();
                                let resp = conn
                                    .get(&format!("/ticket/queue-{tenant}"))
                                    .expect("ticket request");
                                hist.record(EP_TICKET, sent.elapsed());
                                requests += 1;
                                assert_eq!(resp.status, 200, "{}", resp.body);
                                let body: TicketBody =
                                    serde_json::from_str(&resp.body).expect("ticket body");
                                obs.tickets[tenant as usize].push(body.ticket);
                                c.ticket = Some(body.ticket);
                                tickets_drawn.fetch_add(1, Ordering::Release);
                                // First poll after a short, jittered beat.
                                c.step = 1;
                                let jitter = xorshift(&mut rng) % poll_interval_us;
                                heap.push(Pending(
                                    start.elapsed().as_micros() as u64 + jitter,
                                    idx,
                                ));
                            } else {
                                let tenant = c.id % QUEUE_TENANTS as u64;
                                let ticket = c.ticket.expect("polling implies a ticket");
                                let sent = Instant::now();
                                let resp = conn
                                    .get(&format!("/status/queue-{tenant}?ticket={ticket}"))
                                    .expect("status poll");
                                hist.record(EP_STATUS, sent.elapsed());
                                requests += 1;
                                assert_eq!(resp.status, 200, "{}", resp.body);
                                let body: StatusBody =
                                    serde_json::from_str(&resp.body).expect("status body");
                                if body.admitted == Some(true) {
                                    admitted_seen.fetch_add(1, Ordering::Release);
                                    done = true;
                                } else {
                                    c.step += 1;
                                    heap.push(Pending(
                                        start.elapsed().as_micros() as u64 + poll_interval_us,
                                        idx,
                                    ));
                                }
                            }
                        }
                        Family::Lease => {
                            let tenant = c.id % LEASE_TENANTS as u64;
                            let k = 1 + xorshift(&mut rng) % 8;
                            let sent = Instant::now();
                            let resp = conn
                                .get(&format!("/lease/ids-{tenant}?k={k}"))
                                .expect("lease request");
                            hist.record(EP_LEASE, sent.elapsed());
                            requests += 1;
                            assert_eq!(resp.status, 200, "{}", resp.body);
                            let body: LeaseBody =
                                serde_json::from_str(&resp.body).expect("lease body");
                            obs.leases[tenant as usize].push((body.start, body.count));
                            if c.step == 0 {
                                // Second reservation a beat later keeps the
                                // client concurrently live mid-flow.
                                c.step = 1;
                                let gap = 50_000 + xorshift(&mut rng) % 200_000;
                                heap.push(Pending(due + gap, idx));
                            } else {
                                done = true;
                            }
                        }
                        Family::Rate => {
                            let tenant = c.id % RATE_TENANTS as u64;
                            // The window derives from the *scheduled* time,
                            // so the index stream is seed-reproducible.
                            let w = due / RATE_WINDOW_US;
                            let sent = Instant::now();
                            let resp = conn
                                .get(&format!("/rate/api-{tenant}?window={w}"))
                                .expect("rate request");
                            hist.record(EP_RATE, sent.elapsed());
                            requests += 1;
                            assert_eq!(resp.status, 200, "{}", resp.body);
                            let body: RateBody =
                                serde_json::from_str(&resp.body).expect("rate body");
                            obs.rates[tenant as usize].push((body.window, body.admitted));
                            if c.step == 0 {
                                c.step = 1;
                                let gap = 50_000 + xorshift(&mut rng) % 200_000;
                                heap.push(Pending(due + gap, idx));
                            } else {
                                done = true;
                            }
                        }
                    }
                    if done {
                        active_now.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                window.exit();
                drop(guard);
                (obs, hist, requests)
            }));
        }

        // The capacity controller: wait for the room to fill completely
        // (every waiting client concurrently live), then drain it in
        // clamped batches until every client saw its admission.
        let (tickets_drawn, admitted_seen, finished) = (&tickets_drawn, &admitted_seen, &finished);
        let controller = scope.spawn(move || {
            let mut conn = ClientConnection::new(addr);
            let mut hist = Histograms::new();
            let mut requests = 0u64;
            while tickets_drawn.load(Ordering::Acquire) < waiting_total
                && finished.load(Ordering::Acquire) < DRIVERS
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            while admitted_seen.load(Ordering::Acquire) < waiting_total
                && finished.load(Ordering::Acquire) < DRIVERS
            {
                for tenant in 0..QUEUE_TENANTS {
                    let sent = Instant::now();
                    let resp = conn
                        .get(&format!("/admit/queue-{tenant}?n={ADMIT_BATCH}"))
                        .expect("admit request");
                    hist.record(EP_ADMIT, sent.elapsed());
                    requests += 1;
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (hist, requests)
        });

        for worker in workers {
            let (obs, hist, requests) = worker.join().expect("driver thread panicked");
            observations.merge(obs);
            histograms.merge(&hist);
            total_requests += requests;
        }
        let (hist, requests) = controller.join().expect("controller thread panicked");
        histograms.merge(&hist);
        total_requests += requests;
    });
    let elapsed = window.elapsed();

    let outcome = RunOutcome {
        observations,
        histograms,
        total_requests,
        peak_active: peak_active.load(Ordering::Relaxed),
        elapsed,
    };
    let report = verify(&server, backend, clients, waiting_total, outcome);
    server.shutdown();
    report
}

/// Quiescent verification of everything the HTTP responses claimed.
fn verify(
    server: &CountingServer,
    backend: String,
    clients: u64,
    waiting_total: u64,
    outcome: RunOutcome,
) -> ServerReport {
    let RunOutcome { observations, histograms, total_requests, peak_active, elapsed } = outcome;
    let mut duplicates = 0u64;
    let mut range_violations = 0u64;

    // Tickets and lease ids: unique and exactly dense per tenant.
    let mut check_dense = |label: &str, tenant: usize, mut values: Vec<u64>| {
        values.sort_unstable();
        let n = values.len() as u64;
        for pair in values.windows(2) {
            if pair[0] == pair[1] {
                duplicates += 1;
                eprintln!("{label}-{tenant}: value {} observed twice over HTTP", pair[0]);
            }
        }
        if values.last().is_some_and(|&max| max >= n) || (n > 0 && values[0] != 0) {
            range_violations += 1;
            eprintln!(
                "{label}-{tenant}: {n} values observed but they do not tile 0..{n} \
                 (first {:?}, last {:?})",
                values.first(),
                values.last()
            );
        }
    };
    for (tenant, tickets) in observations.tickets.iter().enumerate() {
        check_dense("queue", tenant, tickets.clone());
    }
    for (tenant, leases) in observations.leases.iter().enumerate() {
        let ids: Vec<u64> =
            leases.iter().flat_map(|&(start, count)| start..start + count).collect();
        check_dense("ids", tenant, ids);
    }

    // Rate windows: never over budget.
    let mut rate_over_admissions = 0u64;
    for (tenant, probes) in observations.rates.iter().enumerate() {
        let mut per_window = std::collections::HashMap::new();
        for &(window, admitted) in probes {
            if admitted {
                *per_window.entry(window).or_insert(0u64) += 1;
            }
        }
        for (window, admitted) in per_window {
            if admitted > RATE_LIMIT {
                rate_over_admissions += 1;
                eprintln!(
                    "api-{tenant} window {window}: {admitted} admissions > limit {RATE_LIMIT}"
                );
            }
        }
    }

    // Waiting room fully drained: every client admitted, and the final
    // bound clamped exactly to the dispensed count (the bugfix, end to
    // end: no over-release ever pushed it past).
    let mut unadmitted_clients = 0u64;
    let mut admission_bound_errors = 0u64;
    let mut tickets_total = 0u64;
    for tenant in 0..QUEUE_TENANTS {
        let observed = observations.tickets[tenant].len() as u64;
        tickets_total += observed;
        let gate = server.state().gate(&format!("queue-{tenant}"));
        if gate.dispensed() != observed {
            admission_bound_errors += 1;
            eprintln!(
                "queue-{tenant}: server dispensed {} but {} tickets were observed over HTTP",
                gate.dispensed(),
                observed
            );
        }
        if gate.now_serving() != gate.dispensed() {
            admission_bound_errors += 1;
            eprintln!(
                "queue-{tenant}: drained room ended with now_serving {} != dispensed {}",
                gate.now_serving(),
                gate.dispensed()
            );
        }
    }
    if tickets_total != waiting_total {
        unadmitted_clients += waiting_total.saturating_sub(tickets_total);
    }

    let endpoints = ENDPOINTS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let buckets = &histograms.0[i];
            let requests: u64 = buckets.iter().sum();
            EndpointReport {
                endpoint: (*name).to_owned(),
                requests,
                requests_per_second: rate_over(requests, elapsed),
                p50_us: percentile(buckets, 0.50),
                p90_us: percentile(buckets, 0.90),
                p99_us: percentile(buckets, 0.99),
                buckets: buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &count)| count > 0)
                    .map(|(b, &count)| HistBucket { le_us: 1u64 << (b + 1), count })
                    .collect(),
            }
        })
        .collect();

    ServerReport {
        backend,
        clients,
        drivers: DRIVERS,
        peak_active,
        waiting_clients: waiting_total,
        total_requests,
        elapsed_secs: elapsed.as_secs_f64(),
        aggregate_requests_per_second: rate_over(total_requests, elapsed),
        violations: Violations {
            duplicates,
            range_violations,
            rate_over_admissions,
            unadmitted_clients,
            admission_bound_errors,
        },
        endpoints,
    }
}

/// Increments the shared finished-driver count on drop — including an
/// unwinding drop, so a panicking driver still releases the controller
/// loop and the binary fails instead of hanging.
struct FinishedGuard<'a>(&'a AtomicUsize);

impl Drop for FinishedGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} requires a value")).clone())
    };
    let json_path = flag_value("--json");
    let seed: u64 =
        flag_value("--seed").map_or(DEFAULT_SEED, |v| v.parse().expect("--seed takes a u64"));
    let clients: u64 = flag_value("--clients")
        .map_or(if quick { 3_072 } else { 20_480 }, |v| v.parse().expect("--clients takes a u64"));
    let horizon_us: u64 = if quick { 1_000_000 } else { 2_500_000 };
    let poll_interval_us: u64 = if quick { 25_000 } else { 40_000 };

    let network = |elimination: bool| ServiceConfig {
        backend: Backend::Network,
        width: 16,
        elimination,
        strategy: WaitStrategy::SpinYield,
        ..ServiceConfig::default()
    };
    let mut configs = vec![
        network(true),
        ServiceConfig { backend: Backend::Central, elimination: false, ..ServiceConfig::default() },
    ];
    if !quick {
        configs.insert(1, network(false));
        configs.push(ServiceConfig {
            backend: Backend::Diffracting,
            width: 16,
            elimination: true,
            strategy: WaitStrategy::SpinYield,
            ..ServiceConfig::default()
        });
    }

    println!(
        "## E17 — end-to-end serving over HTTP: {clients} open-loop simulated clients \
         ({DRIVERS} driver connections, {QUEUE_TENANTS} queues fill-then-drain, \
         {LEASE_TENANTS} lease tenants, {RATE_TENANTS} rate tenants @ limit {RATE_LIMIT})\n"
    );

    let mut table = Table::new(vec![
        "backend",
        "req/s",
        "peak live",
        "ticket p99 µs",
        "status p99 µs",
        "lease p99 µs",
        "status",
    ]);
    let mut reports = Vec::new();
    for config in configs {
        let report = run_backend(config, clients, horizon_us, poll_interval_us, seed);
        let p99 = |ep: usize| report.endpoints[ep].p99_us.to_string();
        let broken = report.violations.total() > 0;
        table.push_row(vec![
            report.backend.clone(),
            kilo_rate(report.aggregate_requests_per_second),
            report.peak_active.to_string(),
            p99(EP_TICKET),
            p99(EP_STATUS),
            p99(EP_LEASE),
            if broken {
                format!(
                    "BROKEN(dup {}, range {}, rate {}, unadmitted {}, bound {})",
                    report.violations.duplicates,
                    report.violations.range_violations,
                    report.violations.rate_over_admissions,
                    report.violations.unadmitted_clients,
                    report.violations.admission_bound_errors
                )
            } else {
                "ok".to_owned()
            },
        ]);
        println!(
            "E17-aggregate backend={} clients={} peak_active={} requests={} rate={} violations={}",
            report.backend,
            report.clients,
            report.peak_active,
            report.total_requests,
            report
                .aggregate_requests_per_second
                .map_or_else(|| "n/a".to_owned(), |r| format!("{r:.0}")),
            report.violations.total()
        );
        reports.push(report);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "Notes: arrivals are open-loop (exponential gaps from the seed), so the server\n\
         never back-pressures the schedule. Waiting rooms fill completely before the\n\
         controller drains them through clamped /admit batches — every waiting client\n\
         is concurrently live at the fill/drain turn, which is what `peak live` floors.\n\
         Latency percentiles are log2-bucket upper bounds, per endpoint.\n"
    );

    // The structural concurrency floor: all waiting clients are live at
    // once by construction, so a shortfall means the harness itself
    // broke (not the server).
    for report in &reports {
        assert!(
            report.peak_active >= report.waiting_clients,
            "peak_active {} below the structural floor of {} concurrently waiting clients",
            report.peak_active,
            report.waiting_clients
        );
    }

    let doc = ServerJson { seed, quick, reports };
    let json = serde_json::to_string(&doc).expect("reports serialize");
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write JSON report file");
            println!("JSON written to {path}");
        }
        None => println!("{json}"),
    }

    let broken = doc.reports.iter().filter(|r| r.violations.total() > 0).count();
    if broken > 0 {
        eprintln!("error: {broken} backend run(s) violated the serving contract over HTTP");
        std::process::exit(1);
    }
}
