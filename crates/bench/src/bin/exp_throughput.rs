//! Experiment E7 — concurrent Fetch&Increment throughput (the IPPS'98 /
//! Klein experimental comparison, on threads instead of ten SPARC
//! workstations).
//!
//! Drives every counter in the comparison suite (plus the centralized
//! baselines) with an increasing number of threads and reports operations
//! per second.
//!
//! Run with: `cargo run --release -p bench --bin exp_throughput`

use bench::{comparison_suite, Table};
use counting_runtime::{
    measure_throughput, CentralCounter, DiffractingCounter, LockCounter, NetworkCounter,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let w = 16usize;
    let ops_per_thread: u64 = if quick { 2_000 } else { 50_000 };
    let hardware = std::thread::available_parallelism().map_or(4, |p| p.get());
    let thread_counts: Vec<usize> =
        [1usize, 2, 4, 8, 16, 32].into_iter().filter(|&t| t <= 4 * hardware).collect();

    println!(
        "## E7 — Fetch&Increment throughput (ops/s), {} hardware threads, {} ops/thread\n",
        hardware, ops_per_thread
    );
    let mut header = vec!["counter".to_owned()];
    header.extend(thread_counts.iter().map(|t| format!("{t} thr")));
    let mut table = Table::new(header);

    let suite = comparison_suite(w);
    for named in &suite {
        let mut row = vec![named.name.clone()];
        for &threads in &thread_counts {
            let counter = NetworkCounter::new(named.name.clone(), &named.network);
            let m = measure_throughput(&counter, threads, ops_per_thread);
            row.push(format!("{:.0}k", m.ops_per_second / 1_000.0));
        }
        table.push_row(row);
    }
    enum Extra {
        Prism,
        Central,
        Mutex,
    }
    for (name, kind) in [
        ("prism DiffTree", Extra::Prism),
        ("central fetch_add", Extra::Central),
        ("mutex counter", Extra::Mutex),
    ] {
        let mut row = vec![name.to_owned()];
        for &threads in &thread_counts {
            let ops = match kind {
                Extra::Prism => {
                    let counter = DiffractingCounter::new(w, 8, 128);
                    measure_throughput(&counter, threads, ops_per_thread).ops_per_second
                }
                Extra::Central => {
                    measure_throughput(&CentralCounter::new(), threads, ops_per_thread)
                        .ops_per_second
                }
                Extra::Mutex => {
                    measure_throughput(&LockCounter::new(), threads, ops_per_thread).ops_per_second
                }
            };
            row.push(format!("{:.0}k", ops / 1_000.0));
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Notes: absolute numbers depend on the machine; the figures of interest are the\n\
         relative trends — the centralized counters stop scaling once threads contend on\n\
         one cache line, while the network counters degrade much more gently and the\n\
         wide-output C(w, w·lgw) tracks or beats the other counting networks at high\n\
         thread counts (the paper's throughput claim)."
    );
}
