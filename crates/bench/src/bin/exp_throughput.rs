//! Experiment E7 — concurrent Fetch&Increment throughput (the IPPS'98 /
//! Klein experimental comparison, on threads instead of ten SPARC
//! workstations).
//!
//! Drives every counter in the comparison suite (plus the centralized
//! baselines) with an increasing number of threads and reports operations
//! per second. With `--json`, emits the machine-readable
//! [`bench::trajectory::ThroughputSuiteJson`] document the `exp_bench`
//! trajectory aggregator ingests. The workload draws no random numbers —
//! `--seed` is accepted and recorded in the JSON so trajectory cells from
//! different PRs are labelled apples-to-apples.
//!
//! Run with: `cargo run --release -p bench --bin exp_throughput
//! [-- --quick] [--json <path>] [--seed <u64>]`

use bench::trajectory::{ThroughputCell, ThroughputSuiteJson};
use bench::{comparison_suite, kilo_rate, Table};
use counting_runtime::{
    measure_throughput, CentralCounter, DiffractingCounter, LockCounter, NetworkCounter,
    SharedCounter, ThroughputMeasurement,
};

/// Default `--seed` (recorded in the JSON; the workload is deterministic
/// modulo thread scheduling either way).
const DEFAULT_SEED: u64 = 0xE7;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());
    let seed: u64 = args.iter().position(|a| a == "--seed").map_or(DEFAULT_SEED, |i| {
        args.get(i + 1).expect("--seed requires a value").parse().expect("--seed takes a u64")
    });

    let w = 16usize;
    let ops_per_thread: u64 = if quick { 2_000 } else { 50_000 };
    let hardware = std::thread::available_parallelism().map_or(4, |p| p.get());
    let thread_counts: Vec<usize> =
        [1usize, 2, 4, 8, 16, 32].into_iter().filter(|&t| t <= 4 * hardware).collect();

    println!(
        "## E7 — Fetch&Increment throughput (ops/s), {} hardware threads, {} ops/thread\n",
        hardware, ops_per_thread
    );
    let mut header = vec!["counter".to_owned()];
    header.extend(thread_counts.iter().map(|t| format!("{t} thr")));
    let mut table = Table::new(header);
    let mut cells: Vec<ThroughputCell> = Vec::new();

    let record = |m: &ThroughputMeasurement, cells: &mut Vec<ThroughputCell>| -> String {
        cells.push(ThroughputCell {
            counter: m.counter.clone(),
            threads: m.threads,
            ops_per_thread: m.ops_per_thread,
            total_ops: m.total_ops,
            elapsed_secs: m.elapsed.as_secs_f64(),
            ops_per_second: m.ops_per_second,
        });
        kilo_rate(m.ops_per_second)
    };

    let suite = comparison_suite(w);
    for named in &suite {
        let mut row = vec![named.name.clone()];
        for &threads in &thread_counts {
            let counter = NetworkCounter::new(named.name.clone(), &named.network);
            let m = measure_throughput(&counter, threads, ops_per_thread);
            row.push(record(&m, &mut cells));
        }
        table.push_row(row);
    }
    type CounterFactory = Box<dyn Fn() -> Box<dyn SharedCounter>>;
    let extras: [(&str, CounterFactory); 3] = [
        ("prism DiffTree", Box::new(move || Box::new(DiffractingCounter::new(w, 8, 128)))),
        ("central fetch_add", Box::new(|| Box::new(CentralCounter::new()))),
        ("mutex counter", Box::new(|| Box::new(LockCounter::new()))),
    ];
    for (name, make) in &extras {
        let mut row = vec![(*name).to_owned()];
        for &threads in &thread_counts {
            let counter = make();
            let mut m = measure_throughput(counter.as_ref(), threads, ops_per_thread);
            // Table rows group by the display name, not the counter's own
            // describe() (the prism row spans the suite's tree widths).
            m.counter = (*name).to_owned();
            row.push(record(&m, &mut cells));
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Notes: absolute numbers depend on the machine; the figures of interest are the\n\
         relative trends — the centralized counters stop scaling once threads contend on\n\
         one cache line, while the network counters degrade much more gently and the\n\
         wide-output C(w, w·lgw) tracks or beats the other counting networks at high\n\
         thread counts (the paper's throughput claim)."
    );

    if let Some(path) = json_path {
        let doc = ThroughputSuiteJson { seed, quick, cells };
        let json = serde_json::to_string(&doc).expect("cells serialize");
        std::fs::write(&path, &json).expect("write JSON report file");
        println!("JSON written to {path}");
    }
}
