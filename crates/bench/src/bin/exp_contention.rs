//! Experiment E5 — amortized contention sweep (Theorem 6.7 and the
//! comparison of Section 1.3.1).
//!
//! For each network in the comparison suite, sweeps the concurrency `n`
//! and reports the measured amortized contention (stalls per token) under
//! the lock-step schedule, next to the theoretical bounds. Also reports
//! the greedy-hotspot adversary for the diffracting tree, where the
//! difference matters most.
//!
//! Accepts an optional argument `--quick` to shrink the token counts (used
//! in smoke tests).
//!
//! Run with: `cargo run --release -p bench --bin exp_contention`

use bench::{comparison_suite, Table};
use counting::{bitonic_contention_estimate, cwt_contention_bound, periodic_contention_estimate};
use counting_sim::{measure_contention, SchedulerKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let w = 16usize;
    let lgw = w.trailing_zeros() as usize;
    let tokens_per_process: u64 = if quick { 10 } else { 60 };
    let concurrencies = [w / 2, w, 2 * w, 4 * w, 8 * w, 16 * w];

    println!("## E5a — measured amortized contention, round-robin schedule, w = {w}\n");
    let mut header = vec!["network".to_owned()];
    header.extend(concurrencies.iter().map(|n| format!("n={n}")));
    let mut table = Table::new(header.clone());
    for named in comparison_suite(w) {
        let mut row = vec![named.name.clone()];
        for &n in &concurrencies {
            let m = tokens_per_process * n as u64;
            let r = measure_contention(&named.network, n, m, SchedulerKind::RoundRobin, 1);
            row.push(format!("{:.1}", r.amortized_contention));
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());

    println!("## E5b — the same sweep under the greedy-hotspot adversary\n");
    let mut table = Table::new(header.clone());
    for named in comparison_suite(w) {
        let mut row = vec![named.name.clone()];
        for &n in &concurrencies {
            let m = tokens_per_process * n as u64;
            let r = measure_contention(&named.network, n, m, SchedulerKind::GreedyHotspot, 1);
            row.push(format!("{:.1}", r.amortized_contention));
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());

    println!("## E5c — theoretical references at the same parameters\n");
    let mut table = Table::new(header);
    type BoundFn = Box<dyn Fn(usize) -> f64>;
    let bounds: Vec<(String, BoundFn)> = vec![
        (format!("Thm 6.7, t={w}"), Box::new(move |n| cwt_contention_bound(n, w, w))),
        (format!("Thm 6.7, t={}", w * lgw), Box::new(move |n| cwt_contention_bound(n, w, w * lgw))),
        ("bitonic Θ(n·lg²w/w)".to_owned(), Box::new(move |n| bitonic_contention_estimate(n, w))),
        ("periodic O(n·lg³w/w)".to_owned(), Box::new(move |n| periodic_contention_estimate(n, w))),
        ("diffracting tree Θ(n)".to_owned(), Box::new(|n| n as f64)),
    ];
    for (name, f) in &bounds {
        let mut row = vec![name.clone()];
        for &n in &concurrencies {
            row.push(format!("{:.1}", f(n)));
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());

    println!("## E5d — effect of the output width t at fixed w = {w}, n = {}\n", 8 * w);
    let n = 8 * w;
    let m = tokens_per_process * n as u64;
    let mut table = Table::new(vec![
        "t".to_owned(),
        "depth".to_owned(),
        "measured contention".to_owned(),
        "Thm 6.7 bound".to_owned(),
    ]);
    for p in [1usize, 2, 4, 8, 16] {
        let t = w * p;
        let net = counting::counting_network(w, t).expect("valid");
        let r = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 1);
        table.push_row(vec![
            t.to_string(),
            net.depth().to_string(),
            format!("{:.1}", r.amortized_contention),
            format!("{:.1}", cwt_contention_bound(n, w, t)),
        ]);
    }
    println!("{}", table.to_markdown());
}
