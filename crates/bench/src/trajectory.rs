//! The recorded benchmark trajectory: a committed, machine-readable
//! history of this repository's performance claims.
//!
//! Every PR that touches a hot path records a `BENCH_<tag>.json` file at
//! the repo root via the `exp_bench` binary. The file holds
//! [`BenchRecord`] cells — one per (suite, scenario, counter, threads,
//! batching) — aggregated from the JSON outputs of `exp_throughput`,
//! `exp_elimination` and `exp_service`, plus two suites measured natively
//! by `exp_bench` itself:
//!
//! * `hot-path` — flat-route [`counting_runtime::CompiledNetwork`]
//!   traversal versus the retained boxed-route baseline
//!   ([`counting_runtime::BoxedRouteNetwork`]);
//! * `id-lease` — [`counting_service::SharedIdGenerator`] lease-cached id
//!   grants versus per-operation `next` on the same backing counter.
//!
//! The comparator loads all committed `BENCH_*.json` files, prints a
//! per-cell ratio table, and treats any file that fails the typed parse
//! or carries a different [`SCHEMA_VERSION`] as **schema drift** (a hard
//! error); regression ratios themselves are reported, never gated —
//! CI boxes vary too much for absolute rates to be a gate.
//!
//! All rates flow through [`counting_runtime::rate_over`], so a
//! degenerate measurement window is an explicit `null` cell, never an
//! absurd number (see `counting_runtime::MIN_MEASURED_WINDOW`).

use std::path::Path;
use std::sync::Arc;

use counting::counting_network;
use counting_runtime::{
    rate_over, BoxedRouteNetwork, CompiledNetwork, MeasuredWindow, NetworkCounter, SharedCounter,
};
use counting_service::SharedIdGenerator;
use serde::{Deserialize, Serialize};

use crate::Table;

/// Version of the `BENCH_*.json` schema. Bump only with a migration of
/// every committed trajectory file; the comparator refuses mixed
/// versions as schema drift.
pub const SCHEMA_VERSION: u64 = 1;

/// Filename prefix of committed trajectory files (`BENCH_<tag>.json`).
pub const TRAJECTORY_PREFIX: &str = "BENCH_";

/// Identifies the machine a trajectory was recorded on. Ratios are only
/// meaningful between trajectories whose fingerprints match; the
/// comparator prints the fingerprints so mismatches are visible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostFingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism when the trajectory was recorded.
    pub cpus: usize,
}

impl HostFingerprint {
    /// Fingerprints the current machine.
    #[must_use]
    pub fn detect() -> Self {
        Self {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            cpus: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }
}

/// One benchmark cell of the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Which suite produced the cell (`throughput`, `elimination`,
    /// `service`, `hot-path`, `id-lease`).
    pub suite: String,
    /// Workload scenario within the suite (e.g. `steady`, `zipf-churn`).
    pub scenario: String,
    /// The counter / backend / traversal form under test.
    pub counter: String,
    /// Threads driving the cell; `0` marks an aggregate over a thread
    /// matrix (e.g. the per-strategy E14c merge-rate aggregates).
    pub threads: usize,
    /// Batching regime label (`1`, `k=8`, `mixed<=16`, `lease[32]`, …).
    pub batching: String,
    /// Measured rate; `None` when the window was degenerate.
    pub ops_per_second: Option<f64>,
    /// Arena merge rate, for cells that have one (elimination suite).
    pub merge_rate: Option<f64>,
}

impl BenchRecord {
    /// The cell's identity — the key ratios are computed per.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}t/{}",
            self.suite, self.counter, self.scenario, self.threads, self.batching
        )
    }
}

/// One committed trajectory file: the cells of one PR's benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Schema version — see [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Which PR recorded this trajectory (`PR7`, `PR9`, …).
    pub pr_tag: String,
    /// The `--seed` every contributing suite ran under.
    pub seed: u64,
    /// Whether the suites ran in `--quick` mode.
    pub quick: bool,
    /// The machine the numbers were recorded on.
    pub host: HostFingerprint,
    /// The benchmark cells.
    pub records: Vec<BenchRecord>,
}

/// Structural validation beyond the typed parse: version match, non-empty
/// cell set, unique cell keys.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(trajectory: &Trajectory) -> Result<(), String> {
    if trajectory.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema version {} does not match this binary's {SCHEMA_VERSION}",
            trajectory.schema_version
        ));
    }
    if trajectory.pr_tag.is_empty() {
        return Err("empty pr_tag".to_owned());
    }
    if trajectory.records.is_empty() {
        return Err("no benchmark records".to_owned());
    }
    let mut keys: Vec<String> = trajectory.records.iter().map(BenchRecord::key).collect();
    keys.sort();
    for pair in keys.windows(2) {
        if pair[0] == pair[1] {
            return Err(format!("duplicate cell key {}", pair[0]));
        }
    }
    Ok(())
}

/// Keys of cells carrying **no** measurement at all (rate and merge rate
/// both `None`) — the degenerate-window cells `exp_bench` refuses to
/// commit.
#[must_use]
pub fn degenerate_cells(trajectory: &Trajectory) -> Vec<String> {
    trajectory
        .records
        .iter()
        .filter(|r| r.ops_per_second.is_none() && r.merge_rate.is_none())
        .map(BenchRecord::key)
        .collect()
}

/// Formats an optional rate as `{:.0}k` thousands per second, or `n/a`
/// for a degenerate window — the one rate formatter every experiment
/// table shares, so a `None` cell can never print as a number.
#[must_use]
pub fn kilo_rate(rate: Option<f64>) -> String {
    rate.map_or_else(|| "n/a".to_owned(), |r| format!("{:.0}k", r / 1_000.0))
}

// ---------------------------------------------------------------------------
// Suite JSON shapes
// ---------------------------------------------------------------------------

/// The JSON document `exp_throughput --json` writes — defined here so the
/// emitter and the `exp_bench` ingester share one schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputSuiteJson {
    /// The seed the run was invoked with (recorded for apples-to-apples
    /// trajectory cells; the workload itself draws no random numbers).
    pub seed: u64,
    /// Whether the run was `--quick`.
    pub quick: bool,
    /// One cell per counter × thread count.
    pub cells: Vec<ThroughputCell>,
}

/// One `exp_throughput` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputCell {
    /// Counter description.
    pub counter: String,
    /// Threads driving the counter.
    pub threads: usize,
    /// Values obtained per thread.
    pub ops_per_thread: u64,
    /// Total values obtained.
    pub total_ops: u64,
    /// Measured window in seconds.
    pub elapsed_secs: f64,
    /// Aggregate rate; `None` for a degenerate window.
    pub ops_per_second: Option<f64>,
}

/// The subset of `exp_elimination`'s JSON the trajectory ingests.
/// Deserialization ignores the document's other fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EliminationIngest {
    /// The seed recorded by the run.
    pub seed: u64,
    /// The waiting strategy of the E14/E14b tables.
    pub strategy: String,
    /// All stress reports (E14 regimes + E14c matrix cells).
    pub stress: Vec<EliminationStressCell>,
    /// Per-strategy aggregate merge rates (E14c).
    pub strategy_aggregates: Vec<StrategyAggregateIngest>,
}

/// The per-cell subset of `counting_runtime::StressReport` the
/// trajectory needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EliminationStressCell {
    /// Counter description.
    pub counter: String,
    /// Stress scenario label.
    pub scenario: String,
    /// Threads driving the cell.
    pub threads: usize,
    /// Batching regime label.
    pub batch: String,
    /// Aggregate rate; `None` for a degenerate window.
    pub values_per_second: Option<f64>,
}

/// One per-strategy aggregate merge rate from E14c.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyAggregateIngest {
    /// Waiting strategy label.
    pub strategy: String,
    /// Merged operations per op across the whole matrix.
    pub merge_rate: f64,
}

/// The JSON document `exp_service --json` writes (the report array is
/// wrapped so the seed rides along); `exp_bench` ingests the subset
/// below, deserialization ignores the rest of each report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceIngest {
    /// The seed the batch-size and tenant-pick streams derive from.
    pub seed: u64,
    /// One report per backend configuration.
    pub reports: Vec<ServiceBackendIngest>,
}

/// The per-backend subset of `exp_service`'s report the trajectory needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceBackendIngest {
    /// Backend configuration label.
    pub backend: String,
    /// Tenant count.
    pub tenants: usize,
    /// Worker thread count.
    pub threads: usize,
    /// Aggregate rate; `None` for a degenerate window.
    pub aggregate_values_per_second: Option<f64>,
}

/// The JSON document `exp_server --json` writes; `exp_bench` ingests
/// the subset below (latency histograms and violation tallies stay in
/// the experiment's own artifact — the trajectory records rates only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerIngest {
    /// The seed the arrival schedule and client mix derive from.
    pub seed: u64,
    /// One report per backend configuration.
    pub reports: Vec<ServerBackendIngest>,
}

/// The per-backend subset of `exp_server`'s report the trajectory needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerBackendIngest {
    /// Backend configuration label.
    pub backend: String,
    /// Simulated clients driven through the run.
    pub clients: u64,
    /// Driver threads multiplexing those clients over sockets.
    pub drivers: usize,
    /// Aggregate HTTP request rate; `None` for a degenerate window.
    pub aggregate_requests_per_second: Option<f64>,
    /// Per-endpoint request rates.
    pub endpoints: Vec<ServerEndpointIngest>,
}

/// One endpoint family's rate inside a backend's serving report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerEndpointIngest {
    /// Endpoint family label (`ticket`, `status`, `lease`, …).
    pub endpoint: String,
    /// Requests served on this endpoint.
    pub requests: u64,
    /// Endpoint rate; `None` for a degenerate window.
    pub requests_per_second: Option<f64>,
}

/// The JSON document `exp_cluster --json` writes; `exp_bench` ingests
/// the subset below. Cluster rates are per *virtual* kilotick — fully
/// deterministic under the recorded seed, so these cells never carry
/// host noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterIngest {
    /// The seed every cell's demand/churn/fault streams derive from.
    pub seed: u64,
    /// The injected calibration mutation, if any (mutated sweeps are
    /// never recorded into a trajectory).
    pub mutation: Option<String>,
    /// One report per sweep cell.
    pub reports: Vec<ClusterCellIngest>,
}

/// The per-cell subset of `exp_cluster`'s report the trajectory needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterCellIngest {
    /// Worker node count.
    pub workers: u64,
    /// Coordinator replicas (1 = single durable coordinator; 3/5 = the
    /// replicated quorum log, keyed into the scenario as `@rN`).
    pub replicas: u64,
    /// Fault-level label (`reliable`, `lossy`, `chaos`).
    pub fault: String,
    /// Churn-level label (`calm`, `churny`).
    pub churn: String,
    /// Values handed out across the cluster.
    pub handed: u64,
    /// Hand-outs per 1000 virtual ticks; `None` for a zero-length run.
    pub values_per_kilotick: Option<f64>,
}

// ---------------------------------------------------------------------------
// Suite → record conversion
// ---------------------------------------------------------------------------

fn push_unique(records: &mut Vec<BenchRecord>, record: BenchRecord) {
    // First occurrence wins: E14's steady mixed-elim cell and the E14c
    // matrix can produce the same key from runs with different op counts.
    if !records.iter().any(|r| r.key() == record.key()) {
        records.push(record);
    }
}

/// Converts an `exp_throughput` document into trajectory cells.
#[must_use]
pub fn records_from_throughput(doc: &ThroughputSuiteJson) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for cell in &doc.cells {
        push_unique(
            &mut out,
            BenchRecord {
                suite: "throughput".to_owned(),
                scenario: "steady".to_owned(),
                counter: cell.counter.clone(),
                threads: cell.threads,
                batching: "1".to_owned(),
                ops_per_second: cell.ops_per_second,
                merge_rate: None,
            },
        );
    }
    out
}

/// Converts an `exp_elimination` document into trajectory cells.
#[must_use]
pub fn records_from_elimination(doc: &EliminationIngest) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for cell in &doc.stress {
        push_unique(
            &mut out,
            BenchRecord {
                suite: "elimination".to_owned(),
                scenario: cell.scenario.clone(),
                counter: cell.counter.clone(),
                threads: cell.threads,
                batching: cell.batch.clone(),
                ops_per_second: cell.values_per_second,
                merge_rate: None,
            },
        );
    }
    for aggregate in &doc.strategy_aggregates {
        push_unique(
            &mut out,
            BenchRecord {
                suite: "elimination".to_owned(),
                scenario: "matrix-aggregate".to_owned(),
                counter: format!("arena[{}]", aggregate.strategy),
                threads: 0,
                batching: "mixed".to_owned(),
                ops_per_second: None,
                merge_rate: Some(aggregate.merge_rate),
            },
        );
    }
    out
}

/// Converts an `exp_service` document into trajectory cells.
#[must_use]
pub fn records_from_service(doc: &ServiceIngest) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for report in &doc.reports {
        push_unique(
            &mut out,
            BenchRecord {
                suite: "service".to_owned(),
                scenario: format!("zipf-churn/{}tenants", report.tenants),
                counter: report.backend.clone(),
                threads: report.threads,
                batching: "mixed<=4".to_owned(),
                ops_per_second: report.aggregate_values_per_second,
                merge_rate: None,
            },
        );
    }
    out
}

/// Converts an `exp_server` document into trajectory cells: one
/// aggregate cell per backend plus one per endpoint family, all under
/// the `serving` suite. "Ops" here are HTTP requests — the first cells
/// in the trajectory measured end-to-end over real sockets.
#[must_use]
pub fn records_from_server(doc: &ServerIngest) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for report in &doc.reports {
        push_unique(
            &mut out,
            BenchRecord {
                suite: "serving".to_owned(),
                scenario: "open-loop/aggregate".to_owned(),
                counter: report.backend.clone(),
                threads: report.drivers,
                batching: "http/keep-alive".to_owned(),
                ops_per_second: report.aggregate_requests_per_second,
                merge_rate: None,
            },
        );
        for endpoint in &report.endpoints {
            push_unique(
                &mut out,
                BenchRecord {
                    suite: "serving".to_owned(),
                    scenario: format!("open-loop/{}", endpoint.endpoint),
                    counter: report.backend.clone(),
                    threads: report.drivers,
                    batching: "http/keep-alive".to_owned(),
                    ops_per_second: endpoint.requests_per_second,
                    merge_rate: None,
                },
            );
        }
    }
    out
}

/// Converts an `exp_cluster` document into trajectory cells under the
/// `cluster` suite. "Ops" here are hand-outs per virtual kilotick — the
/// only deterministic rate in the trajectory (same seed, same number,
/// any host). Mutated sweeps are refused: a calibration run is not a
/// measurement.
#[must_use]
pub fn records_from_cluster(doc: &ClusterIngest) -> Vec<BenchRecord> {
    assert!(
        doc.mutation.is_none(),
        "refusing to record a mutated cluster sweep into the trajectory"
    );
    let mut out = Vec::new();
    for report in &doc.reports {
        // Replicated-coordinator cells key their scenario with `@rN`;
        // legacy single-coordinator cells keep their historical keys.
        let suffix =
            if report.replicas > 1 { format!("@r{}", report.replicas) } else { String::new() };
        push_unique(
            &mut out,
            BenchRecord {
                suite: "cluster".to_owned(),
                scenario: format!("{}/{}{}", report.fault, report.churn, suffix),
                counter: format!("cluster[{}nodes]", report.workers),
                threads: report.workers as usize,
                batching: "block-lease".to_owned(),
                ops_per_second: report.values_per_kilotick,
                merge_rate: None,
            },
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Native suites: hot-path and id-lease
// ---------------------------------------------------------------------------

/// Thread counts the native suites measure at — fixed, not
/// hardware-derived, so trajectory cells keep identical keys across
/// machines.
const NATIVE_THREADS: [usize; 2] = [1, 4];

fn measure_traversals<F>(traverse: F, threads: usize, ops_per_thread: u64) -> Option<f64>
where
    F: Fn(usize, u64) -> usize + Sync,
{
    let window = MeasuredWindow::new(threads);
    // Untimed warm-up before each worker enters the window: the very
    // first measurement of a process otherwise pays page faults, cold
    // caches and frequency ramp-up, which is noise the trajectory must
    // not record as a suite-order artifact.
    let warmup = (ops_per_thread / 10).min(10_000);
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let (window, traverse) = (&window, &traverse);
            scope.spawn(move || {
                let mut sink = 0usize;
                for i in 0..warmup {
                    sink = sink.wrapping_add(traverse(tid, i));
                }
                window.enter();
                for i in 0..ops_per_thread {
                    sink = sink.wrapping_add(traverse(tid, i));
                }
                window.exit();
                std::hint::black_box(sink);
            });
        }
    });
    rate_over(threads as u64 * ops_per_thread, window.elapsed())
}

/// Measures the `hot-path` suite: flat-route [`CompiledNetwork`]
/// traversal against the boxed-route baseline on `C(16,16)`, at the
/// fixed native thread counts.
#[must_use]
pub fn measure_hot_path(quick: bool) -> Vec<BenchRecord> {
    let w = 16usize;
    let net = counting_network(w, w).expect("valid parameters");
    let ops_per_thread: u64 = if quick { 20_000 } else { 400_000 };
    let mut out = Vec::new();
    for &threads in &NATIVE_THREADS {
        let flat = CompiledNetwork::new(&net);
        let rate = measure_traversals(
            |tid, i| flat.traverse((tid as u64 * 7 + i) as usize % w),
            threads,
            ops_per_thread,
        );
        out.push(BenchRecord {
            suite: "hot-path".to_owned(),
            scenario: "traverse".to_owned(),
            counter: format!("C({w},{w}) flat-route"),
            threads,
            batching: "1".to_owned(),
            ops_per_second: rate,
            merge_rate: None,
        });
        let boxed = BoxedRouteNetwork::new(&net);
        let rate = measure_traversals(
            |tid, i| boxed.traverse((tid as u64 * 7 + i) as usize % w),
            threads,
            ops_per_thread,
        );
        out.push(BenchRecord {
            suite: "hot-path".to_owned(),
            scenario: "traverse".to_owned(),
            counter: format!("C({w},{w}) boxed-route"),
            threads,
            batching: "1".to_owned(),
            ops_per_second: rate,
            merge_rate: None,
        });
    }
    out
}

/// Lease size the `id-lease` suite uses for the cached generator.
const ID_LEASE: usize = 32;

/// Measures the `id-lease` suite: [`SharedIdGenerator`] lease-cached
/// grants against per-operation `next` on the same network-backed
/// counter.
#[must_use]
pub fn measure_id_lease(quick: bool) -> Vec<BenchRecord> {
    let w = 16usize;
    let net = counting_network(w, w).expect("valid parameters");
    let ops_per_thread: u64 = if quick { 20_000 } else { 400_000 };
    let mut out = Vec::new();
    for &threads in &NATIVE_THREADS {
        let counter: Arc<dyn SharedCounter + Send + Sync> =
            Arc::new(NetworkCounter::new(format!("C({w},{w})"), &net));
        let per_op = Arc::clone(&counter);
        let rate = measure_traversals(|tid, _| per_op.next(tid) as usize, threads, ops_per_thread);
        out.push(BenchRecord {
            suite: "id-lease".to_owned(),
            scenario: "id-grant".to_owned(),
            counter: format!("C({w},{w}) per-op next"),
            threads,
            batching: "1".to_owned(),
            ops_per_second: rate,
            merge_rate: None,
        });
        let counter: Arc<dyn SharedCounter + Send + Sync> =
            Arc::new(NetworkCounter::new(format!("C({w},{w})"), &net));
        let cached = SharedIdGenerator::new(counter, ID_LEASE, 16);
        let rate =
            measure_traversals(|tid, _| cached.next_id(tid) as usize, threads, ops_per_thread);
        out.push(BenchRecord {
            suite: "id-lease".to_owned(),
            scenario: "id-grant".to_owned(),
            counter: format!("C({w},{w}) lease cache"),
            threads,
            batching: format!("lease[{ID_LEASE}]"),
            ops_per_second: rate,
            merge_rate: None,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

/// One trajectory loaded from disk, with its filename for reporting.
#[derive(Debug, Clone)]
pub struct LoadedTrajectory {
    /// File name (not path) the trajectory was loaded from.
    pub file: String,
    /// The parsed, validated trajectory.
    pub trajectory: Trajectory,
}

/// Numeric part of a PR tag (`PR12` → 12), for chronological ordering.
fn pr_number(tag: &str) -> u64 {
    let digits: String = tag.chars().filter(char::is_ascii_digit).collect();
    digits.parse().unwrap_or(0)
}

/// Loads every `BENCH_*.json` in `dir`, oldest PR first.
///
/// # Errors
///
/// Any file that fails the typed parse or [`validate`] is **schema
/// drift** and fails the whole load — committed trajectories must stay
/// readable by the current schema.
pub fn load_trajectories(dir: &Path) -> Result<Vec<LoadedTrajectory>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with(TRAJECTORY_PREFIX) && n.ends_with(".json"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let trajectory: Trajectory =
            serde_json::from_str(&text).map_err(|e| format!("schema drift in {name}: {e:?}"))?;
        validate(&trajectory).map_err(|e| format!("schema drift in {name}: {e}"))?;
        out.push(LoadedTrajectory { file: name, trajectory });
    }
    out.sort_by_key(|t| (pr_number(&t.trajectory.pr_tag), t.file.clone()));
    Ok(out)
}

fn cell_value(t: &Trajectory, key: &str) -> Option<f64> {
    t.records.iter().find(|r| r.key() == key).and_then(|r| r.ops_per_second.or(r.merge_rate))
}

/// Builds the per-cell ratio table over `trajectories` (oldest first; the
/// last entry is "current"). One row per cell key of the newest
/// trajectory: the value under each PR tag, and the newest/previous
/// ratio. Ratios are **reported, not gated** — absolute rates differ
/// across machines, so regressions are surfaced for a human.
#[must_use]
pub fn comparison_table(trajectories: &[LoadedTrajectory]) -> Table {
    let mut header = vec!["cell".to_owned()];
    for t in trajectories {
        header.push(t.trajectory.pr_tag.clone());
    }
    header.push("ratio vs prev".to_owned());
    let mut table = Table::new(header);
    let Some(newest) = trajectories.last() else {
        return table;
    };
    let prev = trajectories.len().checked_sub(2).map(|i| &trajectories[i]);
    for record in &newest.trajectory.records {
        let key = record.key();
        let mut row = vec![key.clone()];
        for t in trajectories {
            row.push(match cell_value(&t.trajectory, &key) {
                Some(v) if v >= 1_000.0 => format!("{:.0}k", v / 1_000.0),
                Some(v) => format!("{v:.2}"),
                None => "—".to_owned(),
            });
        }
        let ratio = match (
            prev.and_then(|p| cell_value(&p.trajectory, &key)),
            cell_value(&newest.trajectory, &key),
        ) {
            (Some(old), Some(new)) if old > 0.0 => format!("{:.2}x", new / old),
            _ => "—".to_owned(),
        };
        row.push(ratio);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(suite: &str, counter: &str, threads: usize, rate: Option<f64>) -> BenchRecord {
        BenchRecord {
            suite: suite.to_owned(),
            scenario: "s".to_owned(),
            counter: counter.to_owned(),
            threads,
            batching: "1".to_owned(),
            ops_per_second: rate,
            merge_rate: None,
        }
    }

    fn trajectory(records: Vec<BenchRecord>) -> Trajectory {
        Trajectory {
            schema_version: SCHEMA_VERSION,
            pr_tag: "PR7".to_owned(),
            seed: 7,
            quick: true,
            host: HostFingerprint::detect(),
            records,
        }
    }

    #[test]
    fn validate_rejects_version_drift_and_duplicate_keys() {
        let good = trajectory(vec![record("a", "x", 1, Some(1.0))]);
        assert_eq!(validate(&good), Ok(()));
        let mut drifted = good.clone();
        drifted.schema_version = SCHEMA_VERSION + 1;
        assert!(validate(&drifted).unwrap_err().contains("schema version"));
        let dup = trajectory(vec![record("a", "x", 1, Some(1.0)), record("a", "x", 1, Some(2.0))]);
        assert!(validate(&dup).unwrap_err().contains("duplicate cell key"));
        assert!(validate(&trajectory(Vec::new())).is_err());
    }

    #[test]
    fn degenerate_cells_are_the_fully_unmeasured_ones() {
        let mut merge_only = record("elim", "arena", 0, None);
        merge_only.merge_rate = Some(0.5);
        let t =
            trajectory(vec![record("a", "x", 1, Some(1.0)), record("a", "y", 1, None), merge_only]);
        assert_eq!(degenerate_cells(&t), vec!["a/y/s/1t/1".to_owned()]);
    }

    #[test]
    fn kilo_rate_formats_none_as_na() {
        assert_eq!(kilo_rate(Some(12_345.0)), "12k");
        assert_eq!(kilo_rate(None), "n/a");
    }

    #[test]
    fn conversions_dedup_first_wins() {
        let doc = EliminationIngest {
            seed: 1,
            strategy: "spin-yield".to_owned(),
            stress: vec![
                EliminationStressCell {
                    counter: "c".to_owned(),
                    scenario: "steady".to_owned(),
                    threads: 8,
                    batch: "mixed".to_owned(),
                    values_per_second: Some(100.0),
                },
                EliminationStressCell {
                    counter: "c".to_owned(),
                    scenario: "steady".to_owned(),
                    threads: 8,
                    batch: "mixed".to_owned(),
                    values_per_second: Some(999.0),
                },
            ],
            strategy_aggregates: vec![StrategyAggregateIngest {
                strategy: "park".to_owned(),
                merge_rate: 0.8,
            }],
        };
        let records = records_from_elimination(&doc);
        assert_eq!(records.len(), 2, "duplicate stress key collapsed: {records:?}");
        assert_eq!(records[0].ops_per_second, Some(100.0), "first occurrence wins");
        assert_eq!(records[1].merge_rate, Some(0.8));
        assert_eq!(records[1].threads, 0, "aggregates carry the 0 thread marker");
    }

    #[test]
    fn server_conversion_emits_aggregate_and_per_endpoint_cells() {
        let doc = ServerIngest {
            seed: 0xE17,
            reports: vec![ServerBackendIngest {
                backend: "network[w=4,elim]".to_owned(),
                clients: 3072,
                drivers: 8,
                aggregate_requests_per_second: Some(30_000.0),
                endpoints: vec![
                    ServerEndpointIngest {
                        endpoint: "ticket".to_owned(),
                        requests: 1024,
                        requests_per_second: Some(10_000.0),
                    },
                    ServerEndpointIngest {
                        endpoint: "status".to_owned(),
                        requests: 2048,
                        requests_per_second: Some(20_000.0),
                    },
                ],
            }],
        };
        let records = records_from_server(&doc);
        assert_eq!(records.len(), 3, "aggregate + one cell per endpoint: {records:?}");
        assert!(records.iter().all(|r| r.suite == "serving"));
        assert!(records.iter().all(|r| r.batching == "http/keep-alive"));
        assert_eq!(records[0].scenario, "open-loop/aggregate");
        assert_eq!(records[0].ops_per_second, Some(30_000.0));
        assert_eq!(records[1].scenario, "open-loop/ticket");
        assert_eq!(records[2].scenario, "open-loop/status");
        let t = trajectory(records);
        assert_eq!(validate(&t), Ok(()), "serving cells must form unique keys");
    }

    #[test]
    fn cluster_conversion_emits_one_cell_per_sweep_point() {
        let doc = ClusterIngest {
            seed: 0xE18,
            mutation: None,
            reports: vec![
                ClusterCellIngest {
                    workers: 4,
                    replicas: 1,
                    fault: "lossy".to_owned(),
                    churn: "churny".to_owned(),
                    handed: 900,
                    values_per_kilotick: Some(112.5),
                },
                ClusterCellIngest {
                    workers: 8,
                    replicas: 1,
                    fault: "chaos".to_owned(),
                    churn: "calm".to_owned(),
                    handed: 1600,
                    values_per_kilotick: Some(200.0),
                },
                ClusterCellIngest {
                    workers: 4,
                    replicas: 3,
                    fault: "lossy".to_owned(),
                    churn: "churny".to_owned(),
                    handed: 850,
                    values_per_kilotick: Some(106.0),
                },
            ],
        };
        let records = records_from_cluster(&doc);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.suite == "cluster"));
        assert!(records.iter().all(|r| r.batching == "block-lease"));
        assert_eq!(records[0].scenario, "lossy/churny");
        assert_eq!(records[0].counter, "cluster[4nodes]");
        assert_eq!(records[0].threads, 4);
        assert_eq!(records[0].ops_per_second, Some(112.5));
        assert_eq!(records[1].counter, "cluster[8nodes]");
        // Replicated cells key their scenario with the replica count,
        // so they never collide with the legacy single-coordinator key.
        assert_eq!(records[2].scenario, "lossy/churny@r3");
        assert_eq!(records[2].counter, "cluster[4nodes]");
        let t = trajectory(records);
        assert_eq!(validate(&t), Ok(()), "cluster cells must form unique keys");
    }

    #[test]
    #[should_panic(expected = "mutated cluster sweep")]
    fn cluster_conversion_refuses_a_mutated_sweep() {
        let doc = ClusterIngest {
            seed: 0xE18,
            mutation: Some("skip-recovery".to_owned()),
            reports: Vec::new(),
        };
        let _ = records_from_cluster(&doc);
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let t = trajectory(vec![record("a", "x", 1, Some(1.5)), record("a", "y", 2, None)]);
        let json = serde_json::to_string(&t).expect("serializes");
        let back: Trajectory = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn comparison_table_reports_ratios_newest_vs_previous() {
        let mut old = trajectory(vec![record("a", "x", 1, Some(100.0))]);
        old.pr_tag = "PR6".to_owned();
        let new = trajectory(vec![record("a", "x", 1, Some(150.0))]);
        let loaded = vec![
            LoadedTrajectory { file: "BENCH_PR6.json".to_owned(), trajectory: old },
            LoadedTrajectory { file: "BENCH_PR7.json".to_owned(), trajectory: new },
        ];
        let md = comparison_table(&loaded).to_markdown();
        assert!(md.contains("1.50x"), "ratio missing from:\n{md}");
        assert!(md.contains("PR6") && md.contains("PR7"));
    }

    #[test]
    fn pr_tags_order_numerically_not_lexically() {
        assert!(pr_number("PR10") > pr_number("PR9"));
        assert_eq!(pr_number("no-digits"), 0);
    }

    #[test]
    fn native_suites_produce_unique_well_formed_cells() {
        // Tiny op count: this is a schema/shape test, not a measurement.
        let mut records = measure_hot_path(true);
        records.truncate(2);
        let t = trajectory(records);
        assert_eq!(validate(&t), Ok(()));
        assert!(t.records.iter().all(|r| r.suite == "hot-path"));
    }
}
