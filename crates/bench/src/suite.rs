//! The standard comparison suite: the networks the paper evaluates
//! against each other.

use balnet::Network;
use baselines::{bitonic_counting_network, diffracting_tree, periodic_counting_network};
use counting::counting_network;

/// A network together with the name used in result tables.
#[derive(Debug, Clone)]
pub struct NamedNetwork {
    /// Display name, e.g. `"C(16,64)"`.
    pub name: String,
    /// The topology.
    pub network: Network,
}

impl NamedNetwork {
    fn new(name: String, network: Network) -> Self {
        Self { name, network }
    }
}

/// Builds the comparison suite for input width `w`:
/// `C(w, w)`, `C(w, w·lgw)`, `Bitonic[w]`, `Periodic[w]` and
/// `DiffTree[w]`.
///
/// # Panics
///
/// Panics if `w` is not a power of two `>= 2`.
#[must_use]
pub fn comparison_suite(w: usize) -> Vec<NamedNetwork> {
    assert!(w >= 2 && w.is_power_of_two(), "w must be a power of two >= 2");
    let lgw = (w.trailing_zeros() as usize).max(1);
    vec![
        NamedNetwork::new(format!("C({w},{w})"), counting_network(w, w).expect("valid")),
        NamedNetwork::new(
            format!("C({w},{})", w * lgw),
            counting_network(w, w * lgw).expect("valid"),
        ),
        NamedNetwork::new(format!("Bitonic[{w}]"), bitonic_counting_network(w).expect("valid")),
        NamedNetwork::new(format!("Periodic[{w}]"), periodic_counting_network(w).expect("valid")),
        NamedNetwork::new(format!("DiffTree[{w}]"), diffracting_tree(w).expect("valid")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_the_five_comparison_networks() {
        let suite = comparison_suite(8);
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].name, "C(8,8)");
        assert_eq!(suite[1].name, "C(8,24)");
        assert!(suite.iter().all(|n| n.network.output_width() >= 8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_width() {
        let _ = comparison_suite(6);
    }
}
