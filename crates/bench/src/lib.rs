//! # bench — experiment harness shared helpers
//!
//! The `bench` crate hosts two kinds of executables:
//!
//! * **Criterion benches** (`benches/`) — wall-clock measurements of
//!   construction, evaluation, simulation and concurrent throughput, one
//!   bench per experiment family of `DESIGN.md`.
//! * **Experiment binaries** (`src/bin/exp_*.rs`) — deterministic programs
//!   that print the Markdown tables recorded in `EXPERIMENTS.md`
//!   (depth tables, contention sweeps, block breakdowns, throughput
//!   comparisons, smoothing and sorting summaries).
//!
//! This library holds what both share: the standard comparison suite of
//! networks, a tiny Markdown table formatter, and the [`trajectory`]
//! module — the schema, aggregation, native suites and comparator behind
//! the committed `BENCH_*.json` benchmark trajectory (see `exp_bench`).

#![warn(missing_docs)]

pub mod suite;
pub mod table;
pub mod trajectory;

pub use suite::{comparison_suite, NamedNetwork};
pub use table::Table;
pub use trajectory::{kilo_rate, BenchRecord, HostFingerprint, Trajectory, SCHEMA_VERSION};
