//! Flat-vs-boxed traversal equivalence: the flat-route
//! `CompiledNetwork` (one contiguous route table + packed per-balancer
//! meta words, with a bitmask fast path for power-of-two fan-outs) must
//! be observationally identical to the retained `BoxedRouteNetwork`
//! baseline on every topology family the paper evaluates — the
//! efficient `C(w,t)` (both depth regimes), the bitonic and periodic
//! baselines, and the diffracting tree.

use bench::comparison_suite;
use counting_runtime::{BoxedRouteNetwork, CompiledNetwork};

const TOKENS: usize = 600;

#[test]
fn flat_and_boxed_routes_agree_token_for_token_on_every_family() {
    for named in comparison_suite(8) {
        let flat = CompiledNetwork::new(&named.network);
        let boxed = BoxedRouteNetwork::new(&named.network);
        assert_eq!(flat.input_width(), boxed.input_width(), "{}", named.name);
        assert_eq!(flat.output_width(), boxed.output_width(), "{}", named.name);
        let w = flat.input_width();
        for i in 0..TOKENS {
            let wire = (i * 7 + 3) % w;
            assert_eq!(
                flat.traverse(wire),
                boxed.traverse(wire),
                "{}: token {i} on wire {wire} diverged",
                named.name
            );
        }
        assert_eq!(
            flat.balancer_loads(),
            boxed.balancer_loads(),
            "{}: same tokens must load every balancer identically",
            named.name
        );
    }
}

#[test]
fn flat_quiescent_counts_match_the_outputs_actually_handed_out() {
    for named in comparison_suite(8) {
        let flat = CompiledNetwork::new(&named.network);
        let w = flat.input_width();
        let mut seen = vec![0u64; flat.output_width()];
        for i in 0..TOKENS {
            seen[flat.traverse((i * 5 + 1) % w)] += 1;
        }
        assert_eq!(
            flat.quiescent_output_counts(),
            seen,
            "{}: quiescent reconstruction disagrees with the observed outputs",
            named.name
        );
    }
}
