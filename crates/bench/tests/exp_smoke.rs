//! Smoke tests for the experiment binaries: run each `exp_*` with the
//! `--quick` parameter set (tiny token counts) and check it exits
//! successfully and prints at least one Markdown table. This keeps the
//! bench bins from silently rotting — they are compiled and executed on
//! every `cargo test` run.

use std::process::Command;

fn run_quick(exe: &str, args: &[&str]) -> String {
    let output = Command::new(exe).args(args).output().expect("binary should spawn");
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("experiment output is UTF-8")
}

fn assert_prints_markdown_table(exe: &str, args: &[&str]) {
    let stdout = run_quick(exe, args);
    assert!(
        stdout.lines().any(|l| l.starts_with("| ")),
        "{exe} printed no Markdown table:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("## ")),
        "{exe} printed no section heading:\n{stdout}"
    );
}

#[test]
fn exp_depth_prints_tables() {
    // exp_depth is all closed-form construction; it has no --quick knob
    // and is already fast.
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_depth"), &[]);
}

#[test]
fn exp_contention_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_contention"), &["--quick"]);
}

#[test]
fn exp_blocks_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_blocks"), &["--quick"]);
}

#[test]
fn exp_smoothing_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_smoothing"), &["--quick"]);
}

#[test]
fn exp_sorting_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_sorting"), &["--quick"]);
}

#[test]
fn exp_ablation_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_ablation"), &["--quick"]);
}

#[test]
fn exp_throughput_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_throughput"), &["--quick"]);
}
