//! Smoke tests for the experiment binaries: run each `exp_*` with the
//! `--quick` parameter set (tiny token counts) and check it exits
//! successfully and prints at least one Markdown table. This keeps the
//! bench bins from silently rotting — they are compiled and executed on
//! every `cargo test` run.

use std::process::Command;

fn run_quick(exe: &str, args: &[&str]) -> String {
    let output = Command::new(exe).args(args).output().expect("binary should spawn");
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("experiment output is UTF-8")
}

fn assert_prints_markdown_table(exe: &str, args: &[&str]) {
    let stdout = run_quick(exe, args);
    assert!(
        stdout.lines().any(|l| l.starts_with("| ")),
        "{exe} printed no Markdown table:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("## ")),
        "{exe} printed no section heading:\n{stdout}"
    );
}

#[test]
fn exp_depth_prints_tables() {
    // exp_depth is all closed-form construction; it has no --quick knob
    // and is already fast.
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_depth"), &[]);
}

#[test]
fn exp_contention_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_contention"), &["--quick"]);
}

#[test]
fn exp_blocks_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_blocks"), &["--quick"]);
}

#[test]
fn exp_smoothing_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_smoothing"), &["--quick"]);
}

#[test]
fn exp_sorting_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_sorting"), &["--quick"]);
}

#[test]
fn exp_ablation_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_ablation"), &["--quick"]);
}

#[test]
fn exp_throughput_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_throughput"), &["--quick"]);
}

/// Asserts that every report in the serialized array has `field` equal to
/// zero: the number of `"field":0` occurrences must equal the number of
/// `"field":` occurrences (values are plain non-negative integers, so a
/// non-zero value never starts with the digit 0).
fn assert_every_report_has_zero(json: &str, field: &str) {
    let total = json.matches(&format!("\"{field}\":")).count();
    let zeros = json.matches(&format!("\"{field}\":0")).count();
    assert!(total > 0, "no `{field}` fields found in JSON:\n{json}");
    assert_eq!(zeros, total, "{} report(s) have non-zero `{field}`:\n{json}", total - zeros);
}

#[test]
fn exp_stress_quick_prints_tables_and_json() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_stress"), &["--quick"]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("## ")), "no section heading:\n{stdout}");
    // Without --json, the reports are printed as a JSON array on stdout.
    // Every report — including the recorded E13b runs that never reach a
    // rate table cell — must satisfy the counting contract.
    let json_line = stdout.lines().find(|l| l.starts_with('[')).expect("no JSON array printed");
    for field in ["duplicates", "missing", "out_of_range"] {
        assert_every_report_has_zero(json_line, field);
    }
    // No table cell may report a broken invariant (the notes paragraph
    // legitimately mentions the marker).
    assert!(
        !stdout.lines().any(|l| l.starts_with("| ") && l.contains("BROKEN")),
        "stress matrix reported a violation:\n{stdout}"
    );
}

#[test]
fn exp_elimination_quick_prints_tables_and_passes_its_gate() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_elimination"), &["--quick"]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("## ")), "no section heading:\n{stdout}");
    // Demonstration cells (raw mixed-size strides) may report gaps, but
    // no cell may be BROKEN — the binary exits nonzero then, which
    // run_quick already rejects; double-check the table text too.
    assert!(
        !stdout.lines().any(|l| l.starts_with("| ") && l.contains("BROKEN")),
        "elimination matrix reported an unexpected violation:\n{stdout}"
    );
    // Both tables are present: the rate matrix and the measured-vs-model
    // arena statistics.
    assert!(stdout.contains("E14b"), "missing arena statistics table:\n{stdout}");
    assert!(stdout.contains("model (counting-sim)"), "missing model row:\n{stdout}");
}

#[test]
fn exp_elimination_quick_writes_json_file() {
    let path =
        std::env::temp_dir().join(format!("exp_elimination_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_elimination"), &["--quick", "--json", path_str]);
    assert!(stdout.contains("JSON written to"), "missing file notice:\n{stdout}");
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(json.contains("\"stress\":["), "missing stress reports: {json}");
    assert!(json.contains("\"arena_measured\":["), "missing measured arena stats: {json}");
    assert!(json.contains("\"arena_model\":{"), "missing model report: {json}");
    // The elimination-path reports must be exact; raw mixed-stride
    // demonstrations may gap but must never duplicate.
    assert_every_report_has_zero(&json, "duplicates");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_stress_quick_writes_json_file() {
    // Unique per-process path: concurrent test-suite runs on one machine
    // must not race on a shared temp file.
    let path = std::env::temp_dir().join(format!("exp_stress_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_stress"), &["--quick", "--json", path_str]);
    assert!(stdout.contains("JSON written to"), "missing file notice:\n{stdout}");
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(json.starts_with('['), "not a JSON array: {json}");
    assert!(json.contains("\"scenario\":\"steady\""), "missing steady reports: {json}");
    let _ = std::fs::remove_file(&path);
}
