//! Smoke tests for the experiment binaries: run each `exp_*` with the
//! `--quick` parameter set (tiny token counts) and check it exits
//! successfully and prints at least one Markdown table. This keeps the
//! bench bins from silently rotting — they are compiled and executed on
//! every `cargo test` run.

use std::process::Command;

fn run_quick(exe: &str, args: &[&str]) -> String {
    let output = Command::new(exe).args(args).output().expect("binary should spawn");
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("experiment output is UTF-8")
}

fn assert_prints_markdown_table(exe: &str, args: &[&str]) {
    let stdout = run_quick(exe, args);
    assert!(
        stdout.lines().any(|l| l.starts_with("| ")),
        "{exe} printed no Markdown table:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("## ")),
        "{exe} printed no section heading:\n{stdout}"
    );
}

#[test]
fn exp_depth_prints_tables() {
    // exp_depth is all closed-form construction; it has no --quick knob
    // and is already fast.
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_depth"), &[]);
}

#[test]
fn exp_contention_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_contention"), &["--quick"]);
}

#[test]
fn exp_blocks_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_blocks"), &["--quick"]);
}

#[test]
fn exp_smoothing_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_smoothing"), &["--quick"]);
}

#[test]
fn exp_sorting_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_sorting"), &["--quick"]);
}

#[test]
fn exp_ablation_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_ablation"), &["--quick"]);
}

#[test]
fn exp_throughput_quick_prints_tables() {
    assert_prints_markdown_table(env!("CARGO_BIN_EXE_exp_throughput"), &["--quick"]);
}

/// Asserts that every report in the serialized array has `field` equal to
/// zero: the number of `"field":0` occurrences must equal the number of
/// `"field":` occurrences (values are plain non-negative integers, so a
/// non-zero value never starts with the digit 0).
fn assert_every_report_has_zero(json: &str, field: &str) {
    let total = json.matches(&format!("\"{field}\":")).count();
    let zeros = json.matches(&format!("\"{field}\":0")).count();
    assert!(total > 0, "no `{field}` fields found in JSON:\n{json}");
    assert_eq!(zeros, total, "{} report(s) have non-zero `{field}`:\n{json}", total - zeros);
}

#[test]
fn exp_stress_quick_prints_tables_and_json() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_stress"), &["--quick"]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("## ")), "no section heading:\n{stdout}");
    // Without --json, the reports are printed as a JSON array on stdout.
    // Every report — including the recorded E13b runs that never reach a
    // rate table cell — must satisfy the counting contract.
    let json_line = stdout.lines().find(|l| l.starts_with('[')).expect("no JSON array printed");
    for field in ["duplicates", "missing", "out_of_range"] {
        assert_every_report_has_zero(json_line, field);
    }
    // No table cell may report a broken invariant (the notes paragraph
    // legitimately mentions the marker).
    assert!(
        !stdout.lines().any(|l| l.starts_with("| ") && l.contains("BROKEN")),
        "stress matrix reported a violation:\n{stdout}"
    );
}

/// One shared `--quick` run of `exp_elimination`, reused by every test
/// that only reads its stdout — the binary now drives the 72-cell E14c
/// matrix (whose park cells sleep on futile offers), so re-spawning it
/// per assertion would triple the suite's wall-clock for nothing.
fn exp_elimination_quick_stdout() -> &'static str {
    static STDOUT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    STDOUT.get_or_init(|| run_quick(env!("CARGO_BIN_EXE_exp_elimination"), &["--quick"]))
}

#[test]
fn exp_elimination_quick_prints_tables_and_passes_its_gate() {
    let stdout = exp_elimination_quick_stdout();
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("## ")), "no section heading:\n{stdout}");
    // Demonstration cells (raw mixed-size strides) may report gaps, but
    // no cell may be BROKEN — the binary exits nonzero then, which
    // run_quick already rejects; double-check the table text too.
    assert!(
        !stdout.lines().any(|l| l.starts_with("| ") && l.contains("BROKEN")),
        "elimination matrix reported an unexpected violation:\n{stdout}"
    );
    // All three tables are present: the rate matrix, the
    // measured-vs-model arena statistics, and the strategy comparison.
    assert!(stdout.contains("E14b"), "missing arena statistics table:\n{stdout}");
    assert!(stdout.contains("model (counting-sim)"), "missing model row:\n{stdout}");
    assert!(stdout.contains("E14c"), "missing waiting-strategy table:\n{stdout}");
}

#[test]
fn exp_elimination_quick_park_out_merges_spin_yield_when_oversubscribed() {
    // The E14c gate: parking exists to make arena rendezvous land when
    // runnable worker threads outnumber cpus (a spinning waiter owns its
    // only core, so its partner can never arrive). On such a box the
    // aggregate park merge rate across the 4-counter × 6-scenario matrix
    // must beat spin-yield's; on a box with enough cores the comparison
    // is not meaningful (spinning already rendezvouses) and only the
    // matrix's zero-violation gate applies (enforced by the exit status).
    // The assertion requires *strong* oversubscription (threads ≥ 2 ×
    // cpus): under mild oversubscription (e.g. 8 threads on 6 cpus) most
    // spinning waiters still have a genuinely parallel partner, the two
    // aggregates converge, and a strict inequality over quick-mode
    // sample sizes would flake.
    let stdout = exp_elimination_quick_stdout();
    let marker = stdout
        .lines()
        .find_map(|l| l.strip_prefix("E14c-oversubscribed="))
        .expect("missing E14c-oversubscribed line");
    let field = |key: &str| -> u64 {
        marker
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in marker line: {marker}"))
            .parse()
            .expect("marker field parses")
    };
    let (threads, cpus) = (field("threads"), field("cpus"));
    assert_eq!(marker.starts_with("true"), threads > cpus, "flag must match the counts");
    let strongly_oversubscribed = threads >= 2 * cpus;
    let rate = |strategy: &str| -> f64 {
        let prefix = format!("E14c-aggregate strategy={strategy} merge_rate=");
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .unwrap_or_else(|| panic!("missing aggregate line for {strategy}:\n{stdout}"))
            .trim()
            .parse()
            .expect("merge rate parses")
    };
    let park = rate("park");
    let spin_yield = rate("spin-yield");
    let spin = rate("spin");
    assert!((0.0..=1.0).contains(&park) && (0.0..=1.0).contains(&spin_yield));
    assert!((0.0..=1.0).contains(&spin));
    if strongly_oversubscribed {
        assert!(
            park > spin_yield,
            "threads ({threads}) ≥ 2 × cpus ({cpus}), so park ({park}) must out-merge \
             spin-yield ({spin_yield}):\n{stdout}"
        );
    }
}

#[test]
fn exp_elimination_quick_writes_json_file_and_honors_strategy_flag() {
    let path =
        std::env::temp_dir().join(format!("exp_elimination_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(
        env!("CARGO_BIN_EXE_exp_elimination"),
        &["--quick", "--json", path_str, "--strategy", "park"],
    );
    assert!(stdout.contains("JSON written to"), "missing file notice:\n{stdout}");
    assert!(stdout.contains("strategy park"), "E14 heading must name the strategy:\n{stdout}");
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(json.contains("\"strategy\":\"park\""), "missing selected strategy: {json}");
    assert!(json.contains("\"stress\":["), "missing stress reports: {json}");
    assert!(json.contains("\"arena_measured\":["), "missing measured arena stats: {json}");
    assert!(json.contains("\"arena_model\":{"), "missing model report: {json}");
    assert!(json.contains("\"strategy_matrix\":["), "missing E14c matrix: {json}");
    assert!(json.contains("\"strategy_aggregates\":["), "missing E14c aggregates: {json}");
    // The elimination-path reports must be exact; raw mixed-stride
    // demonstrations may gap but must never duplicate.
    assert_every_report_has_zero(&json, "duplicates");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_service_quick_passes_its_gate_for_both_network_backends() {
    // The E15 gate: 64 tenants × 8 threads under Zipf-skewed popularity
    // with idle-tenant churn — every tenant's hand-out must be unique
    // and exact-range (the binary exits nonzero otherwise, which
    // run_quick rejects), and the JSON must carry per-tenant plus
    // aggregate rates for both the raw network backend and the
    // elimination-wrapped one.
    let path = std::env::temp_dir().join(format!("exp_service_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_service"), &["--quick", "--json", path_str]);
    // (The default seed 0xE15 = 3605 must be recorded verbatim.)
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.contains("## E15"), "missing section heading:\n{stdout}");
    assert!(
        !stdout.lines().any(|l| l.starts_with("| ") && l.contains("BROKEN")),
        "service matrix reported a violation:\n{stdout}"
    );
    for backend in ["backend=C(16,16) ", "backend=C(16,16)+elim["] {
        assert!(
            stdout.lines().any(|l| l.starts_with("E15-aggregate") && l.contains(backend)),
            "missing aggregate line for {backend}:\n{stdout}"
        );
    }
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(json.starts_with('{'), "reports must be wrapped with the seed: {json}");
    assert!(json.contains("\"seed\":3605"), "missing recorded seed: {json}");
    assert!(json.contains("\"reports\":["), "missing report array: {json}");
    assert!(json.contains("\"backend\":\"C(16,16)\""), "missing raw network report: {json}");
    assert!(json.contains("\"backend\":\"C(16,16)+elim["), "missing elim-wrapped report: {json}");
    assert!(json.contains("\"tenant_stats\":["), "missing per-tenant stats: {json}");
    assert!(json.contains("\"aggregate_values_per_second\":"), "missing aggregate rate: {json}");
    assert!(json.contains("\"tenant\":\"tenant-063\""), "missing the 64th tenant: {json}");
    for field in ["duplicates", "out_of_range", "range_violations"] {
        assert_every_report_has_zero(&json, field);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_server_quick_sustains_the_client_fleet_with_zero_violations() {
    // The E17 gate: thousands of open-loop simulated clients over real
    // sockets — every ticket and lease id observed in an HTTP response
    // must be unique and dense, no rate window may over-admit, and every
    // waiting client must eventually be admitted (the binary exits
    // nonzero otherwise, which run_quick rejects). The JSON carries the
    // per-endpoint latency histograms CI uploads as an artifact.
    let path = std::env::temp_dir().join(format!("exp_server_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_server"), &["--quick", "--json", path_str]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.contains("## E17"), "missing section heading:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("E17-aggregate")),
        "missing machine-readable aggregate line:\n{stdout}"
    );
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    // 0xE17 = 3607: the default seed must be recorded verbatim.
    assert!(json.contains("\"seed\":3607"), "missing recorded seed: {json}");
    assert!(json.contains("\"reports\":["), "missing report array: {json}");
    assert!(json.contains("\"peak_active\":"), "missing concurrency high-water mark: {json}");
    assert!(json.contains("\"endpoints\":["), "missing per-endpoint reports: {json}");
    assert!(json.contains("\"buckets\":["), "missing latency histograms: {json}");
    assert!(json.contains("\"p99_us\":"), "missing latency percentiles: {json}");
    for field in [
        "duplicates",
        "range_violations",
        "rate_over_admissions",
        "unadmitted_clients",
        "admission_bound_errors",
    ] {
        assert_every_report_has_zero(&json, field);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_cluster_quick_passes_every_sweep_cell() {
    // The E18 gate: the clean block-lease protocol survives every cell
    // of the node-count × fault × churn sweep (the binary exits nonzero
    // on any uniqueness / exact-range / liveness violation, which
    // run_quick rejects).
    let path = std::env::temp_dir().join(format!("exp_cluster_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_cluster"), &["--quick", "--json", path_str]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.contains("## E18"), "missing section heading:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("E18-aggregate")),
        "missing machine-readable aggregate line:\n{stdout}"
    );
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    // 0xE18 = 3608: the default seed must be recorded verbatim.
    assert!(json.contains("\"seed\":3608"), "missing recorded seed: {json}");
    assert!(json.contains("\"values_per_kilotick\":"), "missing deterministic rate: {json}");
    assert!(json.contains("\"churn\":\"churny\""), "missing churny cells: {json}");
    assert!(!json.contains("\"converged\":false"), "a cell failed to drain: {json}");
    assert!(json.contains("\"violations\":[]"), "missing violation arrays: {json}");
    // The replicated-coordinator axis is part of the quick sweep: a
    // 3-replica cell with replica churn and partition windows must
    // drain clean too.
    assert!(json.contains("\"replicas\":3"), "missing 3-replica cell: {json}");
    assert!(stdout.contains("4n/r3/"), "missing replica cell row:\n{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_cluster_rejects_unknown_mutations_and_names_the_valid_ones() {
    // The strict-parsing gate: an unknown mutation name must exit
    // nonzero with an error listing every valid flag, not panic.
    let output = Command::new(env!("CARGO_BIN_EXE_exp_cluster"))
        .args(["--quick", "--mutation", "no-such-bug"])
        .output()
        .expect("binary should spawn");
    assert!(!output.status.success(), "unknown mutation must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown --mutation"), "error not named in stderr:\n{stderr}");
    assert!(stderr.contains("no-such-bug"), "offending flag not echoed:\n{stderr}");
    for flag in
        ["skip-recovery", "grant-no-dedup", "split-brain-double-grant", "commit-before-quorum"]
    {
        assert!(stderr.contains(flag), "valid mutation {flag} not listed:\n{stderr}");
    }
    assert!(
        !String::from_utf8_lossy(&output.stderr).contains("panicked"),
        "rejection must be an error message, not a panic:\n{stderr}"
    );
}

#[test]
fn exp_cluster_same_seed_is_byte_identical() {
    // Determinism regression (the tentpole's core claim): two runs under
    // one --seed must produce byte-identical stdout *and* JSON — the
    // artifact carries no wall-clock or host data, so any divergence is
    // a nondeterminism bug in the simulation, not noise.
    let dir = std::env::temp_dir().join(format!("exp_cluster_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_a = dir.join("a.json");
    let json_b = dir.join("b.json");
    let stdout_a = run_quick(
        env!("CARGO_BIN_EXE_exp_cluster"),
        &["--quick", "--seed", "42", "--json", json_a.to_str().expect("utf-8 temp path")],
    );
    let stdout_b = run_quick(
        env!("CARGO_BIN_EXE_exp_cluster"),
        &["--quick", "--seed", "42", "--json", json_b.to_str().expect("utf-8 temp path")],
    );
    let strip = |s: &str| {
        // The trailing "JSON written to <path>" line names different
        // temp files; everything above it must match byte-for-byte.
        s.lines().filter(|l| !l.starts_with("JSON written to")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&stdout_a), strip(&stdout_b), "stdout diverged under one seed");
    let bytes_a = std::fs::read(&json_a).expect("first JSON written");
    let bytes_b = std::fs::read(&json_b).expect("second JSON written");
    assert_eq!(bytes_a, bytes_b, "JSON artifacts diverged under one seed");
    // And a different seed must actually change the run.
    let json_c = dir.join("c.json");
    let _ = run_quick(
        env!("CARGO_BIN_EXE_exp_cluster"),
        &["--quick", "--seed", "43", "--json", json_c.to_str().expect("utf-8 temp path")],
    );
    let bytes_c = std::fs::read(&json_c).expect("third JSON written");
    assert_ne!(bytes_a, bytes_c, "seed 43 reproduced seed 42's sweep exactly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exp_cluster_mutations_are_caught_by_the_checker() {
    // Calibration in the spawned-binary direction: each injected
    // protocol bug must be caught somewhere in the sweep (the binary
    // inverts its gate under --mutation and exits nonzero if the bug
    // survives every cell).
    for mutation in
        ["skip-recovery", "grant-no-dedup", "split-brain-double-grant", "commit-before-quorum"]
    {
        let stdout =
            run_quick(env!("CARGO_BIN_EXE_exp_cluster"), &["--quick", "--mutation", mutation]);
        assert!(
            stdout.contains(&format!("mutation {mutation} caught in")),
            "{mutation} was not reported as caught:\n{stdout}"
        );
    }
}

/// Docs-drift gate: `REPRODUCING.md` maps every experiment binary to the
/// paper result it reproduces. A new `exp_*` binary that is not added to
/// the map fails the suite (CI re-checks the same invariant with a grep
/// so the docs cannot rot even when tests are skipped).
#[test]
fn reproducing_md_names_every_exp_binary() {
    let manifest = env!("CARGO_MANIFEST_DIR");
    let reproducing = std::fs::read_to_string(format!("{manifest}/../../REPRODUCING.md"))
        .expect("REPRODUCING.md exists at the workspace root");
    let bin_dir = std::fs::read_dir(format!("{manifest}/src/bin")).expect("bin dir exists");
    let mut checked = 0;
    for entry in bin_dir {
        let name = entry.expect("readable dir entry").file_name();
        let name = name.to_str().expect("utf-8 file name");
        if let Some(bin) = name.strip_suffix(".rs") {
            assert!(
                reproducing.contains(bin),
                "REPRODUCING.md does not mention `{bin}` — add it to the experiment map"
            );
            checked += 1;
        }
    }
    assert!(checked >= 10, "expected to check every exp_* binary, found {checked}");
}

#[test]
fn exp_stress_quick_writes_json_file() {
    // Unique per-process path: concurrent test-suite runs on one machine
    // must not race on a shared temp file.
    let path = std::env::temp_dir().join(format!("exp_stress_smoke_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_stress"), &["--quick", "--json", path_str]);
    assert!(stdout.contains("JSON written to"), "missing file notice:\n{stdout}");
    let json = std::fs::read_to_string(&path).expect("JSON file written");
    assert!(json.starts_with('['), "not a JSON array: {json}");
    assert!(json.contains("\"scenario\":\"steady\""), "missing steady reports: {json}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_bench_quick_native_only_writes_valid_trajectory() {
    // EB native-only: the hot-path and id-lease suites need no sibling
    // binaries, so this exercises measurement, assembly, validation, the
    // degenerate-window gate (a nonzero exit, which run_quick rejects)
    // and the file write in one spawn.
    let dir = std::env::temp_dir().join(format!("exp_bench_smoke_native_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("BENCH_smoke.json");
    let stdout = run_quick(
        env!("CARGO_BIN_EXE_exp_bench"),
        &[
            "--quick",
            "--native-only",
            "--seed",
            "7",
            "--tag",
            "smoke",
            "--dir",
            dir.to_str().expect("utf-8 temp path"),
            "--out",
            out.to_str().expect("utf-8 temp path"),
        ],
    );
    assert!(stdout.contains("## EB"), "missing EB heading:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no comparison table:\n{stdout}");
    assert!(stdout.contains("ratio vs prev"), "missing ratio column:\n{stdout}");
    let json = std::fs::read_to_string(&out).expect("trajectory file written");
    let t: bench::Trajectory =
        serde_json::from_str(&json).expect("trajectory parses under the committed schema");
    bench::trajectory::validate(&t).expect("written trajectory is structurally valid");
    assert_eq!(t.schema_version, bench::SCHEMA_VERSION);
    assert_eq!((t.pr_tag.as_str(), t.seed, t.quick), ("smoke", 7, true));
    for suite in ["hot-path", "id-lease"] {
        assert!(
            t.records.iter().any(|r| r.suite == suite),
            "missing native suite `{suite}`: {json}"
        );
    }
    assert!(
        bench::trajectory::degenerate_cells(&t).is_empty(),
        "native-only run recorded degenerate cells: {json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exp_bench_ingests_suite_reports_and_compares_against_prior_trajectories() {
    // EB ingestion + comparator: fixture suite reports stand in for the
    // sibling binaries (written through the shared `bench::trajectory`
    // schema types, so the fixtures cannot drift from the emitters), and
    // a prior BENCH_PR0.json with the same throughput cell at half the
    // rate must yield a 2.00x ratio in the printed table.
    use bench::trajectory::{
        BenchRecord, ClusterCellIngest, ClusterIngest, EliminationIngest, EliminationStressCell,
        ServerBackendIngest, ServerEndpointIngest, ServerIngest, ServiceBackendIngest,
        ServiceIngest, StrategyAggregateIngest, ThroughputCell, ThroughputSuiteJson,
        SCHEMA_VERSION,
    };
    use bench::{HostFingerprint, Trajectory};
    let dir = std::env::temp_dir().join(format!("exp_bench_smoke_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let write = |name: &str, json: String| {
        let path = dir.join(name);
        std::fs::write(&path, json).expect("fixture written");
        path
    };
    let throughput = write(
        "throughput.json",
        serde_json::to_string(&ThroughputSuiteJson {
            seed: 7,
            quick: true,
            cells: vec![ThroughputCell {
                counter: "C(16,16)".to_owned(),
                threads: 2,
                ops_per_thread: 10,
                total_ops: 20,
                elapsed_secs: 0.5,
                ops_per_second: Some(40.0),
            }],
        })
        .expect("fixture serializes"),
    );
    let elimination = write(
        "elimination.json",
        serde_json::to_string(&EliminationIngest {
            seed: 7,
            strategy: "spin-yield".to_owned(),
            stress: vec![EliminationStressCell {
                counter: "C(16,16)+elim".to_owned(),
                scenario: "steady".to_owned(),
                threads: 8,
                batch: "mixed<=16".to_owned(),
                values_per_second: Some(100.0),
            }],
            strategy_aggregates: vec![StrategyAggregateIngest {
                strategy: "park".to_owned(),
                merge_rate: 0.5,
            }],
        })
        .expect("fixture serializes"),
    );
    let service = write(
        "service.json",
        serde_json::to_string(&ServiceIngest {
            seed: 7,
            reports: vec![ServiceBackendIngest {
                backend: "C(16,16)".to_owned(),
                tenants: 64,
                threads: 8,
                aggregate_values_per_second: Some(123_000.0),
            }],
        })
        .expect("fixture serializes"),
    );
    let server = write(
        "server.json",
        serde_json::to_string(&ServerIngest {
            seed: 0xE17,
            reports: vec![ServerBackendIngest {
                backend: "network[w=4,elim]".to_owned(),
                clients: 3072,
                drivers: 8,
                aggregate_requests_per_second: Some(30_000.0),
                endpoints: vec![ServerEndpointIngest {
                    endpoint: "ticket".to_owned(),
                    requests: 1024,
                    requests_per_second: Some(10_000.0),
                }],
            }],
        })
        .expect("fixture serializes"),
    );
    let cluster = write(
        "cluster.json",
        serde_json::to_string(&ClusterIngest {
            seed: 0xE18,
            mutation: None,
            reports: vec![
                ClusterCellIngest {
                    workers: 4,
                    replicas: 1,
                    fault: "lossy".to_owned(),
                    churn: "churny".to_owned(),
                    handed: 900,
                    values_per_kilotick: Some(112.5),
                },
                ClusterCellIngest {
                    workers: 4,
                    replicas: 3,
                    fault: "lossy".to_owned(),
                    churn: "churny".to_owned(),
                    handed: 850,
                    values_per_kilotick: Some(106.0),
                },
            ],
        })
        .expect("fixture serializes"),
    );
    let prior = Trajectory {
        schema_version: SCHEMA_VERSION,
        pr_tag: "PR0".to_owned(),
        seed: 7,
        quick: true,
        host: HostFingerprint::detect(),
        records: vec![BenchRecord {
            suite: "throughput".to_owned(),
            scenario: "steady".to_owned(),
            counter: "C(16,16)".to_owned(),
            threads: 2,
            batching: "1".to_owned(),
            ops_per_second: Some(20.0),
            merge_rate: None,
        }],
    };
    write("BENCH_PR0.json", serde_json::to_string(&prior).expect("fixture serializes"));
    let out = dir.join("BENCH_PR1.json");
    let stdout = run_quick(
        env!("CARGO_BIN_EXE_exp_bench"),
        &[
            "--quick",
            "--seed",
            "7",
            "--tag",
            "PR1",
            "--dir",
            dir.to_str().expect("utf-8 temp path"),
            "--out",
            out.to_str().expect("utf-8 temp path"),
            "--ingest-throughput",
            throughput.to_str().expect("utf-8 temp path"),
            "--ingest-elimination",
            elimination.to_str().expect("utf-8 temp path"),
            "--ingest-service",
            service.to_str().expect("utf-8 temp path"),
            "--ingest-server",
            server.to_str().expect("utf-8 temp path"),
            "--ingest-cluster",
            cluster.to_str().expect("utf-8 temp path"),
        ],
    );
    assert!(stdout.contains("BENCH_PR0.json"), "prior trajectory not loaded:\n{stdout}");
    assert!(
        stdout.contains("2.00x"),
        "throughput cell doubled (20 -> 40 ops/s) but no 2.00x ratio:\n{stdout}"
    );
    let json = std::fs::read_to_string(&out).expect("trajectory file written");
    let t: bench::Trajectory = serde_json::from_str(&json).expect("trajectory parses");
    bench::trajectory::validate(&t).expect("written trajectory is structurally valid");
    for suite in
        ["throughput", "elimination", "service", "serving", "cluster", "hot-path", "id-lease"]
    {
        assert!(t.records.iter().any(|r| r.suite == suite), "missing suite `{suite}`: {json}");
    }
    assert!(
        t.records.iter().any(|r| r.suite == "elimination" && r.merge_rate == Some(0.5)),
        "missing E14c aggregate cell: {json}"
    );
    assert!(
        t.records.iter().any(|r| r.suite == "serving" && r.scenario == "open-loop/ticket"),
        "missing serving endpoint cell: {json}"
    );
    assert!(
        t.records.iter().any(|r| r.suite == "cluster"
            && r.counter == "cluster[4nodes]"
            && r.scenario == "lossy/churny"),
        "missing cluster sweep cell: {json}"
    );
    assert!(
        t.records.iter().any(|r| r.suite == "cluster" && r.scenario == "lossy/churny@r3"),
        "missing replicated cluster sweep cell: {json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exp_bench_compare_only_rejects_schema_drift() {
    // A committed trajectory that no longer parses is schema drift — the
    // comparator must exit nonzero and say so (this is the CI gate).
    let dir = std::env::temp_dir().join(format!("exp_bench_smoke_drift_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    std::fs::write(dir.join("BENCH_bad.json"), "{ not json ]").expect("fixture written");
    let output = Command::new(env!("CARGO_BIN_EXE_exp_bench"))
        .args(["--compare-only", "--dir", dir.to_str().expect("utf-8 temp path")])
        .output()
        .expect("binary should spawn");
    assert!(!output.status.success(), "drifted trajectory must fail the comparator");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("schema drift") && stderr.contains("BENCH_bad.json"),
        "drift not named in stderr:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Smoke for the interleaving checker: only compiled when the bench
/// crate is built with `--features model` (the binary's
/// `required-features`), i.e. in the CI `model-check` job — the default
/// test run must not drag the model shims into every dependent crate.
#[cfg(feature = "model")]
#[test]
fn exp_model_quick_prints_tables_and_catches_every_mutation() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp_model"), &["--quick"]);
    assert!(stdout.lines().any(|l| l.starts_with("| ")), "no Markdown table:\n{stdout}");
    assert!(stdout.lines().any(|l| l.starts_with("## ")), "no section heading:\n{stdout}");
    // One row per seeded mutation, each caught and replayed; run_quick
    // already rejected a nonzero exit, so FAIL rows cannot be present.
    assert_eq!(
        stdout.lines().filter(|l| l.contains("caught + replayed")).count(),
        5,
        "expected all five seeded mutations caught:\n{stdout}"
    );
    assert!(
        !stdout.lines().any(|l| l.contains("FAIL")),
        "a scenario failed without a nonzero exit:\n{stdout}"
    );
}
