//! Golden-file schema tests for the committed `BENCH_*.json` benchmark
//! trajectory: the serialized field set is pinned here, so renaming or
//! dropping a field (schema drift) fails the suite even before the
//! `exp_bench` comparator runs in CI. The committed `BENCH_PR7.json` at
//! the repo root is itself parsed and checked — including the claim the
//! trajectory exists to record: flat-route traversal out-running the
//! boxed-route baseline on the same box under the same seed.

use bench::trajectory::{degenerate_cells, validate, BenchRecord};
use bench::{HostFingerprint, Trajectory, SCHEMA_VERSION};

fn sample() -> Trajectory {
    Trajectory {
        schema_version: SCHEMA_VERSION,
        pr_tag: "PR7".to_owned(),
        seed: 7,
        quick: false,
        host: HostFingerprint { os: "linux".to_owned(), arch: "x86_64".to_owned(), cpus: 1 },
        records: vec![BenchRecord {
            suite: "hot-path".to_owned(),
            scenario: "traverse".to_owned(),
            counter: "C(16,16) flat-route".to_owned(),
            threads: 1,
            batching: "1".to_owned(),
            ops_per_second: Some(1_000.0),
            merge_rate: None,
        }],
    }
}

#[test]
fn serialized_trajectory_carries_every_pinned_field_and_round_trips() {
    let json = serde_json::to_string(&sample()).expect("serializes");
    // The golden field set. A rename or removal shows up here first,
    // with a message naming the missing field.
    for field in [
        "schema_version",
        "pr_tag",
        "seed",
        "quick",
        "host",
        "os",
        "arch",
        "cpus",
        "records",
        "suite",
        "scenario",
        "counter",
        "threads",
        "batching",
        "ops_per_second",
        "merge_rate",
    ] {
        assert!(json.contains(&format!("\"{field}\":")), "field `{field}` missing from: {json}");
    }
    let back: Trajectory = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(back, sample());
    // A degenerate cell serializes as an explicit null, never a number.
    let mut t = sample();
    t.records[0].ops_per_second = None;
    let json = serde_json::to_string(&t).expect("serializes");
    assert!(json.contains("\"ops_per_second\":null"), "None must be null: {json}");
}

#[test]
fn missing_required_field_is_a_parse_error_but_unknown_fields_are_tolerated() {
    let json = serde_json::to_string(&sample()).expect("serializes");
    // Strip the required pr_tag field: the typed parse must fail rather
    // than fill in a default (that would silently mask drift).
    let without = json.replace("\"pr_tag\":\"PR7\",", "");
    assert!(!without.contains("pr_tag"), "surgery failed: {without}");
    assert!(
        serde_json::from_str::<Trajectory>(&without).is_err(),
        "parse must reject a trajectory without pr_tag"
    );
    // An extra unknown field must parse fine — future schema versions
    // may add fields, and old readers should not explode on them.
    let with_extra = json.replacen('{', "{\"future_field\":42,", 1);
    let back: Trajectory = serde_json::from_str(&with_extra).expect("unknown fields tolerated");
    assert_eq!(back, sample());
}

fn committed(tag: &str) -> Trajectory {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/BENCH_{tag}.json"))
        .unwrap_or_else(|e| panic!("BENCH_{tag}.json is committed at the repo root: {e}"));
    let trajectory: Trajectory =
        serde_json::from_str(&text).expect("committed trajectory parses under current schema");
    validate(&trajectory).expect("committed trajectory is structurally valid");
    trajectory
}

fn committed_pr7() -> Trajectory {
    committed("PR7")
}

#[test]
fn committed_trajectory_is_valid_and_fully_measured() {
    let t = committed_pr7();
    assert_eq!(t.schema_version, SCHEMA_VERSION);
    assert_eq!(t.pr_tag, "PR7");
    assert!(
        degenerate_cells(&t).is_empty(),
        "committed trajectory carries degenerate-window cells: {:?}",
        degenerate_cells(&t)
    );
    for suite in ["throughput", "elimination", "service", "hot-path", "id-lease"] {
        assert!(t.records.iter().any(|r| r.suite == suite), "suite `{suite}` not recorded");
    }
}

#[test]
fn committed_hot_path_cells_show_flat_route_beating_boxed_route() {
    let t = committed_pr7();
    let rate = |counter: &str, threads: usize| -> f64 {
        t.records
            .iter()
            .find(|r| r.suite == "hot-path" && r.counter == counter && r.threads == threads)
            .unwrap_or_else(|| panic!("missing hot-path cell {counter}/{threads}t"))
            .ops_per_second
            .expect("hot-path cells are measured")
    };
    for threads in [1usize, 4] {
        let flat = rate("C(16,16) flat-route", threads);
        let boxed = rate("C(16,16) boxed-route", threads);
        assert!(
            flat > boxed,
            "recorded trajectory must show the flat route winning at {threads}t: \
             flat {flat:.0} vs boxed {boxed:.0} ops/s"
        );
    }
}

/// The PR8 trajectory adds the first end-to-end cells: the `serving`
/// suite, measured over real sockets by `exp_server`, with one
/// aggregate cell per backend plus a cell per endpoint family.
#[test]
fn committed_pr8_records_the_serving_suite_end_to_end() {
    let t = committed("PR8");
    assert_eq!(t.pr_tag, "PR8");
    assert!(
        degenerate_cells(&t).is_empty(),
        "committed trajectory carries degenerate-window cells: {:?}",
        degenerate_cells(&t)
    );
    let serving: Vec<&BenchRecord> = t.records.iter().filter(|r| r.suite == "serving").collect();
    assert!(
        serving.iter().any(|r| r.scenario == "open-loop/aggregate"),
        "serving suite must carry per-backend aggregate cells: {serving:?}"
    );
    for endpoint in ["ticket", "status", "lease", "rate", "admit"] {
        assert!(
            serving.iter().any(|r| r.scenario == format!("open-loop/{endpoint}")),
            "serving suite must carry an `{endpoint}` endpoint cell"
        );
    }
    assert!(
        serving.iter().all(|r| r.batching == "http/keep-alive"),
        "serving cells measure HTTP over keep-alive connections"
    );
    // The earlier suites keep riding along — PR8 extends the
    // trajectory, it does not fork it.
    for suite in ["throughput", "elimination", "service", "hot-path", "id-lease"] {
        assert!(t.records.iter().any(|r| r.suite == suite), "suite `{suite}` not recorded");
    }
}

/// The PR9 trajectory adds the `cluster` suite: hand-out rates per
/// *virtual* kilotick from the fault-injected block-lease simulation —
/// the only suite whose cells are fully deterministic under the
/// recorded seed (same seed, same numbers, any host).
#[test]
fn committed_pr9_records_the_cluster_suite() {
    let t = committed("PR9");
    assert_eq!(t.pr_tag, "PR9");
    assert!(
        degenerate_cells(&t).is_empty(),
        "committed trajectory carries degenerate-window cells: {:?}",
        degenerate_cells(&t)
    );
    let cluster: Vec<&BenchRecord> = t.records.iter().filter(|r| r.suite == "cluster").collect();
    for counter in ["cluster[2nodes]", "cluster[4nodes]", "cluster[8nodes]"] {
        assert!(
            cluster.iter().any(|r| r.counter == counter),
            "cluster suite must sweep node counts; missing `{counter}`: {cluster:?}"
        );
    }
    for scenario in ["reliable/calm", "lossy/churny", "chaos/churny"] {
        assert!(
            cluster.iter().any(|r| r.scenario == scenario),
            "cluster suite must sweep fault × churn; missing `{scenario}`"
        );
    }
    assert!(
        cluster.iter().all(|r| r.batching == "block-lease"),
        "cluster cells measure block-lease hand-outs"
    );
    // The earlier suites keep riding along — PR9 extends the
    // trajectory, it does not fork it.
    for suite in ["throughput", "elimination", "service", "serving", "hot-path", "id-lease"] {
        assert!(t.records.iter().any(|r| r.suite == suite), "suite `{suite}` not recorded");
    }
}

/// Docs-drift gate for the trajectory: every suite recorded in any
/// committed `BENCH_*.json` must be named in `REPRODUCING.md`'s
/// perf-trajectory section (CI re-checks this with a grep).
#[test]
fn reproducing_md_names_every_recorded_suite() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let reproducing = std::fs::read_to_string(format!("{root}/REPRODUCING.md"))
        .expect("REPRODUCING.md exists at the workspace root");
    let mut suites: Vec<String> = Vec::new();
    for t in [committed_pr7(), committed("PR8"), committed("PR9")] {
        suites.extend(t.records.iter().map(|r| r.suite.clone()));
    }
    suites.sort_unstable();
    suites.dedup();
    assert!(suites.len() >= 7, "expected all seven suites recorded, got {suites:?}");
    for suite in suites {
        assert!(
            reproducing.contains(&format!("`{suite}`")),
            "REPRODUCING.md does not name trajectory suite `{suite}`"
        );
    }
}
