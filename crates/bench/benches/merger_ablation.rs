//! Criterion bench for the design ablation called out in `DESIGN.md`:
//! the difference merging network `M(t, δ)` (depth `lg δ`) against the
//! bitonic merger (depth `lg t`) as the merging stage, at equal width.
//! Shorter mergers mean fewer balancers per token, which shows up both in
//! evaluation time here and in the simulated contention reported by
//! `exp_contention`.

use std::time::Duration;

use balnet::{quiescent_output, step_sequence};
use baselines::bitonic_merger;
use counting::merging_network;
use counting_sim::{measure_contention, SchedulerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_merger_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("merger-ablation");
    for &t in &[64usize, 256] {
        let delta = 8usize; // the difference bound C(w,t) actually needs is w/2
        let ours = merging_network(t, delta).expect("valid");
        let bitonic = bitonic_merger(t).expect("valid");
        // Step halves differing by at most delta — the contract both satisfy.
        let mut input = step_sequence(1_000 + delta as u64, t / 2);
        input.extend(step_sequence(1_000, t / 2));

        group.bench_with_input(BenchmarkId::new("M(t,8)-eval", t), &input, |b, input| {
            b.iter(|| quiescent_output(&ours, input));
        });
        group.bench_with_input(BenchmarkId::new("bitonic-merger-eval", t), &input, |b, input| {
            b.iter(|| quiescent_output(&bitonic, input));
        });

        // Simulated merge traffic: n processes pushing tokens through the
        // merger under lock-step scheduling.
        let n = t;
        let m = 10 * n as u64;
        group.bench_with_input(BenchmarkId::new("M(t,8)-simulate", t), &n, |b, &n| {
            b.iter(|| measure_contention(&ours, n, m, SchedulerKind::RoundRobin, 1));
        });
        group.bench_with_input(BenchmarkId::new("bitonic-merger-simulate", t), &n, |b, &n| {
            b.iter(|| measure_contention(&bitonic, n, m, SchedulerKind::RoundRobin, 1));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_merger_ablation
}
criterion_main!(benches);
