//! Criterion bench for experiment E2: construction cost of every network
//! family across widths (the depth/size tables themselves are printed by
//! `exp_depth`).

use std::time::Duration;

use baselines::{bitonic_counting_network, periodic_counting_network};
use counting::{counting_network, merging_network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for &w in &[16usize, 64, 256] {
        let lgw = w.trailing_zeros() as usize;
        group.bench_with_input(BenchmarkId::new("C(w,w)", w), &w, |b, &w| {
            b.iter(|| counting_network(w, w).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("C(w,w.lgw)", w), &w, |b, &w| {
            b.iter(|| counting_network(w, w * lgw).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("Bitonic", w), &w, |b, &w| {
            b.iter(|| bitonic_counting_network(w).expect("valid"));
        });
        group.bench_with_input(BenchmarkId::new("Periodic", w), &w, |b, &w| {
            b.iter(|| periodic_counting_network(w).expect("valid"));
        });
    }
    group.bench_function("M(1024,16)", |b| {
        b.iter(|| merging_network(1024, 16).expect("valid"));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_construction
}
criterion_main!(benches);
