//! Criterion bench for experiment E4: quiescent evaluation of the
//! smoothing networks (butterfly and prefix) at realistic widths. The
//! smoothing *values* are reported by `exp_smoothing`; this bench tracks
//! evaluation cost, which is what the verification suites and the
//! simulator lean on.

use std::time::Duration;

use balnet::quiescent_output;
use counting::{counting_prefix, forward_butterfly};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_smoothing_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("quiescent-eval");
    for &w in &[64usize, 256, 1024] {
        let input: Vec<u64> = (0..w).map(|_| rng.gen_range(0..1_000)).collect();
        let butterfly = forward_butterfly(w).expect("valid");
        group.bench_with_input(BenchmarkId::new("butterfly", w), &input, |b, input| {
            b.iter(|| quiescent_output(&butterfly, input));
        });
        let prefix = counting_prefix(w, 4 * w).expect("valid");
        group.bench_with_input(BenchmarkId::new("prefix-C'(w,4w)", w), &input, |b, input| {
            b.iter(|| quiescent_output(&prefix, input));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_smoothing_eval
}
criterion_main!(benches);
