//! Criterion bench for experiment E7: concurrent Fetch&Increment
//! throughput of the network counters against the centralized baselines.
//! The full thread sweep is printed by `exp_throughput`; here we keep two
//! representative thread counts so `cargo bench` stays quick.

use std::time::Duration;

use bench::comparison_suite;
use counting_runtime::{measure_throughput, CentralCounter, LockCounter, NetworkCounter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_throughput(c: &mut Criterion) {
    let w = 16usize;
    let suite = comparison_suite(w);
    let ops_per_thread = 10_000u64;
    for &threads in &[1usize, 4] {
        let mut group = c.benchmark_group(format!("fetch_increment-{threads}thr"));
        group.throughput(Throughput::Elements(ops_per_thread * threads as u64));
        for named in &suite {
            group.bench_with_input(
                BenchmarkId::new(&named.name, threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let counter = NetworkCounter::new(named.name.clone(), &named.network);
                        measure_throughput(&counter, threads, ops_per_thread)
                    });
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("central", threads), &threads, |b, &threads| {
            b.iter(|| measure_throughput(&CentralCounter::new(), threads, ops_per_thread));
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &threads| {
            b.iter(|| measure_throughput(&LockCounter::new(), threads, ops_per_thread));
        });
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_throughput
}
criterion_main!(benches);
