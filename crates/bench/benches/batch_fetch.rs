//! Criterion bench for the batched Fetch&Increment fast path: one
//! `next_batch(k)` traversal reserves a stride of `k` values, so the
//! per-value cost of a network counter should drop roughly by the batch
//! factor, while the centralized baseline gains little (it was already a
//! single `fetch_add`).

use std::time::Duration;

use counting::counting_network;
use counting_runtime::{
    measure_batched_throughput, measure_throughput, CentralCounter, NetworkCounter,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_batch_fetch(c: &mut Criterion) {
    let w = 16usize;
    let net = counting_network(w, w).expect("valid");
    let threads = 4usize;
    let values_per_thread = 8_192u64;

    for k in [1usize, 8, 64] {
        let mut group = c.benchmark_group(format!("next_batch-k{k}"));
        group.throughput(Throughput::Elements(values_per_thread * threads as u64));
        group.bench_with_input(BenchmarkId::new("C(16,16)", k), &k, |b, &k| {
            b.iter(|| {
                let counter = NetworkCounter::new("C(16,16)", &net);
                if k == 1 {
                    measure_throughput(&counter, threads, values_per_thread)
                } else {
                    measure_batched_throughput(&counter, threads, values_per_thread / k as u64, k)
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("central", k), &k, |b, &k| {
            b.iter(|| {
                let counter = CentralCounter::new();
                if k == 1 {
                    measure_throughput(&counter, threads, values_per_thread)
                } else {
                    measure_batched_throughput(&counter, threads, values_per_thread / k as u64, k)
                }
            });
        });
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_batch_fetch
}
criterion_main!(benches);
