//! Criterion bench for experiment E5: simulated contention runs of the
//! comparison suite at low and high concurrency. The stall numbers
//! themselves are printed by `exp_contention`; this bench tracks the cost
//! of the simulation (and therefore scales with the number of stalls).

use std::time::Duration;

use bench::comparison_suite;
use counting_sim::{measure_contention, SchedulerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_contention(c: &mut Criterion) {
    let w = 16usize;
    let suite = comparison_suite(w);
    let tokens_per_process = 20u64;
    for &n in &[w, 8 * w] {
        let mut group = c.benchmark_group(format!("simulate-n{n}"));
        for named in &suite {
            group.bench_with_input(BenchmarkId::new(&named.name, n), &n, |b, &n| {
                b.iter(|| {
                    measure_contention(
                        &named.network,
                        n,
                        tokens_per_process * n as u64,
                        SchedulerKind::RoundRobin,
                        1,
                    )
                });
            });
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_contention
}
criterion_main!(benches);
