//! Criterion bench for experiment E8: sorting with the comparator network
//! derived from `C(w, w)` versus the bitonic sorter and `slice::sort`.

use std::time::Duration;

use baselines::bitonic_counting_network;
use counting::counting_network;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sortnet::ComparatorNetwork;

fn bench_sorting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("sorting");
    for &w in &[64usize, 256] {
        let data: Vec<u32> = (0..w).map(|_| rng.gen()).collect();
        let ours = ComparatorNetwork::from_balancing(counting_network(w, w).expect("valid"))
            .expect("regular");
        let bitonic =
            ComparatorNetwork::from_balancing(bitonic_counting_network(w).expect("valid"))
                .expect("regular");
        group.bench_with_input(BenchmarkId::new("C(w,w)-sorter", w), &data, |b, data| {
            b.iter(|| ours.apply(data));
        });
        group.bench_with_input(BenchmarkId::new("bitonic-sorter", w), &data, |b, data| {
            b.iter(|| bitonic.apply(data));
        });
        group.bench_with_input(BenchmarkId::new("std-sort", w), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable_by(|a, b| b.cmp(a));
                    d
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(400))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sorting
}
criterion_main!(benches);
