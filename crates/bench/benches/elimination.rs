//! Criterion bench for the elimination layer: mixed-batch-size
//! reservations routed through the arena must keep pace with the
//! uniform-`k` `next_batch` fast path at 8 threads — the layer buys the
//! unconditional exact-range guarantee, not a slowdown. All variants run
//! through the stress driver so every cell pays the same online
//! invariant-checking overhead and the rates stay comparable. The parked
//! variant prices the `Park` waiting strategy against the default
//! spin-yield on the same workload.

use std::time::Duration;

use counting::counting_network;
use counting_runtime::{
    run_stress, Batching, CentralCounter, EliminationConfig, EliminationCounter, NetworkCounter,
    Scenario, StressConfig, WaitStrategy,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 512;
const UNIFORM_K: usize = 8;
const MAX_K: usize = 16;
const SEED: u64 = 0xE11A;

fn steady(batch: Batching) -> StressConfig {
    StressConfig {
        threads: THREADS,
        ops_per_thread: OPS_PER_THREAD,
        batch,
        scenario: Scenario::Steady,
        record_tokens: false,
    }
}

fn bench_elimination(c: &mut Criterion) {
    let w = 16usize;
    let net = counting_network(w, w).expect("valid");
    let uniform = Batching::Fixed(UNIFORM_K);
    let mixed = Batching::Mixed { max_k: MAX_K, seed: SEED };

    let mut group = c.benchmark_group("elimination-8t");
    group.throughput(Throughput::Elements(steady(uniform).total_values()));
    group.bench_function("C(16,16) uniform-k raw", |b| {
        b.iter(|| run_stress(&NetworkCounter::new("C(16,16)", &net), &steady(uniform)));
    });
    group.bench_function("C(16,16) uniform-k elim", |b| {
        b.iter(|| {
            let counter = EliminationCounter::new(NetworkCounter::new("C(16,16)", &net));
            run_stress(&counter, &steady(uniform))
        });
    });
    group.throughput(Throughput::Elements(steady(mixed).total_values()));
    group.bench_function("C(16,16) mixed-k elim", |b| {
        b.iter(|| {
            let counter = EliminationCounter::new(NetworkCounter::new("C(16,16)", &net));
            run_stress(&counter, &steady(mixed))
        });
    });
    group.bench_function("C(16,16) mixed-k elim park", |b| {
        b.iter(|| {
            let counter = EliminationCounter::with_config(
                NetworkCounter::new("C(16,16)", &net),
                EliminationConfig { strategy: WaitStrategy::Park, ..EliminationConfig::default() },
            );
            run_stress(&counter, &steady(mixed))
        });
    });
    group.bench_function("central mixed-k elim", |b| {
        b.iter(|| {
            let counter = EliminationCounter::new(CentralCounter::new());
            run_stress(&counter, &steady(mixed))
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_elimination
}
criterion_main!(benches);
