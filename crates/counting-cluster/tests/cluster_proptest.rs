//! Property tests over randomized fault schedules.
//!
//! Each case draws a whole simulation cell — node count, fault
//! probabilities, delay spread, churn — and asserts the unmutated
//! protocol preserves global uniqueness and the exact range. A failing
//! cell is *shrunk* before reporting: the harness retries with fewer
//! workers, less demand, less churn and milder faults, keeping each
//! reduction only if it still fails, and panics with the minimal
//! replayable `(cell, seed)` so the counterexample can be pinned as a
//! regression test (see `cluster_sim.rs`).
#![recursion_limit = "512"]

use counting_cluster::{run_sim, ClusterSimConfig};
use counting_sim::des::FaultPlan;
use proptest::prelude::*;

/// Runs one cell and describes the first contract breach, if any.
fn breach(config: &ClusterSimConfig, seed: u64) -> Option<String> {
    let report = run_sim(config, seed);
    if !report.converged {
        return Some(format!("did not converge: {:?}", report.violations));
    }
    if !report.violations.is_empty() {
        return Some(format!("violations: {:?}", report.violations));
    }
    if report.handed != report.unique {
        return Some(format!(
            "handed {} values but only {} distinct (unreported repeat)",
            report.handed, report.unique
        ));
    }
    None
}

/// Greedy shrink: apply each reduction while the cell keeps failing.
fn shrink(mut config: ClusterSimConfig, seed: u64) -> ClusterSimConfig {
    let reductions: &[fn(&mut ClusterSimConfig)] = &[
        |c| c.joins = 0,
        |c| c.leaves = 0,
        |c| c.crashes = 0,
        |c| c.partitions = 0,
        |c| c.replica_crashes = 0,
        |c| c.replicas = c.replicas.min(3),
        |c| c.replicas = 1,
        |c| c.fault.dup_per_mille = 0,
        |c| c.fault.drop_per_mille = 0,
        |c| c.fault.max_delay = c.fault.min_delay,
        |c| c.workers = 2,
        |c| c.demand_per_node /= 4,
        |c| c.demand_per_node /= 2,
    ];
    for reduce in reductions {
        let mut candidate = config;
        reduce(&mut candidate);
        if candidate != config && breach(&candidate, seed).is_some() {
            config = candidate;
        }
    }
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fault_schedules_preserve_uniqueness_and_exact_range(
        workers in 2u64..=8,
        drop_per_mille in 0u32..=120,
        dup_per_mille in 0u32..=80,
        max_delay in 1u64..=30,
        crashes in 0u64..=3,
        joins in 0u64..=2,
        leaves in 0u64..=2,
        seed in 0u64..u64::MAX,
    ) {
        let config = ClusterSimConfig {
            workers,
            demand_per_node: 60,
            horizon: 4_000,
            fault: FaultPlan { drop_per_mille, dup_per_mille, min_delay: 1, max_delay },
            crashes,
            joins,
            leaves,
            ..ClusterSimConfig::default()
        };
        if let Some(failure) = breach(&config, seed) {
            let minimal = shrink(config, seed);
            let minimal_failure = breach(&minimal, seed).expect("shrink keeps the failure");
            panic!(
                "cell {config:?} seed={seed} breached the contract: {failure}\n\
                 minimal replay: {minimal:?} seed={seed}: {minimal_failure}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Failover liveness: whatever crash/partition/heal schedule the
    // replica group suffers, once the faults clear it elects a leader,
    // resumes granting, and the drain converges with the exact range
    // intact. Convergence *is* the liveness claim — the drain cannot
    // finish unless every worker's seal is answered post-heal.
    #[test]
    fn failover_schedules_recover_liveness_and_uniqueness(
        five_replicas in 0u64..=1,
        replica_crashes in 0u64..=2,
        partitions in 0u64..=2,
        drop_per_mille in 0u32..=80,
        dup_per_mille in 0u32..=50,
        max_delay in 1u64..=20,
        crashes in 0u64..=2,
        seed in 0u64..u64::MAX,
    ) {
        let replicas = if five_replicas == 1 { 5 } else { 3 };
        let config = ClusterSimConfig {
            workers: 4,
            demand_per_node: 60,
            horizon: 6_000,
            fault: FaultPlan { drop_per_mille, dup_per_mille, min_delay: 1, max_delay },
            crashes,
            joins: 0,
            leaves: 0,
            replicas,
            replica_crashes,
            partitions,
            ..ClusterSimConfig::default()
        };
        if let Some(failure) = breach(&config, seed) {
            let minimal = shrink(config, seed);
            let minimal_failure = breach(&minimal, seed).expect("shrink keeps the failure");
            panic!(
                "failover cell {config:?} seed={seed} breached the contract: {failure}\n\
                 minimal replay: {minimal:?} seed={seed}: {minimal_failure}"
            );
        }
        let report = run_sim(&config, seed);
        prop_assert!(report.handed > 0, "the cluster never granted: {:?}", report.stats);
    }
}
