//! Integration checks for the deterministic cluster simulation.
//!
//! Structure mirrors `counting-service/tests/model_registry.rs`: clean
//! runs of the real protocol under torture, calibration mutations that
//! must be caught, and a pinned counterexample seed whose recorded trace
//! replays byte-identically against both the mutated and the fixed
//! protocol.

use counting_cluster::{run_sim, ClusterSimConfig, Mutation};

/// The pinned counterexample seed: under the default torture cell it
/// schedules at least one crash/restart pair and enough duplicated hops
/// that *both* calibration mutations are caught, while the unmutated
/// protocol sails through the identical schedule.
const PINNED_SEED: u64 = 7;

fn torture() -> ClusterSimConfig {
    ClusterSimConfig::default()
}

#[test]
fn same_seed_produces_byte_identical_reports_and_traces() {
    let config = ClusterSimConfig { record_trace: true, ..torture() };
    let a = run_sim(&config, 0xC0FFEE);
    let b = run_sim(&config, 0xC0FFEE);
    assert_eq!(a, b, "two runs from one seed must agree field-for-field");

    let json_a =
        serde_json::to_string(a.trace.as_ref().expect("trace recorded")).expect("trace serializes");
    let json_b =
        serde_json::to_string(b.trace.as_ref().expect("trace recorded")).expect("trace serializes");
    assert_eq!(json_a, json_b, "serialized traces must be byte-identical");
    assert!(json_a.len() > 2, "the trace is not empty");

    let different = run_sim(&config, 0xC0FFEF);
    assert_ne!(a.trace, different.trace, "a different seed takes a different path");
}

#[test]
fn traces_round_trip_through_serde() {
    let config = ClusterSimConfig { record_trace: true, demand_per_node: 40, ..torture() };
    let report = run_sim(&config, 3);
    let trace = report.trace.expect("trace recorded");
    let json = serde_json::to_string(&trace).expect("trace serializes");
    let back: counting_cluster::ClusterTrace = serde_json::from_str(&json).expect("parses back");
    assert_eq!(back, trace);
}

#[test]
fn clean_protocol_survives_the_torture_sweep() {
    // ISSUE acceptance: >= 4 nodes, nonzero drop / dup / delay / churn.
    for workers in [4, 6] {
        for seed in 1..=8 {
            let config = ClusterSimConfig { workers, ..torture() };
            let report = run_sim(&config, seed);
            assert!(
                report.converged,
                "workers={workers} seed={seed} failed to drain: {:?}",
                report.violations
            );
            assert_eq!(
                report.violations,
                Vec::<String>::new(),
                "workers={workers} seed={seed} violated the global contract"
            );
            assert!(report.handed > 0, "workers={workers} seed={seed} handed nothing out");
            assert_eq!(report.handed, report.unique, "repeats without a violation report");
            assert!(
                report.stats.dropped > 0 && report.stats.duplicated > 0,
                "workers={workers} seed={seed}: the fault plan never fired \
                 ({:?}) — the sweep is not actually a torture test",
                report.stats
            );
        }
    }
}

#[test]
fn pinned_skip_recovery_counterexample_is_caught_online() {
    let mutated = ClusterSimConfig {
        mutation: Some(Mutation::SkipRecovery),
        record_trace: true,
        ..torture()
    };
    let report = run_sim(&mutated, PINNED_SEED);
    assert!(
        report.stats.crashes >= 1 && report.stats.restarts >= 1,
        "the pinned schedule must exercise a crash/restart: {:?}",
        report.stats
    );
    assert!(
        report.violations.iter().any(|v| v.contains("uniqueness")),
        "skipping watermark recovery re-hands old values; the checker \
         must catch it online, got: {:?}",
        report.violations
    );

    // The recorded trace ends at the bug and names it.
    let trace = report.trace.expect("trace recorded");
    let violation = trace
        .events
        .iter()
        .find(|e| e.kind == "violation")
        .expect("the trace pins the violating event");
    assert!(violation.info.contains("uniqueness"), "{violation:?}");

    // Replaying from the recorded seed reproduces the identical trace.
    let replay = run_sim(&mutated, trace.seed);
    assert_eq!(replay.trace.expect("trace recorded"), trace);

    // The fixed protocol survives the very same schedule.
    let clean = run_sim(&ClusterSimConfig { mutation: None, ..mutated }, PINNED_SEED);
    assert!(clean.converged, "{:?}", clean.violations);
    assert_eq!(clean.violations, Vec::<String>::new());
}

#[test]
fn pinned_grant_no_dedup_counterexample_is_caught_at_finalize() {
    let mutated = ClusterSimConfig { mutation: Some(Mutation::GrantNoDedup), ..torture() };
    let report = run_sim(&mutated, PINNED_SEED);
    assert!(
        report.converged,
        "the leak is a quiescent-state bug; the drain itself still \
         converges: {:?}",
        report.violations
    );
    assert!(
        report.violations.iter().any(|v| v.contains("exact-range")),
        "a double-allocated grant leaks a block; the finalize audit must \
         report the gap, got: {:?}",
        report.violations
    );
    assert!(
        report.stats.duplicated >= 1,
        "the pinned schedule must actually duplicate a hop: {:?}",
        report.stats
    );
}

#[test]
fn replicated_cluster_survives_crash_and_partition_torture() {
    // ISSUE acceptance: a replicated coordinator under lossy faults,
    // one replica crash, and a split-brain-shaped partition still
    // satisfies the global contract for 3 and 5 replicas.
    for replicas in [3, 5] {
        for seed in 1..=8 {
            let config =
                ClusterSimConfig { replicas, replica_crashes: 1, partitions: 1, ..torture() };
            let report = run_sim(&config, seed);
            assert!(
                report.converged,
                "replicas={replicas} seed={seed} failed to drain: {:?}",
                report.violations
            );
            assert_eq!(
                report.violations,
                Vec::<String>::new(),
                "replicas={replicas} seed={seed} violated the global contract"
            );
            assert_eq!(report.handed, report.unique, "repeats without a violation report");
            assert!(
                report.stats.replica_crashes >= 1 && report.stats.replica_restarts >= 1,
                "replicas={replicas} seed={seed}: the replica churn never fired ({:?})",
                report.stats
            );
            assert!(
                report.stats.severed > 0,
                "replicas={replicas} seed={seed}: the partition window cut nothing ({:?})",
                report.stats
            );
        }
    }
}

#[test]
fn replicated_runs_are_byte_identical_per_seed() {
    let config = ClusterSimConfig {
        replicas: 3,
        replica_crashes: 1,
        partitions: 1,
        record_trace: true,
        ..torture()
    };
    let a = run_sim(&config, 0xC0FFEE);
    let b = run_sim(&config, 0xC0FFEE);
    assert_eq!(a, b, "two replicated runs from one seed must agree field-for-field");
    let json_a = serde_json::to_string(a.trace.as_ref().expect("trace")).expect("serializes");
    let json_b = serde_json::to_string(b.trace.as_ref().expect("trace")).expect("serializes");
    assert_eq!(json_a, json_b, "serialized replicated traces must be byte-identical");
}

#[test]
fn pinned_split_brain_double_grant_counterexample_is_caught_online() {
    // The pinned schedule isolates the current leader mid-lease while
    // demand keeps flowing to both sides of the cut. The mutated stale
    // leader keeps granting off-log; the new quorum leader re-grants
    // the same blocks, and the checker catches the repeat online.
    let mutated = ClusterSimConfig {
        replicas: 5,
        replica_crashes: 0,
        partitions: 3,
        mutation: Some(Mutation::SplitBrainDoubleGrant),
        record_trace: true,
        ..torture()
    };
    let report = run_sim(&mutated, PINNED_SEED);
    assert!(
        report.stats.severed > 0,
        "the pinned schedule must sever replica links: {:?}",
        report.stats
    );
    assert!(
        report.violations.iter().any(|v| v.contains("uniqueness")),
        "a stale leader double-grants after losing its lease; the \
         checker must catch it online, got: {:?}",
        report.violations
    );

    // Replaying from the recorded seed reproduces the identical trace.
    let trace = report.trace.expect("trace recorded");
    let replay = run_sim(&mutated, trace.seed);
    assert_eq!(replay.trace.expect("trace recorded"), trace);

    // The fixed protocol survives the very same schedule: a clean
    // stale leader steps down when its lease lapses instead.
    let clean = run_sim(&ClusterSimConfig { mutation: None, ..mutated }, PINNED_SEED);
    assert!(clean.converged, "{:?}", clean.violations);
    assert_eq!(clean.violations, Vec::<String>::new());
}

#[test]
fn pinned_commit_before_quorum_counterexample_is_caught_at_finalize() {
    // The mutated leader applies and grants entries no quorum has
    // acknowledged. When the partition heals, the legitimate log wins
    // and the minority suffix is truncated — values were handed out
    // that the surviving grant log no longer covers.
    let mutated = ClusterSimConfig {
        replicas: 3,
        replica_crashes: 0,
        partitions: 1,
        mutation: Some(Mutation::CommitBeforeQuorum),
        record_trace: true,
        ..torture()
    };
    let report = run_sim(&mutated, PINNED_SEED);
    assert!(
        report.violations.iter().any(|v| v.contains("exact-range")),
        "healing truncates minority-committed grants; the finalize \
         audit must report the gap, got: {:?}",
        report.violations
    );

    // Replaying from the recorded seed reproduces the identical trace.
    let trace = report.trace.expect("trace recorded");
    let replay = run_sim(&mutated, trace.seed);
    assert_eq!(replay.trace.expect("trace recorded"), trace);

    // The fixed protocol survives the very same schedule.
    let clean = run_sim(&ClusterSimConfig { mutation: None, ..mutated }, PINNED_SEED);
    assert!(clean.converged, "{:?}", clean.violations);
    assert_eq!(clean.violations, Vec::<String>::new());
}

#[test]
fn mutation_flags_round_trip() {
    for mutation in Mutation::ALL {
        assert_eq!(Mutation::parse(mutation.flag()), Some(mutation));
    }
    assert_eq!(Mutation::parse("no-such-mutation"), None);
}
