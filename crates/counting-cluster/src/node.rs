//! The worker node state machine.
//!
//! A [`Node`] is sans-IO: drivers feed it envelopes ([`Node::on_message`]),
//! virtual-time ticks ([`Node::on_tick`]) and local demand
//! ([`Node::demand`]); it emits sends through an outbox
//! ([`Node::take_outbox`]) and handed-out global values through
//! [`Node::take_handouts`]. The same state machine runs under the
//! deterministic simulation and under real threads ([`crate::live`]).
//!
//! Local serving goes through a real [`CounterService`] registry: the
//! node's tenant stream index (the registry watermark) maps through the
//! node's block ledger to a global value. Everything the protocol needs
//! to survive a crash lives in [`NodeDurable`]; a restart replays it —
//! the local watermark through
//! [`CounterService::restore_watermark`] (eviction-style resume), and an
//! in-doubt lease request through a recovery query the coordinator
//! answers from its grant log or tombstones.

use std::sync::Arc;

use counting_runtime::SharedCounter;
use counting_service::{Backend, CounterService, ServiceConfig, TenantCounter};

use crate::message::{
    next_hop, tree_children, Block, Envelope, Message, NodeId, Outgoing, COORDINATOR,
};

/// The tenant name a node's global stream lives under in its local
/// registry.
pub const CLUSTER_TENANT: &str = "cluster/global";

/// Protocol timing and sizing knobs, in virtual ticks. One config is
/// shared by nodes and coordinator so the failure detector and the
/// heartbeat period agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Heartbeat period.
    pub heartbeat_every: u64,
    /// Retry period for unanswered requests, returns and membership
    /// rebroadcasts.
    pub retry_after: u64,
    /// Silence after which the coordinator declares a worker dead.
    pub fail_after: u64,
    /// Minimum block length a node requests.
    pub lease_quantum: u64,
    /// Maximum block length a node requests at once.
    pub max_lease: u64,
    /// Tree-routed attempts per request before falling back to a
    /// direct send (routes around dead relays).
    pub tree_attempts: u32,
    /// Replicated coordinator only ([`crate::replica`]): how long a
    /// follower's append ack keeps counting toward the leader's lease,
    /// and (doubled, plus a per-replica stagger) the election timeout.
    pub lease_ticks: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            heartbeat_every: 25,
            retry_after: 60,
            fail_after: 160,
            lease_quantum: 16,
            max_lease: 256,
            tree_attempts: 2,
            lease_ticks: 80,
        }
    }
}

/// One outstanding lease request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingLease {
    /// The request id (per-node monotonic).
    pub req_id: u64,
    /// The requested length.
    pub want: u64,
}

/// Everything a node persists: the state a crash-restart replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDurable {
    /// This node's id.
    pub id: NodeId,
    /// Granted blocks, in grant order (requests are issued one at a
    /// time, so grant order equals request-id order).
    pub ledger: Vec<Block>,
    /// Total values ever handed out locally — the local watermark the
    /// restart re-seeds the registry with.
    pub consumed: u64,
    /// Next fresh request id.
    pub next_req: u64,
    /// The in-doubt request a restart must resolve before issuing new
    /// ones.
    pub pending: Option<PendingLease>,
    /// Whether the node has sealed its stream (sent its final
    /// `Return`).
    pub sealed: bool,
    /// Whether the seal is a membership leave (vs. an end-of-run
    /// drain).
    pub leaving: bool,
}

impl NodeDurable {
    fn fresh(id: NodeId) -> Self {
        Self {
            id,
            ledger: Vec::new(),
            consumed: 0,
            next_req: 0,
            pending: None,
            sealed: false,
            leaving: false,
        }
    }
}

/// The worker state machine. See the [module docs](self).
#[derive(Debug)]
pub struct Node {
    config: ProtocolConfig,
    durable: NodeDurable,
    service: CounterService,
    counter: Arc<TenantCounter>,
    view_epoch: u64,
    view: Vec<NodeId>,
    joined: bool,
    backlog: u64,
    draining: bool,
    sealed_acked: bool,
    recovering: bool,
    attempts: u32,
    last_request: Option<u64>,
    last_heartbeat: Option<u64>,
    last_join: Option<u64>,
    last_return: Option<u64>,
    return_attempts: u32,
    outbox: Vec<Outgoing>,
    handouts: Vec<u64>,
}

fn local_service() -> CounterService {
    // The local registry backend: a node's global uniqueness comes from
    // disjoint leased blocks, so the cheap centralized counter is the
    // right local core — the registry's watermark machinery (not the
    // backend) is what the protocol leans on.
    CounterService::new(ServiceConfig {
        backend: Backend::Central,
        elimination: false,
        shards: 1,
        ..ServiceConfig::default()
    })
}

fn due(last: Option<u64>, now: u64, every: u64) -> bool {
    last.is_none_or(|t| now.saturating_sub(t) >= every)
}

impl Node {
    /// A founding member booting with the bootstrap member list at
    /// epoch 1 (`members` includes the coordinator).
    #[must_use]
    pub fn bootstrap(id: NodeId, config: ProtocolConfig, mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        let joined = members.contains(&id);
        let mut node = Self::from_parts(NodeDurable::fresh(id), config, true);
        node.view_epoch = 1;
        node.view = members;
        node.joined = joined;
        node
    }

    /// A brand-new node that knows only the coordinator's address; it
    /// sends `Join` until a membership containing it arrives.
    #[must_use]
    pub fn fresh(id: NodeId, config: ProtocolConfig) -> Self {
        Self::from_parts(NodeDurable::fresh(id), config, true)
    }

    /// Rebuilds a node from its durable state after a crash.
    ///
    /// `recover_watermark` replays the persisted local watermark into
    /// the fresh registry ([`CounterService::restore_watermark`]); it is
    /// `false` only under the calibration mutation
    /// [`crate::sim::Mutation::SkipRecovery`], which makes the rebuilt
    /// stream restart at zero and re-hand old values — the duplicate the
    /// online checker must catch. An in-doubt pending request switches
    /// the node into recovery: it queries the coordinator about exactly
    /// that request id before issuing any new one.
    #[must_use]
    pub fn restart(durable: NodeDurable, config: ProtocolConfig, recover_watermark: bool) -> Self {
        let mut node = Self::from_parts(durable, config, recover_watermark);
        node.recovering = node.durable.pending.is_some();
        if node.recovering {
            let pending = node.durable.pending.expect("checked above");
            node.send_up(
                Message::RecoverQuery { node: node.durable.id, req_id: pending.req_id },
                true,
            );
        }
        node
    }

    fn from_parts(durable: NodeDurable, config: ProtocolConfig, recover_watermark: bool) -> Self {
        let service = local_service();
        if recover_watermark && durable.consumed > 0 {
            let restored = service.restore_watermark(CLUSTER_TENANT, durable.consumed);
            debug_assert!(restored, "no tenant can be live in a fresh registry");
        }
        let counter = service.get_or_create(CLUSTER_TENANT);
        Self {
            config,
            durable,
            service,
            counter,
            view_epoch: 0,
            view: Vec::new(),
            joined: false,
            backlog: 0,
            draining: false,
            sealed_acked: false,
            recovering: false,
            attempts: 0,
            last_request: None,
            last_heartbeat: None,
            last_join: None,
            last_return: None,
            return_attempts: 0,
            outbox: Vec::new(),
            handouts: Vec::new(),
        }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.durable.id
    }

    /// The state a crash would preserve.
    #[must_use]
    pub fn durable(&self) -> &NodeDurable {
        &self.durable
    }

    /// The node's local registry (one tenant: the global stream).
    #[must_use]
    pub fn service(&self) -> &CounterService {
        &self.service
    }

    /// Whether the node appears in its own membership view.
    #[must_use]
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Whether the node's final `Return` has been acknowledged — the
    /// per-node termination condition of a drain or leave.
    #[must_use]
    pub fn is_sealed_acked(&self) -> bool {
        self.sealed_acked
    }

    /// The membership epoch the node has adopted.
    #[must_use]
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch
    }

    /// Unserved local demand.
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Drains the sends decided since the last call.
    pub fn take_outbox(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains the global values handed out since the last call.
    pub fn take_handouts(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.handouts)
    }

    /// Accepts `n` units of local demand (ignored once
    /// sealing/draining).
    pub fn demand(&mut self, now: u64, n: u64) {
        if self.durable.sealed || self.durable.leaving || self.draining {
            return;
        }
        self.backlog += n;
        self.pump(now);
    }

    /// Enters end-of-run drain: unserved demand is abandoned and the
    /// node seals (returns its unconsumed tail) once its in-flight
    /// request resolves.
    pub fn begin_drain(&mut self, now: u64) {
        self.draining = true;
        self.backlog = 0;
        self.try_seal(now);
    }

    /// Starts a graceful membership leave (drain plus removal from the
    /// member list).
    pub fn begin_leave(&mut self, now: u64) {
        self.durable.leaving = true;
        self.backlog = 0;
        self.try_seal(now);
    }

    /// Handles one delivered envelope (relaying it if this node is not
    /// the destination).
    pub fn on_message(&mut self, now: u64, env: Envelope) {
        if env.dst != self.durable.id {
            let hop = next_hop(&self.view, self.durable.id, env.dst).unwrap_or(env.dst);
            self.outbox.push(Outgoing { hop, env });
            return;
        }
        match env.msg {
            Message::LeaseGrant { node, req_id, base, len } => {
                if node != self.durable.id || self.durable.sealed {
                    return;
                }
                match self.durable.pending {
                    Some(p) if p.req_id == req_id => {
                        self.durable.ledger.push(Block { base, len });
                        self.durable.pending = None;
                        self.recovering = false;
                        self.attempts = 0;
                        self.pump(now);
                        self.try_seal(now);
                    }
                    // A duplicate of an already-applied grant: the
                    // ledger already holds it; applying again would
                    // fork the stream.
                    _ => {}
                }
            }
            Message::RecoverNone { node, req_id } => {
                if node != self.durable.id {
                    return;
                }
                if let Some(p) = self.durable.pending {
                    if p.req_id == req_id {
                        // The in-doubt request is tombstoned: it was
                        // never granted and never will be, so a fresh
                        // id is safe.
                        self.durable.pending = None;
                        self.recovering = false;
                        self.attempts = 0;
                        self.pump(now);
                        self.try_seal(now);
                    }
                }
            }
            Message::Membership { epoch, mut members } => {
                if epoch < self.view_epoch {
                    return;
                }
                let adopted = epoch > self.view_epoch;
                if adopted {
                    members.sort_unstable();
                    self.view_epoch = epoch;
                    self.view = members;
                    self.joined = self.view.contains(&self.durable.id);
                }
                self.send_direct(
                    COORDINATOR,
                    Message::MembershipAck { node: self.durable.id, epoch: self.view_epoch },
                );
                if adopted {
                    // Propagate down the new tree exactly once per
                    // adoption; the coordinator re-sends directly to
                    // stragglers.
                    for child in tree_children(&self.view, self.durable.id) {
                        self.send_direct(
                            child,
                            Message::Membership {
                                epoch: self.view_epoch,
                                members: self.view.clone(),
                            },
                        );
                    }
                }
            }
            Message::ReturnAck { node, watermark } => {
                if node == self.durable.id
                    && self.durable.sealed
                    && watermark == self.durable.consumed
                {
                    self.sealed_acked = true;
                }
            }
            // Coordinator-bound and replica-group kinds addressed to a
            // worker are misrouted noise on a faulty network: ignore.
            Message::LeaseRequest { .. }
            | Message::RecoverQuery { .. }
            | Message::Heartbeat { .. }
            | Message::Join { .. }
            | Message::MembershipAck { .. }
            | Message::Return { .. }
            | Message::VoteRequest { .. }
            | Message::VoteReply { .. }
            | Message::Append { .. }
            | Message::AppendAck { .. } => {}
        }
    }

    /// Advances timers: join attempts, heartbeats, request/return
    /// retries, seal progress.
    pub fn on_tick(&mut self, now: u64) {
        let id = self.durable.id;
        if !self.joined && due(self.last_join, now, self.config.retry_after) {
            self.send_direct(COORDINATOR, Message::Join { node: id });
            self.last_join = Some(now);
        }
        let passive = self.durable.leaving && self.sealed_acked;
        if self.joined && !passive && due(self.last_heartbeat, now, self.config.heartbeat_every) {
            self.send_direct(COORDINATOR, Message::Heartbeat { node: id, epoch: self.view_epoch });
            self.last_heartbeat = Some(now);
        }
        if let Some(p) = self.durable.pending {
            if due(self.last_request, now, self.config.retry_after) {
                let msg = if self.recovering {
                    Message::RecoverQuery { node: id, req_id: p.req_id }
                } else {
                    Message::LeaseRequest { node: id, req_id: p.req_id, want: p.want }
                };
                let direct = self.attempts >= self.config.tree_attempts;
                self.send_up(msg, direct);
                self.last_request = Some(now);
                self.attempts += 1;
            }
        }
        self.try_seal(now);
        if self.durable.sealed
            && !self.sealed_acked
            && due(self.last_return, now, self.config.retry_after)
        {
            let msg = Message::Return {
                node: id,
                watermark: self.durable.consumed,
                leaving: self.durable.leaving,
            };
            let direct = self.return_attempts >= self.config.tree_attempts;
            self.send_up(msg, direct);
            self.last_return = Some(now);
            self.return_attempts += 1;
        }
    }

    /// Total values in the ledger.
    fn ledger_total(&self) -> u64 {
        self.durable.ledger.iter().map(|b| b.len).sum()
    }

    /// Maps a local stream index through the ledger to a global value.
    fn map_global(&self, idx: u64) -> u64 {
        let mut rem = idx;
        for block in &self.durable.ledger {
            if rem < block.len {
                return block.base + rem;
            }
            rem -= block.len;
        }
        unreachable!("callers check idx < ledger_total")
    }

    /// Serves backlog from the ledger, then requests more if demand
    /// outruns it.
    fn pump(&mut self, now: u64) {
        let total = self.ledger_total();
        while self.backlog > 0 && !self.durable.sealed {
            // The registry watermark is the node's local stream cursor;
            // after an honest restart it resumes exactly at the durable
            // watermark, the same way a re-created tenant resumes after
            // an eviction.
            let idx = self.counter.watermark();
            if idx >= total {
                break;
            }
            let idx = self.counter.next(0);
            self.handouts.push(self.map_global(idx));
            // Monotonic: the durable watermark never rewinds even if
            // the local registry were mis-seeded.
            self.durable.consumed = self.durable.consumed.max(self.counter.watermark());
            self.backlog -= 1;
        }
        self.maybe_request(now);
    }

    fn maybe_request(&mut self, now: u64) {
        if self.durable.sealed
            || self.durable.leaving
            || self.draining
            || self.recovering
            || self.durable.pending.is_some()
            || !self.joined
        {
            return;
        }
        let available = self.ledger_total().saturating_sub(self.counter.watermark());
        let deficit = self.backlog.saturating_sub(available);
        if deficit == 0 {
            return;
        }
        let want = deficit.clamp(self.config.lease_quantum, self.config.max_lease);
        let req_id = self.durable.next_req;
        self.durable.next_req += 1;
        self.durable.pending = Some(PendingLease { req_id, want });
        self.attempts = 0;
        self.send_up(Message::LeaseRequest { node: self.durable.id, req_id, want }, false);
        self.last_request = Some(now);
        self.attempts = 1;
    }

    /// Seals once draining/leaving and no request is in flight: the
    /// node's consumed count freezes and its unconsumed tail goes back.
    fn try_seal(&mut self, now: u64) {
        if !(self.draining || self.durable.leaving)
            || self.durable.sealed
            || self.durable.pending.is_some()
            || self.recovering
        {
            return;
        }
        self.durable.sealed = true;
        self.backlog = 0;
        let msg = Message::Return {
            node: self.durable.id,
            watermark: self.durable.consumed,
            leaving: self.durable.leaving,
        };
        self.send_up(msg, false);
        self.last_return = Some(now);
        self.return_attempts = 1;
    }

    /// Sends toward the coordinator: tree-routed, or direct after the
    /// configured attempts (or when the view has no route).
    fn send_up(&mut self, msg: Message, direct: bool) {
        let env = Envelope { src: self.durable.id, dst: COORDINATOR, msg };
        let hop = if direct {
            COORDINATOR
        } else {
            next_hop(&self.view, self.durable.id, COORDINATOR).unwrap_or(COORDINATOR)
        };
        self.outbox.push(Outgoing { hop, env });
    }

    fn send_direct(&mut self, to: NodeId, msg: Message) {
        self.outbox
            .push(Outgoing { hop: to, env: Envelope { src: self.durable.id, dst: to, msg } });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(node: &mut Node, now: u64, msg: Message) {
        let dst = node.id();
        node.on_message(now, Envelope { src: COORDINATOR, dst, msg });
    }

    #[test]
    fn serves_demand_from_granted_blocks_in_order() {
        let mut node = Node::bootstrap(1, ProtocolConfig::default(), vec![0, 1, 2]);
        assert!(node.is_joined());
        node.demand(0, 3);
        let out = node.take_outbox();
        assert_eq!(out.len(), 1, "one lease request for the whole backlog");
        let Message::LeaseRequest { node: n, req_id, want } = out[0].env.msg.clone() else {
            panic!("expected a lease request, got {:?}", out[0].env.msg);
        };
        assert_eq!((n, req_id), (1, 0));
        assert!(want >= 3);

        deliver(&mut node, 1, Message::LeaseGrant { node: 1, req_id: 0, base: 100, len: want });
        assert_eq!(node.take_handouts(), vec![100, 101, 102]);
        assert_eq!(node.durable().consumed, 3);

        // A duplicated grant must not extend the ledger again.
        deliver(&mut node, 2, Message::LeaseGrant { node: 1, req_id: 0, base: 100, len: want });
        node.demand(2, 1);
        assert_eq!(node.take_handouts(), vec![103], "the stream continues, no fork");
    }

    #[test]
    fn restart_resumes_the_stream_at_the_durable_watermark() {
        let mut node = Node::bootstrap(1, ProtocolConfig::default(), vec![0, 1]);
        node.demand(0, 2);
        let _ = node.take_outbox();
        deliver(&mut node, 1, Message::LeaseGrant { node: 1, req_id: 0, base: 40, len: 16 });
        assert_eq!(node.take_handouts(), vec![40, 41]);

        let durable = node.durable().clone();
        let mut revived = Node::restart(durable, ProtocolConfig::default(), true);
        assert!(revived.take_outbox().is_empty(), "no in-doubt request, nothing to recover");
        // The restarted node is not joined until a membership arrives,
        // but serving from its ledger needs no network.
        deliver(&mut revived, 5, Message::Membership { epoch: 2, members: vec![0, 1] });
        revived.demand(5, 2);
        assert_eq!(revived.take_handouts(), vec![42, 43], "resumed exactly past the crash");
    }

    #[test]
    fn restart_with_in_doubt_request_recovers_before_requesting() {
        let mut node = Node::bootstrap(1, ProtocolConfig::default(), vec![0, 1]);
        node.demand(0, 1);
        let _ = node.take_outbox(); // the request is "lost" with the crash
        let durable = node.durable().clone();
        assert!(durable.pending.is_some());

        let mut revived = Node::restart(durable, ProtocolConfig::default(), true);
        let out = revived.take_outbox();
        assert_eq!(out.len(), 1);
        assert!(
            matches!(out[0].env.msg, Message::RecoverQuery { node: 1, req_id: 0 }),
            "recovery asks about exactly the in-doubt id"
        );
        // Tombstoned: the node may use fresh ids again.
        deliver(&mut revived, 3, Message::RecoverNone { node: 1, req_id: 0 });
        assert!(revived.durable().pending.is_none());
        assert_eq!(revived.durable().next_req, 1, "the tombstoned id is never reused");
    }

    #[test]
    fn drain_seals_and_returns_the_unconsumed_tail() {
        let mut node = Node::bootstrap(2, ProtocolConfig::default(), vec![0, 2]);
        node.demand(0, 2);
        let _ = node.take_outbox();
        deliver(&mut node, 1, Message::LeaseGrant { node: 2, req_id: 0, base: 0, len: 16 });
        let _ = node.take_handouts();

        node.begin_drain(10);
        let out = node.take_outbox();
        let returns: Vec<_> =
            out.iter().filter(|o| matches!(o.env.msg, Message::Return { .. })).collect();
        assert_eq!(returns.len(), 1);
        assert!(
            matches!(returns[0].env.msg, Message::Return { node: 2, watermark: 2, leaving: false }),
            "the return carries the exact consumed watermark"
        );
        assert!(!node.is_sealed_acked());
        deliver(&mut node, 12, Message::ReturnAck { node: 2, watermark: 2 });
        assert!(node.is_sealed_acked());
        // Demand after sealing is refused, not silently mis-served.
        node.demand(13, 5);
        assert!(node.take_handouts().is_empty());
    }

    #[test]
    fn relays_envelopes_not_addressed_to_it() {
        let mut node = Node::bootstrap(1, ProtocolConfig::default(), vec![0, 1, 2, 3]);
        // members [0,1,2,3]: node 1 is at position 1, its children are
        // positions 3.. → node 3.
        let env = Envelope {
            src: COORDINATOR,
            dst: 3,
            msg: Message::LeaseGrant { node: 3, req_id: 0, base: 0, len: 4 },
        };
        node.on_message(0, env.clone());
        let out = node.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].hop, 3, "forwarded down the tree");
        assert_eq!(out[0].env, env, "envelope unchanged");
    }

    #[test]
    fn stale_membership_is_ignored_and_new_is_propagated() {
        let mut node = Node::bootstrap(1, ProtocolConfig::default(), vec![0, 1]);
        deliver(&mut node, 1, Message::Membership { epoch: 3, members: vec![0, 1, 2, 3] });
        assert_eq!(node.view_epoch(), 3);
        let out = node.take_outbox();
        assert!(
            out.iter().any(|o| matches!(o.env.msg, Message::MembershipAck { node: 1, epoch: 3 })),
            "adoption is acknowledged"
        );
        assert!(
            out.iter().any(|o| o.hop == 3 && matches!(o.env.msg, Message::Membership { .. })),
            "adoption fans out to tree children"
        );
        deliver(&mut node, 2, Message::Membership { epoch: 2, members: vec![0, 9] });
        assert_eq!(node.view_epoch(), 3, "stale epochs are inert");
        assert!(node.is_joined());
    }
}
