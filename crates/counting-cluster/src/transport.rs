//! The transport seam between state machines and a real network.
//!
//! State machines never send directly — they fill an outbox of
//! [`Outgoing`] hops, and a driver flushes it through a [`Transport`].
//! [`ChannelTransport`] is the in-memory implementation used by the
//! live-thread harness ([`crate::live`]); a socket transport would
//! implement the same trait, serializing [`crate::message::Message`]
//! through its hand-written serde impls. The deterministic simulation
//! deliberately bypasses the trait: it *is* the network, so it
//! intercepts every hop to apply the fault plan.

use std::collections::BTreeMap;
use std::sync::mpsc::Sender;

use crate::message::{Envelope, NodeId, Outgoing};

/// Delivers envelopes to a neighbor. `send` is best-effort by design —
/// the protocol assumes a lossy network, so failed sends are dropped
/// silently, exactly like a lost datagram.
pub trait Transport {
    /// Attempts delivery of `env` to `hop`.
    fn send(&self, hop: NodeId, env: Envelope);

    /// Flushes a whole outbox.
    fn send_all(&self, outbox: Vec<Outgoing>) {
        for out in outbox {
            self.send(out.hop, out.env);
        }
    }
}

/// An in-memory transport over `std::sync::mpsc` channels: one sender
/// per participant, cloneable so every node thread owns a handle to the
/// whole cluster.
#[derive(Debug, Clone, Default)]
pub struct ChannelTransport {
    peers: BTreeMap<NodeId, Sender<Envelope>>,
}

impl ChannelTransport {
    /// An empty transport; register peers with [`Self::register`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `id`'s inbox sender.
    pub fn register(&mut self, id: NodeId, sender: Sender<Envelope>) {
        self.peers.insert(id, sender);
    }
}

impl Transport for ChannelTransport {
    fn send(&self, hop: NodeId, env: Envelope) {
        if let Some(peer) = self.peers.get(&hop) {
            // A disconnected receiver is a crashed peer: the message is
            // simply lost, as on a real network.
            let _ = peer.send(env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use std::sync::mpsc::channel;

    #[test]
    fn routes_to_registered_peers_and_drops_the_rest() {
        let (tx, rx) = channel();
        let mut transport = ChannelTransport::new();
        transport.register(1, tx);
        let env = Envelope { src: 0, dst: 1, msg: Message::Join { node: 1 } };
        transport.send_all(vec![
            Outgoing { hop: 1, env: env.clone() },
            Outgoing { hop: 9, env: env.clone() }, // unknown peer: dropped
        ]);
        assert_eq!(rx.try_recv().ok(), Some(env));
        assert!(rx.try_recv().is_err(), "nothing else arrived");
    }

    #[test]
    fn send_to_a_dropped_receiver_is_lost_not_a_panic() {
        let (tx, rx) = channel();
        let mut transport = ChannelTransport::new();
        transport.register(2, tx);
        drop(rx);
        transport.send(2, Envelope { src: 0, dst: 2, msg: Message::Join { node: 2 } });
    }
}
