//! Wire messages, envelopes and tree routing.
//!
//! The protocol speaks fourteen message kinds over an unreliable
//! network, so every kind is safe to drop, duplicate or reorder:
//! requests carry per-node request ids the coordinator deduplicates on,
//! acknowledgement kinds are idempotent, membership carries an epoch
//! that makes stale copies inert, and the replication kinds
//! (`vote-request` / `vote-reply` / `append` / `append-ack`) carry terms
//! that make stale copies inert. [`Message`] implements the vendored
//! `serde` traits by hand (the derive stub only covers named-field
//! structs and unit enums), which is the wire-format seam a socket
//! transport will use; the in-memory transports move the enum directly.

use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

use crate::replica::LogEntry;

/// A cluster participant id. The coordinator is always
/// [`COORDINATOR`]; worker nodes use ids `>= 1`.
pub type NodeId = u64;

/// The coordinator's well-known id.
pub const COORDINATOR: NodeId = 0;

/// One contiguous run of global values, `base..base + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// First value of the run.
    pub base: u64,
    /// Number of values in the run.
    pub len: u64,
}

impl Block {
    /// The first value past the run.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// A protocol message. See the [crate docs](crate) for the protocol;
/// field conventions: `node` is the worker the message concerns,
/// `req_id` a per-node monotonic request id, `epoch` a membership
/// version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker → coordinator: lease `want` more values (retried with the
    /// same `req_id` until answered; the coordinator deduplicates).
    LeaseRequest {
        /// Requesting worker.
        node: NodeId,
        /// Per-node monotonic request id.
        req_id: u64,
        /// Requested block length.
        want: u64,
    },
    /// Coordinator → worker: the (deduplicated) answer to
    /// `LeaseRequest { node, req_id, .. }`.
    LeaseGrant {
        /// Granted worker.
        node: NodeId,
        /// The request this grant answers.
        req_id: u64,
        /// First value of the granted block.
        base: u64,
        /// Length of the granted block.
        len: u64,
    },
    /// Worker → coordinator after a restart: what happened to `req_id`?
    /// Answered with the recorded grant, or tombstoned + `RecoverNone`.
    RecoverQuery {
        /// Recovering worker.
        node: NodeId,
        /// The in-doubt request id.
        req_id: u64,
    },
    /// Coordinator → worker: `req_id` was never granted and — now
    /// tombstoned — never will be; the worker may reuse fresh ids.
    RecoverNone {
        /// The worker whose request was tombstoned.
        node: NodeId,
        /// The tombstoned request id.
        req_id: u64,
    },
    /// Worker → coordinator liveness signal (also re-admits a worker
    /// the failure detector declared dead).
    Heartbeat {
        /// The living worker.
        node: NodeId,
        /// The worker's current membership view epoch.
        epoch: u64,
    },
    /// A new worker asks to be admitted to the member list.
    Join {
        /// The joining worker.
        node: NodeId,
    },
    /// Coordinator → workers (tree-propagated): the member list at
    /// `epoch`. Stale epochs are ignored.
    Membership {
        /// Membership version.
        epoch: u64,
        /// All member ids (coordinator included), sorted.
        members: Vec<NodeId>,
    },
    /// Worker → coordinator: acknowledges adoption of `epoch` (the
    /// quorum signal that commits it).
    MembershipAck {
        /// Acknowledging worker.
        node: NodeId,
        /// The adopted epoch.
        epoch: u64,
    },
    /// Worker → coordinator: the worker has consumed exactly
    /// `watermark` values and returns everything beyond it (graceful
    /// leave when `leaving`, end-of-run drain otherwise). Idempotent.
    Return {
        /// The sealing worker.
        node: NodeId,
        /// Total values the worker ever handed out.
        watermark: u64,
        /// Whether the worker is leaving the membership.
        leaving: bool,
    },
    /// Coordinator → worker: `Return { watermark }` was processed.
    ReturnAck {
        /// The sealed worker.
        node: NodeId,
        /// The sealed watermark.
        watermark: u64,
    },
    /// Replica → replica: `candidate` asks for a vote in `term`
    /// ([`crate::replica`]).
    VoteRequest {
        /// The candidate's term.
        term: u64,
        /// The candidate replica.
        candidate: NodeId,
        /// The candidate's log length (up-to-dateness check).
        log_len: u64,
        /// The term of the candidate's last log entry (0 when empty).
        last_term: u64,
    },
    /// Replica → replica: the answer to a `VoteRequest`.
    VoteReply {
        /// The voter's current term.
        term: u64,
        /// The voting replica.
        voter: NodeId,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader → follower: replicate one log entry at `index` (or a pure
    /// heartbeat when `entry` is absent).
    Append {
        /// The leader's term.
        term: u64,
        /// The leader replica.
        leader: NodeId,
        /// The log position `entry` goes at (also the follower prefix
        /// the leader believes matches).
        index: u64,
        /// The term of the entry before `index` (0 at the log head) —
        /// the consistency check.
        prev_term: u64,
        /// The entry to append, absent for heartbeats.
        entry: Option<LogEntry>,
        /// The leader's commit index (entries, not bytes).
        commit: u64,
    },
    /// Follower → leader: the answer to an `Append`.
    AppendAck {
        /// The follower's current term.
        term: u64,
        /// The acknowledging follower.
        follower: NodeId,
        /// The follower's highest log prefix known to match the leader
        /// (on reject: a safe retry hint — its commit index).
        matched: u64,
        /// Whether the append was consistent and accepted.
        ok: bool,
    },
}

impl Message {
    /// A short stable tag naming the message kind (used as the serde
    /// discriminant and in traces).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Message::LeaseRequest { .. } => "lease-request",
            Message::LeaseGrant { .. } => "lease-grant",
            Message::RecoverQuery { .. } => "recover-query",
            Message::RecoverNone { .. } => "recover-none",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Join { .. } => "join",
            Message::Membership { .. } => "membership",
            Message::MembershipAck { .. } => "membership-ack",
            Message::Return { .. } => "return",
            Message::ReturnAck { .. } => "return-ack",
            Message::VoteRequest { .. } => "vote-request",
            Message::VoteReply { .. } => "vote-reply",
            Message::Append { .. } => "append",
            Message::AppendAck { .. } => "append-ack",
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::LeaseRequest { node, req_id, want } => {
                write!(f, "lease-request n{node} r{req_id} want={want}")
            }
            Message::LeaseGrant { node, req_id, base, len } => {
                write!(f, "lease-grant n{node} r{req_id} [{base}..{})", base + len)
            }
            Message::RecoverQuery { node, req_id } => write!(f, "recover-query n{node} r{req_id}"),
            Message::RecoverNone { node, req_id } => write!(f, "recover-none n{node} r{req_id}"),
            Message::Heartbeat { node, epoch } => write!(f, "heartbeat n{node} e{epoch}"),
            Message::Join { node } => write!(f, "join n{node}"),
            Message::Membership { epoch, members } => {
                write!(f, "membership e{epoch} {members:?}")
            }
            Message::MembershipAck { node, epoch } => write!(f, "membership-ack n{node} e{epoch}"),
            Message::Return { node, watermark, leaving } => {
                write!(f, "return n{node} w{watermark} leaving={leaving}")
            }
            Message::ReturnAck { node, watermark } => write!(f, "return-ack n{node} w{watermark}"),
            Message::VoteRequest { term, candidate, log_len, last_term } => {
                write!(f, "vote-request t{term} c{candidate} len={log_len} lt{last_term}")
            }
            Message::VoteReply { term, voter, granted } => {
                write!(f, "vote-reply t{term} v{voter} granted={granted}")
            }
            Message::Append { term, leader, index, entry, commit, .. } => match entry {
                Some(e) => write!(f, "append t{term} l{leader} i{index} {} commit={commit}", e.cmd),
                None => write!(f, "append t{term} l{leader} i{index} heartbeat commit={commit}"),
            },
            Message::AppendAck { term, follower, matched, ok } => {
                write!(f, "append-ack t{term} f{follower} m{matched} ok={ok}")
            }
        }
    }
}

fn obj(kind: &str, fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("kind".to_owned(), Value::Str(kind.to_owned()))];
    entries.extend(fields);
    Value::Object(entries)
}

fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    let inner = value.get(name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(inner)
}

impl Serialize for Message {
    fn to_value(&self) -> Value {
        let kind = self.kind();
        match self {
            Message::LeaseRequest { node, req_id, want } => obj(
                kind,
                vec![
                    ("node".into(), node.to_value()),
                    ("req_id".into(), req_id.to_value()),
                    ("want".into(), want.to_value()),
                ],
            ),
            Message::LeaseGrant { node, req_id, base, len } => obj(
                kind,
                vec![
                    ("node".into(), node.to_value()),
                    ("req_id".into(), req_id.to_value()),
                    ("base".into(), base.to_value()),
                    ("len".into(), len.to_value()),
                ],
            ),
            Message::RecoverQuery { node, req_id } | Message::RecoverNone { node, req_id } => obj(
                kind,
                vec![("node".into(), node.to_value()), ("req_id".into(), req_id.to_value())],
            ),
            Message::Heartbeat { node, epoch } | Message::MembershipAck { node, epoch } => obj(
                kind,
                vec![("node".into(), node.to_value()), ("epoch".into(), epoch.to_value())],
            ),
            Message::Join { node } => obj(kind, vec![("node".into(), node.to_value())]),
            Message::Membership { epoch, members } => obj(
                kind,
                vec![("epoch".into(), epoch.to_value()), ("members".into(), members.to_value())],
            ),
            Message::Return { node, watermark, leaving } => obj(
                kind,
                vec![
                    ("node".into(), node.to_value()),
                    ("watermark".into(), watermark.to_value()),
                    ("leaving".into(), leaving.to_value()),
                ],
            ),
            Message::ReturnAck { node, watermark } => obj(
                kind,
                vec![("node".into(), node.to_value()), ("watermark".into(), watermark.to_value())],
            ),
            Message::VoteRequest { term, candidate, log_len, last_term } => obj(
                kind,
                vec![
                    ("term".into(), term.to_value()),
                    ("candidate".into(), candidate.to_value()),
                    ("log_len".into(), log_len.to_value()),
                    ("last_term".into(), last_term.to_value()),
                ],
            ),
            Message::VoteReply { term, voter, granted } => obj(
                kind,
                vec![
                    ("term".into(), term.to_value()),
                    ("voter".into(), voter.to_value()),
                    ("granted".into(), granted.to_value()),
                ],
            ),
            Message::Append { term, leader, index, prev_term, entry, commit } => obj(
                kind,
                vec![
                    ("term".into(), term.to_value()),
                    ("leader".into(), leader.to_value()),
                    ("index".into(), index.to_value()),
                    ("prev_term".into(), prev_term.to_value()),
                    ("entry".into(), entry.to_value()),
                    ("commit".into(), commit.to_value()),
                ],
            ),
            Message::AppendAck { term, follower, matched, ok } => obj(
                kind,
                vec![
                    ("term".into(), term.to_value()),
                    ("follower".into(), follower.to_value()),
                    ("matched".into(), matched.to_value()),
                    ("ok".into(), ok.to_value()),
                ],
            ),
        }
    }
}

impl Deserialize for Message {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let kind: String = field(value, "kind")?;
        match kind.as_str() {
            "lease-request" => Ok(Message::LeaseRequest {
                node: field(value, "node")?,
                req_id: field(value, "req_id")?,
                want: field(value, "want")?,
            }),
            "lease-grant" => Ok(Message::LeaseGrant {
                node: field(value, "node")?,
                req_id: field(value, "req_id")?,
                base: field(value, "base")?,
                len: field(value, "len")?,
            }),
            "recover-query" => Ok(Message::RecoverQuery {
                node: field(value, "node")?,
                req_id: field(value, "req_id")?,
            }),
            "recover-none" => Ok(Message::RecoverNone {
                node: field(value, "node")?,
                req_id: field(value, "req_id")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat {
                node: field(value, "node")?,
                epoch: field(value, "epoch")?,
            }),
            "join" => Ok(Message::Join { node: field(value, "node")? }),
            "membership" => Ok(Message::Membership {
                epoch: field(value, "epoch")?,
                members: field(value, "members")?,
            }),
            "membership-ack" => Ok(Message::MembershipAck {
                node: field(value, "node")?,
                epoch: field(value, "epoch")?,
            }),
            "return" => Ok(Message::Return {
                node: field(value, "node")?,
                watermark: field(value, "watermark")?,
                leaving: field(value, "leaving")?,
            }),
            "return-ack" => Ok(Message::ReturnAck {
                node: field(value, "node")?,
                watermark: field(value, "watermark")?,
            }),
            "vote-request" => Ok(Message::VoteRequest {
                term: field(value, "term")?,
                candidate: field(value, "candidate")?,
                log_len: field(value, "log_len")?,
                last_term: field(value, "last_term")?,
            }),
            "vote-reply" => Ok(Message::VoteReply {
                term: field(value, "term")?,
                voter: field(value, "voter")?,
                granted: field(value, "granted")?,
            }),
            "append" => Ok(Message::Append {
                term: field(value, "term")?,
                leader: field(value, "leader")?,
                index: field(value, "index")?,
                prev_term: field(value, "prev_term")?,
                entry: field(value, "entry")?,
                commit: field(value, "commit")?,
            }),
            "append-ack" => Ok(Message::AppendAck {
                term: field(value, "term")?,
                follower: field(value, "follower")?,
                matched: field(value, "matched")?,
                ok: field(value, "ok")?,
            }),
            other => Err(Error::custom(format!("unknown message kind `{other}`"))),
        }
    }
}

/// A routed message: original sender, final destination, payload.
/// Relays forward the envelope unchanged; only the hop changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Original sender.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// The payload.
    pub msg: Message,
}

/// One send decided by a state machine: deliver `env` to `hop` next
/// (the hop equals `env.dst` for direct sends, or the next tree edge
/// for routed ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// The next recipient.
    pub hop: NodeId,
    /// The envelope in flight.
    pub env: Envelope,
}

/// The next hop from `from` toward `dst` along the heap-shaped tree
/// over `members` (sorted member ids; position `i`'s parent is
/// `(i - 1) / 2`, so the coordinator — the smallest id — is the root).
///
/// Returns `None` when either endpoint is missing from the member list
/// (callers then fall back to a direct send).
#[must_use]
pub fn next_hop(members: &[NodeId], from: NodeId, dst: NodeId) -> Option<NodeId> {
    let pos = |id: NodeId| members.iter().position(|&m| m == id);
    let from_pos = pos(from)?;
    let dst_pos = pos(dst)?;
    if from_pos == dst_pos {
        return Some(dst);
    }
    // Walk the destination up toward the root: if it passes through
    // `from`, the child we arrived from is the downward hop.
    let mut cur = dst_pos;
    while cur != 0 {
        let parent = (cur - 1) / 2;
        if parent == from_pos {
            return Some(members[cur]);
        }
        cur = parent;
    }
    // Not in our subtree: route up (the root's subtree is everything,
    // so `from` has a parent here).
    if from_pos == 0 {
        None
    } else {
        Some(members[(from_pos - 1) / 2])
    }
}

/// The tree children of `id` in the heap-shaped tree over `members` —
/// the fan-out set for membership propagation.
#[must_use]
pub fn tree_children(members: &[NodeId], id: NodeId) -> Vec<NodeId> {
    let Some(pos) = members.iter().position(|&m| m == id) else {
        return Vec::new();
    };
    [2 * pos + 1, 2 * pos + 2].iter().filter_map(|&c| members.get(c).copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_kind_round_trips_through_serde() {
        let messages = vec![
            Message::LeaseRequest { node: 3, req_id: 7, want: 16 },
            Message::LeaseGrant { node: 3, req_id: 7, base: 128, len: 16 },
            Message::RecoverQuery { node: 2, req_id: 1 },
            Message::RecoverNone { node: 2, req_id: 1 },
            Message::Heartbeat { node: 5, epoch: 4 },
            Message::Join { node: 9 },
            Message::Membership { epoch: 4, members: vec![0, 1, 2, 5, 9] },
            Message::MembershipAck { node: 5, epoch: 4 },
            Message::Return { node: 2, watermark: 99, leaving: true },
            Message::ReturnAck { node: 2, watermark: 99 },
            Message::VoteRequest { term: 3, candidate: 1 << 32, log_len: 12, last_term: 2 },
            Message::VoteReply { term: 3, voter: (1 << 32) + 1, granted: true },
            Message::Append {
                term: 3,
                leader: 1 << 32,
                index: 12,
                prev_term: 2,
                entry: Some(crate::replica::LogEntry {
                    term: 3,
                    cmd: crate::replica::Command::Lease { node: 2, req_id: 7, want: 16 },
                }),
                commit: 11,
            },
            Message::Append {
                term: 3,
                leader: 1 << 32,
                index: 13,
                prev_term: 3,
                entry: None,
                commit: 12,
            },
            Message::AppendAck { term: 3, follower: (1 << 32) + 2, matched: 13, ok: false },
        ];
        for msg in messages {
            let round = Message::from_value(&msg.to_value()).expect("round trip");
            assert_eq!(round, msg);
            assert!(!msg.kind().is_empty());
            assert!(!format!("{msg}").is_empty());
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let bad = Value::Object(vec![("kind".to_owned(), Value::Str("nope".to_owned()))]);
        assert!(Message::from_value(&bad).is_err());
        assert!(Message::from_value(&Value::Null).is_err());
    }

    #[test]
    fn tree_routes_up_and_down() {
        //        0
        //      /   \
        //     1     2
        //    / \   /
        //   3   5 8
        let members = [0, 1, 2, 3, 5, 8];
        // Leaf to root: strictly up the parent chain.
        assert_eq!(next_hop(&members, 8, 0), Some(2));
        assert_eq!(next_hop(&members, 2, 0), Some(0));
        // Root to leaf: down the ancestor chain.
        assert_eq!(next_hop(&members, 0, 3), Some(1));
        assert_eq!(next_hop(&members, 1, 3), Some(3));
        // Cross-subtree: up first.
        assert_eq!(next_hop(&members, 3, 8), Some(1));
        // Unknown endpoint: no route.
        assert_eq!(next_hop(&members, 3, 77), None);
        assert_eq!(next_hop(&[], 0, 1), None);
        // Children sets drive membership fan-out.
        assert_eq!(tree_children(&members, 0), vec![1, 2]);
        assert_eq!(tree_children(&members, 1), vec![3, 5]);
        assert_eq!(tree_children(&members, 2), vec![8]);
        assert_eq!(tree_children(&members, 5), Vec::<NodeId>::new());
    }

    #[test]
    fn block_end_is_exclusive() {
        let b = Block { base: 10, len: 4 };
        assert_eq!(b.end(), 14);
    }
}
