//! # counting-cluster — distributed block-lease counting
//!
//! The crates below this one scale the paper's counting network *within*
//! one address space; this crate takes the next step the ROADMAP
//! north-star asks for: `N` nodes, each owning a local
//! [`counting_service::CounterService`] registry, cooperating over a
//! message-passing layer to hand out one globally unique, gap-free value
//! stream — and staying correct while the network drops, duplicates,
//! delays and reorders messages and nodes crash, restart, join and
//! leave.
//!
//! ## The block-lease protocol
//!
//! A durable **coordinator** owns the global value space as a cursor
//! plus a free-list and leases **disjoint contiguous blocks** to member
//! nodes ([`coordinator`]). Each **node** ([`node`]) serves local demand
//! from its leased blocks through its tenant registry — the node's local
//! stream index maps through its block ledger to a global value — and
//! requests a new lease when demand outruns its ledger. The protocol is
//! built for an unreliable network:
//!
//! * every request carries a per-node request id; requests are retried
//!   and the coordinator deduplicates by `(node, request id)`,
//!   re-sending the recorded grant instead of allocating twice;
//! * a restarted node replays its durable state: its local watermark
//!   re-seeds the registry via
//!   [`counting_service::CounterService::restore_watermark`] (the same
//!   resume rule tenant eviction uses), and an in-doubt request is
//!   resolved with a recovery query the coordinator answers from its
//!   grant log — or **tombstones**, so the in-doubt id can never be
//!   granted later;
//! * membership is versioned in epochs, committed by a worker quorum,
//!   and propagated down a heap-shaped tree over the member list
//!   ([`message::next_hop`]); lease traffic rides the same tree with a
//!   direct-send fallback, and a heartbeat failure detector drives
//!   epoch changes;
//! * a leaving (or draining) node returns its unconsumed lease tail;
//!   the coordinator truncates the node's grants at the returned
//!   watermark and recycles the remainder through the free-list, so the
//!   global stream ends exactly range-tiled: handed-out values plus the
//!   free-list reconstitute `0..cursor` with no gap, no overlap.
//!
//! State machines are **sans-IO**: they consume [`message::Envelope`]s
//! and ticks, and emit [`message::Outgoing`] hops through an outbox. A
//! driver flushes the outbox through a [`transport::Transport`] — the
//! in-memory [`transport::ChannelTransport`] for live threads
//! ([`live`]), or the deterministic fault-injecting simulation
//! ([`sim`]) built on [`counting_sim::des`], which can drop, duplicate,
//! delay and reorder every hop from a seeded fault plan, crash and
//! restart nodes, and checks global uniqueness online plus exact-range
//! tiling at quiescence ([`check`]). Every run replays byte-identically
//! from its seed.
//!
//! The coordinator runs in two deployments: a single durable point
//! (this crate's first iteration — it survives restarts but is never
//! crashed), or **replicated** across 3/5 replicas by a leader-leased
//! quorum log ([`replica`]) that keeps the same guarantees through
//! coordinator crashes and network partitions. Workers are oblivious to
//! the difference: they address the virtual coordinator id either way.

#![warn(missing_docs)]

pub mod check;
pub mod coordinator;
pub mod live;
pub mod message;
pub mod node;
pub mod replica;
pub mod sim;
pub mod transport;

pub use check::GlobalChecker;
pub use coordinator::{Coordinator, CoordinatorDurable};
pub use live::{run_live, run_live_replicated, LiveReport};
pub use message::{next_hop, Block, Envelope, Message, NodeId, Outgoing, COORDINATOR};
pub use node::{Node, NodeDurable, ProtocolConfig};
pub use replica::{replica_id, Command, LogEntry, Replica, ReplicaDurable, REPLICA_BASE};
pub use sim::{run_sim, ClusterSimConfig, ClusterTrace, Mutation, SimReport, SimStats, TraceEvent};
pub use transport::{ChannelTransport, Transport};
