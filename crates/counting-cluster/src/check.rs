//! The global correctness checker.
//!
//! Two obligations, straight from the Fetch&Increment contract the rest
//! of the repo enforces within one process:
//!
//! * **online uniqueness** — every value handed out by any node, ever,
//!   is recorded as it happens; a repeat is a violation at the exact
//!   tick it occurs (so a counterexample trace ends at the bug);
//! * **exact range at quiescence** — after every worker has sealed, the
//!   coordinator's truncated grant log plus its free-list must tile
//!   `0..cursor` with no gap and no overlap, the handed-out set must be
//!   exactly the union of the truncated grants, and the sealed
//!   watermarks must account for every value. A leaked block (granted
//!   but lost to a protocol bug) shows up as a gap; a forked stream as
//!   an online duplicate; values conjured outside any grant as a
//!   membership miss.

use std::collections::HashSet;

use crate::coordinator::CoordinatorDurable;
use crate::message::{Block, NodeId};

/// How many violations of each finalize category are spelled out
/// individually before eliding (keeps pathological runs readable).
const MAX_DETAILED: usize = 8;

/// The online uniqueness + exact-range checker. See the [module
/// docs](self).
#[derive(Debug, Default)]
pub struct GlobalChecker {
    seen: HashSet<u64>,
    handed: u64,
}

impl GlobalChecker {
    /// A fresh checker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handed-out value; returns the violation description
    /// if the value was already handed out (by any node).
    pub fn record(&mut self, node: NodeId, value: u64, at: u64) -> Option<String> {
        self.handed += 1;
        if self.seen.insert(value) {
            None
        } else {
            Some(format!("uniqueness: value {value} handed out again by n{node} at t{at}"))
        }
    }

    /// Values handed out, counting repeats.
    #[must_use]
    pub fn handed(&self) -> u64 {
        self.handed
    }

    /// Distinct values handed out.
    #[must_use]
    pub fn unique(&self) -> u64 {
        self.seen.len() as u64
    }

    /// The quiescence audit against the coordinator's durable state;
    /// returns every exact-range violation found (empty = clean).
    #[must_use]
    pub fn finalize(&self, coordinator: &CoordinatorDurable) -> Vec<String> {
        let mut violations = Vec::new();

        // 1. Grants (truncated to consumed prefixes) + free runs must
        //    tile 0..cursor exactly.
        let mut runs: Vec<(Block, bool)> = coordinator
            .grants
            .values()
            .map(|&b| (b, true))
            .chain(coordinator.free.iter().map(|&b| (b, false)))
            .filter(|(b, _)| b.len > 0)
            .collect();
        runs.sort_by_key(|(b, _)| b.base);
        let mut expect = 0u64;
        for (block, granted) in &runs {
            let kind = if *granted { "grant" } else { "free" };
            if block.base > expect {
                violations
                    .push(format!("exact-range: gap [{expect}..{}) before {kind} run", block.base));
            } else if block.base < expect {
                violations.push(format!(
                    "exact-range: overlap at {} ({kind} run begins inside another)",
                    block.base
                ));
            }
            expect = expect.max(block.end());
        }
        if expect < coordinator.cursor {
            violations.push(format!("exact-range: gap [{expect}..{}) at tail", coordinator.cursor));
        } else if expect > coordinator.cursor {
            violations.push(format!(
                "exact-range: runs extend to {expect}, past cursor {}",
                coordinator.cursor
            ));
        }

        // 2. The handed-out set must be exactly the union of truncated
        //    grants.
        let granted_total: u64 = runs.iter().filter(|(_, g)| *g).map(|(b, _)| b.len).sum();
        if granted_total != self.unique() {
            violations.push(format!(
                "exact-range: {} values in truncated grants, {} distinct values handed out",
                granted_total,
                self.unique()
            ));
        }
        let mut missing = 0usize;
        for (block, granted) in &runs {
            if !granted {
                continue;
            }
            for value in block.base..block.end() {
                if !self.seen.contains(&value) {
                    missing += 1;
                    if missing <= MAX_DETAILED {
                        violations.push(format!(
                            "exact-range: granted value {value} was never handed out"
                        ));
                    }
                }
            }
        }
        if missing > MAX_DETAILED {
            violations.push(format!(
                "exact-range: …and {} more granted-but-never-handed values",
                missing - MAX_DETAILED
            ));
        }

        // 3. Sealed watermarks must account for every hand-out.
        let sealed_total: u64 = coordinator.sealed.values().sum();
        if sealed_total != granted_total {
            violations.push(format!(
                "exact-range: sealed watermarks sum to {sealed_total}, truncated grants to {granted_total}"
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn coordinator_state(
        cursor: u64,
        grants: Vec<(NodeId, u64, Block)>,
        free: Vec<Block>,
        sealed: Vec<(NodeId, u64)>,
    ) -> CoordinatorDurable {
        CoordinatorDurable {
            cursor,
            free,
            grants: grants.into_iter().map(|(n, r, b)| ((n, r), b)).collect(),
            tombstones: BTreeSet::new(),
            sealed: sealed.into_iter().collect(),
            epoch: 1,
            members: BTreeSet::new(),
        }
    }

    #[test]
    fn online_uniqueness_catches_the_second_hand_out() {
        let mut checker = GlobalChecker::new();
        assert!(checker.record(1, 5, 10).is_none());
        assert!(checker.record(2, 6, 11).is_none());
        let violation = checker.record(2, 5, 12).expect("duplicate detected");
        assert!(violation.contains("value 5"), "{violation}");
        assert_eq!(checker.handed(), 3);
        assert_eq!(checker.unique(), 2);
    }

    #[test]
    fn clean_accounting_finalizes_clean() {
        let mut checker = GlobalChecker::new();
        for v in 0..4 {
            assert!(checker.record(1, v, v).is_none());
        }
        let coordinator = coordinator_state(
            10,
            vec![(1, 0, Block { base: 0, len: 4 })],
            vec![Block { base: 4, len: 6 }],
            vec![(1, 4)],
        );
        assert_eq!(checker.finalize(&coordinator), Vec::<String>::new());
    }

    #[test]
    fn a_leaked_block_is_a_gap() {
        let mut checker = GlobalChecker::new();
        for v in 8..12 {
            let _ = checker.record(1, v, v);
        }
        // [0..8) was allocated (cursor = 12) but neither granted nor
        // freed — the signature of a lost grant record.
        let coordinator =
            coordinator_state(12, vec![(1, 1, Block { base: 8, len: 4 })], vec![], vec![(1, 4)]);
        let violations = checker.finalize(&coordinator);
        assert!(violations.iter().any(|v| v.contains("gap [0..8)")), "{violations:?}");
    }

    #[test]
    fn overlap_and_tail_gap_are_reported() {
        let checker = GlobalChecker::new();
        let overlapping = coordinator_state(
            8,
            vec![(1, 0, Block { base: 0, len: 5 }), (2, 0, Block { base: 3, len: 5 })],
            vec![],
            vec![],
        );
        let violations = checker.finalize(&overlapping);
        assert!(violations.iter().any(|v| v.contains("overlap at 3")), "{violations:?}");

        let short = coordinator_state(8, vec![], vec![Block { base: 0, len: 5 }], vec![]);
        let violations = checker.finalize(&short);
        assert!(violations.iter().any(|v| v.contains("gap [5..8) at tail")), "{violations:?}");
    }

    #[test]
    fn granted_but_never_handed_values_are_reported() {
        let mut checker = GlobalChecker::new();
        let _ = checker.record(1, 0, 1);
        let coordinator =
            coordinator_state(2, vec![(1, 0, Block { base: 0, len: 2 })], vec![], vec![(1, 2)]);
        let violations = checker.finalize(&coordinator);
        assert!(
            violations.iter().any(|v| v.contains("value 1 was never handed out")),
            "{violations:?}"
        );
    }
}
