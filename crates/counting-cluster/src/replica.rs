//! The replicated coordinator: a leader-leased quorum log.
//!
//! A [`Replica`] group replaces the single durable
//! [`Coordinator`](crate::coordinator::Coordinator) with 3 or 5 copies of the same
//! state machine, each applying the same command log. The consensus
//! core is a deliberately small Raft subset:
//!
//! * **terms** — every replica holds a monotonic term; any message from
//!   a higher term forces a step-down, any from a lower term is inert;
//! * **single-entry append** — the leader replicates one [`LogEntry`]
//!   per [`Message::Append`], with the previous entry's term as the
//!   consistency check, and truncates a follower's conflicting suffix;
//! * **quorum commit** — an entry is committed once a majority of
//!   replicas hold it *and* it belongs to the current term (a `Noop`
//!   barrier appended at election commits any earlier-term tail);
//! * **leader lease** — the leader may answer clients only while a
//!   majority of followers acked an append within the last
//!   [`ProtocolConfig::lease_ticks`] ticks; when the lease lapses, a
//!   clean leader steps down and stops answering. Lease expiry on the
//!   follower side (no append for `2 * lease_ticks` plus a per-replica
//!   stagger) starts the next election.
//!
//! Deliberate non-goals, in scope order: no log compaction or snapshots
//! (the grant log is bounded — sealing truncates it), no dynamic
//! replica membership (the replica set is fixed at construction), no
//! pre-vote or leadership transfer.
//!
//! Workers never learn any of this: they keep addressing the virtual
//! [`COORDINATOR`] id 0. The transport (simulated or live) fans those
//! envelopes out to some replica; a follower forwards them to its
//! leader hint — except a [`Message::RecoverQuery`] it can answer
//! *positively* from committed state, which needs no new commit — and
//! the leader drives every client answer through the log: the grant,
//! seal, tombstone or membership change is sent only after the entry
//! commits, so a leader that loses quorum can never hand out state a
//! successor will not have.
//!
//! The durable state machine being replicated is exactly
//! [`CoordinatorDurable`]; applying a committed [`Command`] calls the
//! same pure transition helpers the standalone coordinator uses, so a
//! quorum replaying the same log reaches bit-identical state.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

use crate::coordinator::{CoordinatorDurable, LeaseAnswer};
use crate::message::{next_hop, tree_children, Envelope, Message, NodeId, Outgoing, COORDINATOR};
use crate::node::ProtocolConfig;

/// Replica ids live far above any worker id: replica `i` is
/// [`REPLICA_BASE`]` + i`.
pub const REPLICA_BASE: NodeId = 1 << 32;

/// The transport id of replica `index`.
#[must_use]
pub fn replica_id(index: u64) -> NodeId {
    REPLICA_BASE + index
}

/// One replicated coordinator command — the log's payload alphabet.
/// Every variant is idempotent at apply time (re-applying a duplicate
/// entry re-derives the same answer), which is what makes duplicate
/// appends and re-proposals safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Serve `LeaseRequest { node, req_id, want }`.
    Lease {
        /// Requesting worker.
        node: NodeId,
        /// Per-node monotonic request id.
        req_id: u64,
        /// Requested block length.
        want: u64,
    },
    /// Serve `Return { node, watermark, leaving }`.
    Return {
        /// The sealing worker.
        node: NodeId,
        /// Total values the worker ever handed out.
        watermark: u64,
        /// Whether the worker leaves the membership.
        leaving: bool,
    },
    /// Admit `node` to the membership (bumps the epoch).
    Admit {
        /// The joining worker.
        node: NodeId,
    },
    /// Evict `node` from the membership (failure detector; bumps the
    /// epoch).
    Evict {
        /// The evicted worker.
        node: NodeId,
    },
    /// Answer `RecoverQuery { node, req_id }` with a durable "never
    /// granted" (unless a grant turns out to be recorded after all).
    Tombstone {
        /// Recovering worker.
        node: NodeId,
        /// The in-doubt request id.
        req_id: u64,
    },
    /// The term barrier a new leader appends to commit its
    /// predecessors' tail.
    Noop,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Lease { node, req_id, want } => {
                write!(f, "lease n{node} r{req_id} want={want}")
            }
            Command::Return { node, watermark, leaving } => {
                write!(f, "return n{node} w{watermark} leaving={leaving}")
            }
            Command::Admit { node } => write!(f, "admit n{node}"),
            Command::Evict { node } => write!(f, "evict n{node}"),
            Command::Tombstone { node, req_id } => write!(f, "tombstone n{node} r{req_id}"),
            Command::Noop => write!(f, "noop"),
        }
    }
}

impl Serialize for Command {
    fn to_value(&self) -> Value {
        let obj = |kind: &str, fields: Vec<(String, Value)>| {
            let mut entries = vec![("cmd".to_owned(), Value::Str(kind.to_owned()))];
            entries.extend(fields);
            Value::Object(entries)
        };
        match self {
            Command::Lease { node, req_id, want } => obj(
                "lease",
                vec![
                    ("node".into(), node.to_value()),
                    ("req_id".into(), req_id.to_value()),
                    ("want".into(), want.to_value()),
                ],
            ),
            Command::Return { node, watermark, leaving } => obj(
                "return",
                vec![
                    ("node".into(), node.to_value()),
                    ("watermark".into(), watermark.to_value()),
                    ("leaving".into(), leaving.to_value()),
                ],
            ),
            Command::Admit { node } => obj("admit", vec![("node".into(), node.to_value())]),
            Command::Evict { node } => obj("evict", vec![("node".into(), node.to_value())]),
            Command::Tombstone { node, req_id } => obj(
                "tombstone",
                vec![("node".into(), node.to_value()), ("req_id".into(), req_id.to_value())],
            ),
            Command::Noop => obj("noop", vec![]),
        }
    }
}

impl Deserialize for Command {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        };
        let kind: String = Deserialize::from_value(field("cmd")?)?;
        match kind.as_str() {
            "lease" => Ok(Command::Lease {
                node: Deserialize::from_value(field("node")?)?,
                req_id: Deserialize::from_value(field("req_id")?)?,
                want: Deserialize::from_value(field("want")?)?,
            }),
            "return" => Ok(Command::Return {
                node: Deserialize::from_value(field("node")?)?,
                watermark: Deserialize::from_value(field("watermark")?)?,
                leaving: Deserialize::from_value(field("leaving")?)?,
            }),
            "admit" => Ok(Command::Admit { node: Deserialize::from_value(field("node")?)? }),
            "evict" => Ok(Command::Evict { node: Deserialize::from_value(field("node")?)? }),
            "tombstone" => Ok(Command::Tombstone {
                node: Deserialize::from_value(field("node")?)?,
                req_id: Deserialize::from_value(field("req_id")?)?,
            }),
            "noop" => Ok(Command::Noop),
            other => Err(Error::custom(format!("unknown command `{other}`"))),
        }
    }
}

/// One log slot: the command plus the term it was proposed in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The proposing leader's term.
    pub term: u64,
    /// The replicated command.
    pub cmd: Command,
}

impl Serialize for LogEntry {
    fn to_value(&self) -> Value {
        let mut entries = vec![("term".to_owned(), self.term.to_value())];
        if let Value::Object(fields) = self.cmd.to_value() {
            entries.extend(fields);
        }
        Value::Object(entries)
    }
}

impl Deserialize for LogEntry {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let term = value.get("term").ok_or_else(|| Error::custom("missing field `term`"))?;
        Ok(LogEntry { term: Deserialize::from_value(term)?, cmd: Command::from_value(value)? })
    }
}

/// What a replica persists across a crash: the Raft trio. The applied
/// coordinator state is *not* persisted — a restarted replica replays
/// its log as the leader re-advances its commit index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaDurable {
    /// Current term.
    pub term: u64,
    /// The candidate voted for in `term`, if any.
    pub voted_for: Option<NodeId>,
    /// The command log.
    pub log: Vec<LogEntry>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate { votes: BTreeSet<NodeId> },
    Leader,
}

/// One member of the replicated coordinator group. Sans-IO like every
/// other state machine in this crate: feed it envelopes and ticks,
/// drain [`Self::take_outbox`]. See the [module docs](self).
#[derive(Debug)]
pub struct Replica {
    id: NodeId,
    index: u64,
    peers: Vec<NodeId>,
    founders: Vec<NodeId>,
    config: ProtocolConfig,
    durable: ReplicaDurable,
    /// Entries known committed (a count, so also the next apply index).
    commit: u64,
    /// Entries applied to `coord` (`== commit` after every event).
    applied: u64,
    /// The replicated state machine, at `applied` entries.
    coord: CoordinatorDurable,
    role: Role,
    leader_hint: Option<NodeId>,
    last_leader_contact: u64,
    // Leader-only replication bookkeeping.
    next: BTreeMap<NodeId, u64>,
    matched: BTreeMap<NodeId, u64>,
    acked_at: BTreeMap<NodeId, u64>,
    last_append: Option<u64>,
    // Leader-only worker-facing volatile state (failure detector and
    // membership rebroadcast), mirroring the standalone coordinator.
    last_heard: BTreeMap<NodeId, u64>,
    worker_acks: BTreeSet<NodeId>,
    last_broadcast: Option<u64>,
    outbox: Vec<Outgoing>,
    /// Calibration mutation: a leader whose lease lapsed keeps serving
    /// lease requests from its local copy, off the log.
    split_brain: bool,
    /// Calibration mutation: the commit (and lease) quorum is 1 — the
    /// leader's own ack suffices.
    commit_before_quorum: bool,
}

impl Replica {
    /// A fresh replica `index` of a group of `count`, coordinating
    /// `founders`. All replicas boot as followers; the first election
    /// fires after the staggered timeout (replica 0 first).
    #[must_use]
    pub fn new(index: u64, count: u64, founders: &[NodeId], config: ProtocolConfig) -> Self {
        Self::restart(
            index,
            count,
            founders,
            config,
            ReplicaDurable { term: 0, voted_for: None, log: Vec::new() },
            0,
        )
    }

    /// Rebuilds a replica from its persisted Raft state. The commit
    /// index and applied coordinator state are volatile: they rebuild
    /// as the current leader's appends re-advance `commit`.
    #[must_use]
    pub fn restart(
        index: u64,
        count: u64,
        founders: &[NodeId],
        config: ProtocolConfig,
        durable: ReplicaDurable,
        now: u64,
    ) -> Self {
        Self {
            id: replica_id(index),
            index,
            peers: (0..count).map(replica_id).collect(),
            founders: founders.to_vec(),
            config,
            durable,
            commit: 0,
            applied: 0,
            coord: CoordinatorDurable::initial(founders),
            role: Role::Follower,
            leader_hint: None,
            last_leader_contact: now,
            next: BTreeMap::new(),
            matched: BTreeMap::new(),
            acked_at: BTreeMap::new(),
            last_append: None,
            last_heard: BTreeMap::new(),
            worker_acks: BTreeSet::new(),
            last_broadcast: None,
            outbox: Vec::new(),
            split_brain: false,
            commit_before_quorum: false,
        }
    }

    /// Enables the stale-leader calibration mutation
    /// ([`crate::sim::Mutation::SplitBrainDoubleGrant`]).
    pub fn enable_split_brain(&mut self) {
        self.split_brain = true;
    }

    /// Enables the minority-commit calibration mutation
    /// ([`crate::sim::Mutation::CommitBeforeQuorum`]).
    pub fn enable_commit_before_quorum(&mut self) {
        self.commit_before_quorum = true;
    }

    /// This replica's transport id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current term.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.durable.term
    }

    /// Committed entry count.
    #[must_use]
    pub fn commit(&self) -> u64 {
        self.commit
    }

    /// Whether this replica currently believes it is the leader.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        matches!(self.role, Role::Leader)
    }

    /// The applied coordinator state (committed prefix of the log).
    #[must_use]
    pub fn coord(&self) -> &CoordinatorDurable {
        &self.coord
    }

    /// The state a crash preserves.
    #[must_use]
    pub fn durable(&self) -> &ReplicaDurable {
        &self.durable
    }

    /// Drains the sends decided since the last call.
    pub fn take_outbox(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outbox)
    }

    fn quorum(&self) -> usize {
        if self.commit_before_quorum {
            1
        } else {
            self.peers.len() / 2 + 1
        }
    }

    /// Election timeout: twice the lease, staggered per replica so
    /// concurrent candidacies (and split votes) are the exception.
    fn election_timeout(&self) -> u64 {
        self.config.lease_ticks * 2 + self.index * self.config.heartbeat_every
    }

    /// Whether a majority acked an append recently enough that no other
    /// replica can have been elected (their election timeouts exceed
    /// the lease).
    fn lease_valid(&self, now: u64) -> bool {
        let fresh = self
            .peers
            .iter()
            .filter(|&&p| p != self.id)
            .filter(|&&p| {
                self.acked_at
                    .get(&p)
                    .is_some_and(|&at| now.saturating_sub(at) <= self.config.lease_ticks)
            })
            .count();
        1 + fresh >= self.quorum()
    }

    fn last_log_term(&self) -> u64 {
        self.durable.log.last().map_or(0, |e| e.term)
    }

    /// Advances elections, heartbeats, the leader lease and the worker
    /// failure detector.
    pub fn on_tick(&mut self, now: u64) {
        match &self.role {
            Role::Follower | Role::Candidate { .. } => {
                if now.saturating_sub(self.last_leader_contact) >= self.election_timeout() {
                    self.start_election(now);
                }
            }
            Role::Leader => {
                if !self.split_brain && !self.lease_valid(now) {
                    // The lease lapsed: a majority may already be
                    // electing someone else. Stop answering.
                    self.role = Role::Follower;
                    self.leader_hint = None;
                    self.last_leader_contact = now;
                    return;
                }
                if due(self.last_append, now, self.config.heartbeat_every) {
                    self.send_appends(now);
                }
                self.detect_dead_workers(now);
                let unacked: Vec<NodeId> = self
                    .coord
                    .members
                    .iter()
                    .copied()
                    .filter(|w| !self.worker_acks.contains(w))
                    .collect();
                if !unacked.is_empty() && due(self.last_broadcast, now, self.config.retry_after) {
                    for worker in unacked {
                        self.send_membership_direct(worker);
                    }
                    self.last_broadcast = Some(now);
                }
            }
        }
    }

    fn start_election(&mut self, now: u64) {
        self.durable.term += 1;
        self.durable.voted_for = Some(self.id);
        let mut votes = BTreeSet::new();
        votes.insert(self.id);
        self.role = Role::Candidate { votes };
        self.leader_hint = None;
        self.last_leader_contact = now;
        if self.count_vote(self.id) {
            self.become_leader(now);
            return;
        }
        let msg = Message::VoteRequest {
            term: self.durable.term,
            candidate: self.id,
            log_len: self.durable.log.len() as u64,
            last_term: self.last_log_term(),
        };
        for &peer in &self.peers.clone() {
            if peer != self.id {
                self.send_replica(peer, msg.clone());
            }
        }
    }

    /// Records a vote; returns whether the candidacy just won.
    fn count_vote(&mut self, voter: NodeId) -> bool {
        let quorum = self.quorum();
        if let Role::Candidate { votes } = &mut self.role {
            votes.insert(voter);
            votes.len() >= quorum
        } else {
            false
        }
    }

    fn become_leader(&mut self, now: u64) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.next.clear();
        self.matched.clear();
        self.acked_at.clear();
        for &peer in &self.peers {
            if peer != self.id {
                self.next.insert(peer, self.durable.log.len() as u64);
                self.matched.insert(peer, 0);
                // Lease grace: the election itself proved a quorum is
                // reachable moments ago.
                self.acked_at.insert(peer, now);
            }
        }
        // The term barrier: commits every earlier-term entry once
        // replicated, and gives an otherwise-idle term a commit point.
        self.durable.log.push(LogEntry { term: self.durable.term, cmd: Command::Noop });
        self.maybe_advance_commit(now);
        self.send_appends(now);
        // Failure-detector grace for every worker, then re-announce the
        // membership so workers find the new leader's epoch view.
        for worker in self.coord.members.clone() {
            self.last_heard.insert(worker, now);
        }
        self.worker_acks.clear();
        self.broadcast_membership(now);
    }

    fn send_appends(&mut self, now: u64) {
        for peer in self.peers.clone() {
            if peer != self.id {
                self.send_append_to(peer);
            }
        }
        self.last_append = Some(now);
    }

    fn send_append_to(&mut self, peer: NodeId) {
        let index = self.next.get(&peer).copied().unwrap_or(0);
        let index = index.min(self.durable.log.len() as u64);
        let entry = self.durable.log.get(index as usize).cloned();
        let prev_term = if index == 0 { 0 } else { self.durable.log[index as usize - 1].term };
        let msg = Message::Append {
            term: self.durable.term,
            leader: self.id,
            index,
            prev_term,
            entry,
            commit: self.commit,
        };
        self.send_replica(peer, msg);
    }

    /// Any message from a higher term turns this replica into a
    /// follower of that term. Deliberately does NOT reset the election
    /// timer: a candidate with a stale log can bump terms forever, and
    /// if every bump pushed the up-to-date replicas' timeouts back,
    /// none of them would ever stand. Only a granted vote or a leader's
    /// append earns the reset.
    fn observe_term(&mut self, term: u64, _now: u64) {
        if term > self.durable.term {
            self.durable.term = term;
            self.durable.voted_for = None;
            self.role = Role::Follower;
            self.leader_hint = None;
        }
    }

    /// Handles one delivered envelope: replica traffic when addressed
    /// to this replica, client traffic when addressed to the virtual
    /// coordinator, a tree relay otherwise.
    pub fn on_message(&mut self, now: u64, env: Envelope) {
        if env.dst == self.id {
            self.on_replica_message(now, env.src, env.msg);
        } else if env.dst == COORDINATOR {
            self.on_client_message(now, env);
        } else {
            // Worker-bound relay hop: forward down the worker tree.
            let members = self.member_list();
            let hop = next_hop(&members, COORDINATOR, env.dst).unwrap_or(env.dst);
            self.outbox.push(Outgoing { hop, env });
        }
    }

    fn on_replica_message(&mut self, now: u64, src: NodeId, msg: Message) {
        match msg {
            Message::VoteRequest { term, candidate, log_len, last_term } => {
                self.observe_term(term, now);
                let up_to_date =
                    (last_term, log_len) >= (self.last_log_term(), self.durable.log.len() as u64);
                let granted = term == self.durable.term
                    && self.durable.voted_for.is_none_or(|v| v == candidate)
                    && up_to_date
                    && !matches!(self.role, Role::Leader);
                if granted {
                    self.durable.voted_for = Some(candidate);
                    self.last_leader_contact = now;
                }
                self.send_replica(
                    candidate,
                    Message::VoteReply { term: self.durable.term, voter: self.id, granted },
                );
            }
            Message::VoteReply { term, voter, granted } => {
                self.observe_term(term, now);
                if granted && term == self.durable.term && self.count_vote(voter) {
                    self.become_leader(now);
                }
            }
            Message::Append { term, leader, index, prev_term, entry, commit } => {
                if term < self.durable.term {
                    self.send_replica(
                        src,
                        Message::AppendAck {
                            term: self.durable.term,
                            follower: self.id,
                            matched: self.commit,
                            ok: false,
                        },
                    );
                    return;
                }
                self.observe_term(term, now);
                // An equal-term append is the term's leader speaking: a
                // candidate of the same term concedes.
                if !matches!(self.role, Role::Follower) {
                    self.role = Role::Follower;
                }
                self.leader_hint = Some(leader);
                self.last_leader_contact = now;
                let log_len = self.durable.log.len() as u64;
                let consistent = index <= log_len
                    && (index == 0 || self.durable.log[index as usize - 1].term == prev_term);
                if !consistent {
                    self.send_replica(
                        leader,
                        Message::AppendAck {
                            term: self.durable.term,
                            follower: self.id,
                            matched: self.commit,
                            ok: false,
                        },
                    );
                    return;
                }
                let mut matched_here = index;
                if let Some(entry) = entry {
                    if (index as usize) < self.durable.log.len() {
                        if self.durable.log[index as usize].term != entry.term {
                            self.truncate_log(index);
                            self.durable.log.push(entry);
                        }
                        // Same term at the same index: already present.
                    } else {
                        self.durable.log.push(entry);
                    }
                    matched_here = index + 1;
                }
                let new_commit = commit.min(matched_here);
                if new_commit > self.commit {
                    self.commit = new_commit;
                    self.advance_apply(now);
                }
                self.send_replica(
                    leader,
                    Message::AppendAck {
                        term: self.durable.term,
                        follower: self.id,
                        matched: matched_here,
                        ok: true,
                    },
                );
            }
            Message::AppendAck { term, follower, matched, ok } => {
                self.observe_term(term, now);
                if !matches!(self.role, Role::Leader) || term != self.durable.term {
                    return;
                }
                self.acked_at.insert(follower, now);
                if ok {
                    let have = self.matched.get(&follower).copied().unwrap_or(0);
                    if matched > have {
                        self.matched.insert(follower, matched);
                    }
                    let next = self.next.entry(follower).or_insert(0);
                    *next = (*next).max(matched);
                    self.maybe_advance_commit(now);
                } else {
                    // The follower's committed prefix always matches:
                    // resume from its hint.
                    self.next.insert(follower, matched);
                }
                if self.next.get(&follower).copied().unwrap_or(0) < self.durable.log.len() as u64 {
                    self.send_append_to(follower);
                }
            }
            // Client kinds addressed to a replica id are misrouted
            // noise: ignore.
            _ => {}
        }
    }

    /// Truncates the log to `keep` entries. When the applied prefix
    /// reached past the cut (only possible when a commit was taken
    /// without a real quorum), the coordinator state is rebuilt by
    /// replaying the surviving committed prefix.
    fn truncate_log(&mut self, keep: u64) {
        self.durable.log.truncate(keep as usize);
        self.commit = self.commit.min(keep);
        if self.applied > keep {
            self.coord = CoordinatorDurable::initial(&self.founders);
            self.applied = 0;
            let replay = self.commit;
            self.commit = 0;
            for i in 0..replay {
                let cmd = self.durable.log[i as usize].cmd.clone();
                self.commit = i + 1;
                self.apply_one(0, cmd, false);
                self.applied = i + 1;
            }
        }
    }

    fn maybe_advance_commit(&mut self, now: u64) {
        // The leader's own log always matches itself; collect every
        // replica's matched length and take the quorum-th largest.
        let mut lens: Vec<u64> = self.matched.values().copied().collect();
        lens.push(self.durable.log.len() as u64);
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let candidate = lens.get(self.quorum() - 1).copied().unwrap_or(0);
        // Only entries of the current term commit by counting — the
        // Raft commit rule; earlier terms ride along underneath.
        if candidate > self.commit
            && self.durable.log[candidate as usize - 1].term == self.durable.term
        {
            self.commit = candidate;
            self.advance_apply(now);
        }
    }

    fn advance_apply(&mut self, now: u64) {
        while self.applied < self.commit {
            let cmd = self.durable.log[self.applied as usize].cmd.clone();
            self.applied += 1;
            let respond = matches!(self.role, Role::Leader);
            self.apply_one(now, cmd, respond);
        }
    }

    /// Applies one committed command to the coordinator state. Only the
    /// leader answers clients (`respond`); followers apply silently, so
    /// every answer a worker sees is backed by a committed entry.
    fn apply_one(&mut self, now: u64, cmd: Command, respond: bool) {
        match cmd {
            Command::Lease { node, req_id, want } => {
                let reply = match self.coord.lease_answer(node, req_id, false) {
                    Some(LeaseAnswer::Regrant(block)) => {
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len }
                    }
                    Some(LeaseAnswer::Refused) => Message::RecoverNone { node, req_id },
                    None => {
                        let block = self.coord.lease_grant(node, req_id, want);
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len }
                    }
                };
                if respond {
                    self.send_worker(node, reply);
                }
            }
            Command::Return { node, watermark, leaving } => {
                // No over-claim assert here: a replayed log can shrink
                // grants under a calibration mutation — the global
                // checker owns that verdict.
                let _ = self.coord.seal(node, watermark);
                if leaving && self.coord.evict(node) {
                    self.coord.bump_epoch();
                    if respond {
                        self.epoch_changed(now);
                    }
                }
                if respond {
                    self.send_worker(node, Message::ReturnAck { node, watermark });
                }
            }
            Command::Admit { node } => {
                if self.coord.admit(node) {
                    self.last_heard.entry(node).or_insert(now);
                    if respond {
                        self.epoch_changed(now);
                        self.send_membership_direct(node);
                    }
                }
            }
            Command::Evict { node } => {
                if self.coord.evict(node) {
                    self.coord.bump_epoch();
                    self.last_heard.remove(&node);
                    if respond {
                        self.epoch_changed(now);
                    }
                }
            }
            Command::Tombstone { node, req_id } => {
                if let Some(block) = self.coord.grants.get(&(node, req_id)).copied() {
                    // A grant was recorded after all (the query raced a
                    // concurrent lease commit): re-send it instead.
                    if respond {
                        self.send_worker(
                            node,
                            Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                        );
                    }
                } else {
                    self.coord.tombstone(node, req_id);
                    if respond {
                        self.send_worker(node, Message::RecoverNone { node, req_id });
                    }
                }
            }
            Command::Noop => {}
        }
    }

    fn on_client_message(&mut self, now: u64, env: Envelope) {
        if !matches!(self.role, Role::Leader) {
            // Read-only recovery: a recorded grant in committed state
            // is a final answer any replica may give.
            if let Message::RecoverQuery { node, req_id } = env.msg {
                if let Some(block) = self.coord.grants.get(&(node, req_id)).copied() {
                    self.send_worker(
                        node,
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                    );
                    return;
                }
            }
            // Everything else goes to the leader; with no hint the
            // message drops and the worker's retry finds a luckier
            // replica.
            if let Some(leader) = self.leader_hint {
                if leader != self.id {
                    self.outbox.push(Outgoing { hop: leader, env });
                }
            }
            return;
        }
        match env.msg {
            Message::LeaseRequest { node, req_id, want } => {
                // Committed fast paths: answers that need no new entry.
                if self.coord.tombstones.contains(&(node, req_id)) {
                    self.send_worker(node, Message::RecoverNone { node, req_id });
                    return;
                }
                if let Some(block) = self.coord.grants.get(&(node, req_id)).copied() {
                    self.send_worker(
                        node,
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                    );
                    return;
                }
                if self.split_brain && !self.lease_valid(now) {
                    // MUTATION: the stale leader answers off the log —
                    // its local copy diverges from the quorum's and two
                    // leaders allocate the same values.
                    self.apply_one(now, Command::Lease { node, req_id, want }, true);
                    return;
                }
                self.propose(now, Command::Lease { node, req_id, want });
            }
            Message::RecoverQuery { node, req_id } => {
                if let Some(block) = self.coord.grants.get(&(node, req_id)).copied() {
                    self.send_worker(
                        node,
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                    );
                } else {
                    // "Never granted" must be durable before it is
                    // spoken: commit the tombstone first.
                    self.propose(now, Command::Tombstone { node, req_id });
                }
            }
            Message::Heartbeat { node, epoch } => {
                self.last_heard.insert(node, now);
                if !self.coord.members.contains(&node) {
                    if !self.coord.sealed.contains_key(&node) {
                        self.propose(now, Command::Admit { node });
                    }
                } else if epoch < self.coord.epoch {
                    self.send_membership_direct(node);
                }
            }
            Message::Join { node } => {
                self.last_heard.insert(node, now);
                if self.coord.members.contains(&node) {
                    self.send_membership_direct(node);
                } else if !self.coord.sealed.contains_key(&node) {
                    self.propose(now, Command::Admit { node });
                }
            }
            Message::Return { node, watermark, leaving } => {
                let sealed_at = self.coord.sealed.get(&node).copied();
                let done = sealed_at.is_some_and(|w| w >= watermark)
                    && (!leaving || !self.coord.members.contains(&node));
                if done {
                    // Already committed: a duplicate Return re-acks
                    // without a new entry.
                    self.send_worker(node, Message::ReturnAck { node, watermark });
                } else {
                    self.propose(now, Command::Return { node, watermark, leaving });
                }
            }
            Message::MembershipAck { node, epoch }
                if epoch == self.coord.epoch && self.coord.members.contains(&node) =>
            {
                self.worker_acks.insert(node);
            }
            // Worker-bound kinds and replica kinds addressed to the
            // virtual coordinator are noise: ignore.
            _ => {}
        }
    }

    /// Appends a command to the log unless an equal command is already
    /// pending (proposed, not yet applied), then pushes it to the
    /// followers whose logs were caught up.
    fn propose(&mut self, now: u64, cmd: Command) {
        let pending = self.durable.log[self.applied as usize..].iter().any(|e| e.cmd == cmd);
        if pending {
            return;
        }
        self.durable.log.push(LogEntry { term: self.durable.term, cmd });
        let tail = self.durable.log.len() as u64 - 1;
        for peer in self.peers.clone() {
            if peer != self.id && self.next.get(&peer).copied().unwrap_or(0) == tail {
                self.send_append_to(peer);
            }
        }
        // A single-replica group (or the quorum-of-one mutation)
        // commits its own append immediately.
        self.maybe_advance_commit(now);
    }

    fn detect_dead_workers(&mut self, now: u64) {
        let dead: Vec<NodeId> = self
            .coord
            .members
            .iter()
            .copied()
            .filter(|worker| {
                let heard = self.last_heard.get(worker).copied().unwrap_or(0);
                now.saturating_sub(heard) >= self.config.fail_after
            })
            .collect();
        for worker in dead {
            self.propose(now, Command::Evict { node: worker });
        }
    }

    /// The volatile half of a committed epoch change, leader only.
    fn epoch_changed(&mut self, now: u64) {
        self.worker_acks.clear();
        self.broadcast_membership(now);
    }

    fn broadcast_membership(&mut self, now: u64) {
        let members = self.member_list();
        let msg = Message::Membership { epoch: self.coord.epoch, members: members.clone() };
        for child in tree_children(&members, COORDINATOR) {
            self.outbox.push(Outgoing {
                hop: child,
                env: Envelope { src: COORDINATOR, dst: child, msg: msg.clone() },
            });
        }
        self.last_broadcast = Some(now);
    }

    fn send_membership_direct(&mut self, worker: NodeId) {
        let msg = Message::Membership { epoch: self.coord.epoch, members: self.member_list() };
        self.send_worker(worker, msg);
    }

    /// The worker-facing member list: the virtual coordinator id plus
    /// the current workers (replica ids never appear in it).
    fn member_list(&self) -> Vec<NodeId> {
        let mut list = vec![COORDINATOR];
        list.extend(self.coord.members.iter().copied());
        list
    }

    /// Direct send to a worker, speaking as the virtual coordinator.
    fn send_worker(&mut self, to: NodeId, msg: Message) {
        self.outbox.push(Outgoing { hop: to, env: Envelope { src: COORDINATOR, dst: to, msg } });
    }

    fn send_replica(&mut self, to: NodeId, msg: Message) {
        self.outbox.push(Outgoing { hop: to, env: Envelope { src: self.id, dst: to, msg } });
    }
}

fn due(last: Option<u64>, now: u64, every: u64) -> bool {
    last.is_none_or(|t| now.saturating_sub(t) >= every)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Block;

    fn drain(replicas: &mut [Replica]) -> Vec<Outgoing> {
        replicas.iter_mut().flat_map(Replica::take_outbox).collect()
    }

    /// Delivers every replica-addressed envelope until the group goes
    /// quiet; worker-addressed envelopes are returned. A hop addressed
    /// to a replica not in the slice is dropped (a partition).
    fn settle(replicas: &mut [Replica], now: u64, mut pending: Vec<Outgoing>) -> Vec<Outgoing> {
        let mut to_workers = Vec::new();
        loop {
            let mut next = Vec::new();
            for out in pending {
                if out.hop >= REPLICA_BASE {
                    if let Some(r) = replicas.iter_mut().find(|r| r.id() == out.hop) {
                        r.on_message(now, out.env);
                        next.extend(r.take_outbox());
                    }
                } else {
                    to_workers.push(out);
                }
            }
            if next.is_empty() {
                return to_workers;
            }
            pending = next;
        }
    }

    fn elect_leader(replicas: &mut [Replica], now: u64) -> usize {
        let timeout = replicas[0].election_timeout();
        for r in replicas.iter_mut() {
            r.on_tick(now + timeout);
        }
        let outs = drain(replicas);
        settle(replicas, now + timeout, outs);
        replicas.iter().position(Replica::is_leader).expect("a leader emerges")
    }

    fn group(count: u64) -> Vec<Replica> {
        (0..count).map(|i| Replica::new(i, count, &[1, 2], ProtocolConfig::default())).collect()
    }

    fn client(replicas: &mut [Replica], leader: usize, now: u64, msg: Message) -> Vec<Outgoing> {
        let env = Envelope { src: 1, dst: COORDINATOR, msg };
        replicas[leader].on_message(now, env);
        let outs = drain(replicas);
        settle(replicas, now, outs)
    }

    #[test]
    fn the_staggered_timeout_elects_replica_zero_first() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        assert_eq!(leader, 0);
        assert_eq!(rs[0].term(), 1);
        assert_eq!(rs[0].commit(), 1, "the noop barrier committed");
        assert!(rs.iter().skip(1).all(|r| !r.is_leader()));
    }

    #[test]
    fn a_lease_is_granted_only_after_the_entry_commits() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        let t = rs[0].election_timeout() + 1;
        let outs =
            client(&mut rs, leader, t, Message::LeaseRequest { node: 1, req_id: 0, want: 16 });
        let grant = outs.iter().find_map(|o| match o.env.msg {
            Message::LeaseGrant { node, req_id, base, len } => {
                Some((node, req_id, Block { base, len }))
            }
            _ => None,
        });
        assert_eq!(grant, Some((1, 0, Block { base: 0, len: 16 })));
        // Every replica applied the committed entry identically.
        for r in rs.iter().filter(|r| r.commit() == rs[leader].commit()) {
            assert_eq!(r.coord().grants.get(&(1, 0)), Some(&Block { base: 0, len: 16 }));
        }
        // A duplicate request re-grants the same block off the fast
        // path without a new log entry.
        let log_len = rs[leader].durable().log.len();
        let outs =
            client(&mut rs, leader, t + 1, Message::LeaseRequest { node: 1, req_id: 0, want: 16 });
        assert!(outs.iter().any(|o| matches!(
            o.env.msg,
            Message::LeaseGrant { node: 1, req_id: 0, base: 0, len: 16 }
        )));
        assert_eq!(rs[leader].durable().log.len(), log_len);
    }

    #[test]
    fn followers_answer_recover_queries_read_only() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        let t = rs[0].election_timeout() + 1;
        client(&mut rs, leader, t, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        // The next heartbeat carries the advanced commit index to the
        // followers, which then apply the grant.
        let t = t + ProtocolConfig::default().heartbeat_every;
        rs[leader].on_tick(t);
        let outs = drain(&mut rs);
        settle(&mut rs, t, outs);
        // A follower holds the committed grant and answers directly.
        let follower = (leader + 1) % 3;
        assert!(!rs[follower].is_leader());
        rs[follower].on_message(
            t + 1,
            Envelope {
                src: 1,
                dst: COORDINATOR,
                msg: Message::RecoverQuery { node: 1, req_id: 0 },
            },
        );
        let outs = rs[follower].take_outbox();
        assert!(outs
            .iter()
            .any(|o| matches!(o.env.msg, Message::LeaseGrant { node: 1, req_id: 0, .. })));
        // A miss is forwarded to the leader (tombstoning needs commit).
        rs[follower].on_message(
            t + 2,
            Envelope {
                src: 1,
                dst: COORDINATOR,
                msg: Message::RecoverQuery { node: 1, req_id: 9 },
            },
        );
        let outs = rs[follower].take_outbox();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].hop, rs[leader].id());
    }

    #[test]
    fn lease_expiry_steps_the_leader_down_and_a_new_term_takes_over() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        assert_eq!(leader, 0);
        let config = ProtocolConfig::default();
        // Silence: no acks arrive past the lease window. The leader
        // steps down instead of answering stale.
        let t = rs[0].election_timeout() + config.lease_ticks + config.heartbeat_every + 1;
        rs[0].on_tick(t);
        assert!(!rs[0].is_leader(), "lapsed lease forces step-down");
        // Replica 1's timeout fires next; the others grant its vote.
        let t2 = t + rs[1].election_timeout() + 1;
        rs[1].on_tick(t2);
        let outs = rs[1].take_outbox();
        settle(&mut rs, t2, outs);
        assert!(rs[1].is_leader(), "the next stagger slot wins the new term");
        assert!(rs[1].term() > 1);
    }

    #[test]
    fn a_restarted_replica_replays_its_log_into_the_same_state() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        let t = rs[0].election_timeout() + 1;
        client(&mut rs, leader, t, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        client(&mut rs, leader, t + 1, Message::LeaseRequest { node: 2, req_id: 0, want: 8 });
        client(&mut rs, leader, t + 2, Message::Return { node: 2, watermark: 3, leaving: false });
        let reference = rs[leader].coord().clone();
        // Crash replica 2, restart from its durable log, and let the
        // leader's next heartbeat re-advance its commit.
        let durable = rs[2].durable().clone();
        rs[2] = Replica::restart(2, 3, &[1, 2], ProtocolConfig::default(), durable, t + 3);
        assert_eq!(rs[2].commit(), 0, "commit is volatile");
        rs[leader].on_tick(t + 3 + ProtocolConfig::default().heartbeat_every);
        let outs = drain(&mut rs);
        settle(&mut rs, t + 4, outs);
        assert_eq!(rs[2].coord(), &reference, "replay reaches bit-identical state");
    }

    #[test]
    fn split_brain_mutation_double_grants_and_clean_protocol_does_not() {
        // Partition the elected leader away from both followers, expire
        // its lease, then elect a new leader on the majority side.
        let run = |mutated: bool| -> (Block, Block) {
            let mut rs = group(3);
            let leader = elect_leader(&mut rs, 0);
            assert_eq!(leader, 0);
            if mutated {
                rs[0].enable_split_brain();
            }
            let t = rs[0].election_timeout() + ProtocolConfig::default().lease_ticks * 2;
            // The stale side: replica 0 alone, lease long expired.
            rs[0].on_tick(t);
            rs[0].on_message(
                t,
                Envelope {
                    src: 1,
                    dst: COORDINATOR,
                    msg: Message::LeaseRequest { node: 1, req_id: 0, want: 8 },
                },
            );
            let stale = rs[0]
                .take_outbox()
                .iter()
                .find_map(|o| match o.env.msg {
                    Message::LeaseGrant { base, len, .. } => Some(Block { base, len }),
                    _ => None,
                })
                .unwrap_or(Block { base: u64::MAX, len: 0 });
            // The majority side elects replica 1 and serves worker 2.
            let t2 = t + rs[1].election_timeout() + 1;
            rs[1].on_tick(t2);
            let outs = rs[1].take_outbox();
            let outs: Vec<Outgoing> = outs.into_iter().filter(|o| o.hop != replica_id(0)).collect();
            settle(&mut rs[1..], t2, outs).into_iter().for_each(drop);
            assert!(rs[1].is_leader());
            rs[1].on_message(
                t2 + 1,
                Envelope {
                    src: 2,
                    dst: COORDINATOR,
                    msg: Message::LeaseRequest { node: 2, req_id: 0, want: 8 },
                },
            );
            let outs = rs[1].take_outbox();
            let outs: Vec<Outgoing> = outs.into_iter().filter(|o| o.hop != replica_id(0)).collect();
            let answers = settle(&mut rs[1..], t2 + 1, outs);
            let fresh = answers
                .iter()
                .find_map(|o| match o.env.msg {
                    Message::LeaseGrant { base, len, .. } => Some(Block { base, len }),
                    _ => None,
                })
                .expect("the majority leader grants");
            (stale, fresh)
        };
        let (stale, fresh) = run(true);
        assert_eq!(stale, fresh, "the mutation hands the same block to two workers");
        let (stale, fresh) = run(false);
        assert_eq!(stale.len, 0, "the clean stale leader refuses to answer");
        assert_ne!(stale, fresh);
    }

    #[test]
    fn commit_before_quorum_mutation_loses_its_suffix_on_heal() {
        let mut rs = group(3);
        let leader = elect_leader(&mut rs, 0);
        rs[0].enable_commit_before_quorum();
        let t = rs[0].election_timeout() + 1;
        // Isolated: the mutated leader commits with no acks at all.
        rs[leader].on_message(
            t,
            Envelope {
                src: 1,
                dst: COORDINATOR,
                msg: Message::LeaseRequest { node: 1, req_id: 0, want: 8 },
            },
        );
        let outs = rs[0].take_outbox();
        assert!(outs
            .iter()
            .any(|o| matches!(o.env.msg, Message::LeaseGrant { node: 1, req_id: 0, .. })));
        assert!(rs[0].coord().grants.contains_key(&(1, 0)));
        // The majority elects replica 1 in a later term; its appends
        // truncate the minority-committed suffix and the grant is gone.
        let t2 = t + rs[1].election_timeout() + ProtocolConfig::default().lease_ticks * 2;
        rs[1].on_tick(t2);
        let outs = rs[1].take_outbox();
        settle(&mut rs, t2, outs);
        assert!(rs[1].is_leader());
        rs[1].on_tick(t2 + ProtocolConfig::default().heartbeat_every);
        let outs = rs[1].take_outbox();
        settle(&mut rs, t2 + 1, outs);
        assert!(
            !rs[0].coord().grants.contains_key(&(1, 0)),
            "the un-quorumed grant vanished from the healed log"
        );
        assert_eq!(rs[0].coord(), rs[1].coord());
    }

    #[test]
    fn log_entries_round_trip_through_serde() {
        let entries = vec![
            LogEntry { term: 1, cmd: Command::Lease { node: 1, req_id: 2, want: 16 } },
            LogEntry { term: 2, cmd: Command::Return { node: 1, watermark: 9, leaving: true } },
            LogEntry { term: 2, cmd: Command::Admit { node: 7 } },
            LogEntry { term: 3, cmd: Command::Evict { node: 7 } },
            LogEntry { term: 3, cmd: Command::Tombstone { node: 1, req_id: 4 } },
            LogEntry { term: 4, cmd: Command::Noop },
        ];
        for entry in entries {
            let round = LogEntry::from_value(&entry.to_value()).expect("round trip");
            assert_eq!(round, entry);
            assert!(!format!("{}", entry.cmd).is_empty());
        }
        assert!(Command::from_value(&Value::Null).is_err());
    }
}
