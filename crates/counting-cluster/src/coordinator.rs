//! The coordinator state machine: the durable owner of the global
//! value space.
//!
//! The coordinator leases disjoint contiguous blocks from a cursor plus
//! a free-list, deduplicating by `(node, request id)` so a retried or
//! duplicated request re-sends the recorded grant instead of allocating
//! twice, and tombstoning in-doubt ids so a recovery answer of "never
//! granted" stays true forever. It versions membership in epochs
//! committed by a worker-majority quorum, propagates the member list
//! down the routing tree, and runs the heartbeat failure detector.
//! Sealing (a worker's final `Return`) truncates the worker's grants at
//! its consumed watermark and recycles the tail through the free-list —
//! which is exactly what makes the global stream end range-tiled.
//!
//! Like [`crate::node::Node`], the coordinator is sans-IO and split
//! into durable state ([`CoordinatorDurable`]) and volatile timers.

use std::collections::{BTreeMap, BTreeSet};

use crate::message::{
    next_hop, tree_children, Block, Envelope, Message, NodeId, Outgoing, COORDINATOR,
};
use crate::node::ProtocolConfig;

/// Everything the coordinator persists.
///
/// This struct is also the **replicated state machine** of the
/// replicated coordinator ([`crate::replica`]): the pure transition
/// helpers below ([`Self::lease_answer`], [`Self::lease_grant`],
/// [`Self::seal`], [`Self::admit`], [`Self::evict`],
/// [`Self::tombstone`], [`Self::bump_epoch`]) are shared by the
/// standalone [`Coordinator`] and by every replica applying committed
/// log entries, so a quorum of replicas applying the same command
/// sequence reaches the same durable state bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinatorDurable {
    /// First never-allocated value: allocation falls back here when the
    /// free-list is empty.
    pub cursor: u64,
    /// Returned, never-consumed runs available for re-lease (sorted by
    /// base).
    pub free: Vec<Block>,
    /// The grant log, keyed by `(worker, request id)`; sealing
    /// truncates a worker's entries to its consumed prefix.
    pub grants: BTreeMap<(NodeId, u64), Block>,
    /// Request ids answered "never granted" — permanently barred from
    /// allocation.
    pub tombstones: BTreeSet<(NodeId, u64)>,
    /// Sealed workers and their final consumed watermarks.
    pub sealed: BTreeMap<NodeId, u64>,
    /// Current membership epoch.
    pub epoch: u64,
    /// Current worker members (the coordinator itself is implicit).
    pub members: BTreeSet<NodeId>,
}

/// The already-decided part of a lease request: an answer that re-sends
/// or refuses without allocating anything new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseAnswer {
    /// The request was answered before — re-send the recorded grant.
    Regrant(Block),
    /// The request is tombstoned (or its worker sealed): permanently
    /// refused.
    Refused,
}

impl CoordinatorDurable {
    /// The bootstrap state: epoch 1 with `workers` as founding members,
    /// nothing allocated.
    #[must_use]
    pub fn initial(workers: &[NodeId]) -> Self {
        Self {
            cursor: 0,
            free: Vec::new(),
            grants: BTreeMap::new(),
            tombstones: BTreeSet::new(),
            sealed: BTreeMap::new(),
            epoch: 1,
            members: workers.iter().copied().collect(),
        }
    }

    /// Steps 1–3 of lease handling, in the protocol's fixed order:
    /// tombstoned → refused; recorded (unless `no_dedup`) → re-grant;
    /// sealed worker → tombstone and refuse. `None` means the request
    /// is fresh and the caller may allocate ([`Self::lease_grant`]).
    pub fn lease_answer(
        &mut self,
        node: NodeId,
        req_id: u64,
        no_dedup: bool,
    ) -> Option<LeaseAnswer> {
        if self.tombstones.contains(&(node, req_id)) {
            return Some(LeaseAnswer::Refused);
        }
        if !no_dedup {
            if let Some(block) = self.grants.get(&(node, req_id)).copied() {
                return Some(LeaseAnswer::Regrant(block));
            }
        }
        if self.sealed.contains_key(&node) {
            // A sealed worker gets nothing new; tombstone so the answer
            // is final.
            self.tombstones.insert((node, req_id));
            return Some(LeaseAnswer::Refused);
        }
        None
    }

    /// Allocates a block for a fresh request and records the grant.
    /// Callers must have ruled out an existing answer via
    /// [`Self::lease_answer`] first.
    pub fn lease_grant(&mut self, node: NodeId, req_id: u64, want: u64) -> Block {
        let block = self.allocate(want.max(1));
        self.grants.insert((node, req_id), block);
        block
    }

    /// Takes a run from the free-list (first fit, possibly shorter than
    /// `want` — the worker simply asks again), else from the cursor.
    fn allocate(&mut self, want: u64) -> Block {
        if let Some(first) = self.free.first_mut() {
            let take = want.min(first.len);
            let block = Block { base: first.base, len: take };
            first.base += take;
            first.len -= take;
            if first.len == 0 {
                self.free.remove(0);
            }
            return block;
        }
        let block = Block { base: self.cursor, len: want };
        self.cursor += want;
        block
    }

    /// Seals `node` at `watermark`: truncates its grants (in request-id
    /// order — grant order, since workers keep one request in flight)
    /// to the consumed prefix and frees the tails. Idempotent: the
    /// watermark is monotonic and re-truncation frees nothing new.
    /// Returns `false` if the worker claims more than it was granted.
    pub fn seal(&mut self, node: NodeId, watermark: u64) -> bool {
        let recorded = self.sealed.get(&node).copied().unwrap_or(0);
        let watermark = recorded.max(watermark);
        self.sealed.insert(node, watermark);
        let reqs: Vec<u64> =
            self.grants.range((node, 0)..=(node, u64::MAX)).map(|(&(_, req), _)| req).collect();
        let mut remaining = watermark;
        for req in reqs {
            let block = self.grants.get_mut(&(node, req)).expect("collected above");
            if remaining >= block.len {
                remaining -= block.len;
                continue;
            }
            let keep = remaining;
            remaining = 0;
            let tail = Block { base: block.base + keep, len: block.len - keep };
            if keep == 0 {
                self.grants.remove(&(node, req));
            } else {
                block.len = keep;
            }
            self.push_free(tail);
        }
        remaining == 0
    }

    fn push_free(&mut self, block: Block) {
        if block.len == 0 {
            return;
        }
        let at = self.free.partition_point(|b| b.base < block.base);
        self.free.insert(at, block);
    }

    /// Adds `node` to the membership and bumps the epoch; a no-op
    /// (returning `false`) when the node is already a member or sealed
    /// — sealed ids never return.
    pub fn admit(&mut self, node: NodeId) -> bool {
        if self.members.contains(&node) || self.sealed.contains_key(&node) {
            return false;
        }
        self.members.insert(node);
        self.bump_epoch();
        true
    }

    /// Removes `node` from the membership *without* bumping the epoch
    /// (so a batch of evictions can share one bump); returns whether it
    /// was a member.
    pub fn evict(&mut self, node: NodeId) -> bool {
        self.members.remove(&node)
    }

    /// Advances the membership epoch (the durable half of an epoch
    /// change; broadcast and ack tracking are the driver's volatile
    /// concern).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Permanently bars `(node, req_id)` from allocation.
    pub fn tombstone(&mut self, node: NodeId, req_id: u64) {
        self.tombstones.insert((node, req_id));
    }
}

/// The coordinator state machine. See the [module docs](self).
#[derive(Debug)]
pub struct Coordinator {
    config: ProtocolConfig,
    durable: CoordinatorDurable,
    /// Calibration mutation: skip grant deduplication, so a duplicated
    /// request double-allocates and leaks the first block.
    no_dedup: bool,
    last_heard: BTreeMap<NodeId, u64>,
    acks: BTreeSet<NodeId>,
    committed: bool,
    deferred: Vec<(NodeId, u64, u64)>,
    last_broadcast: Option<u64>,
    outbox: Vec<Outgoing>,
}

impl Coordinator {
    /// A coordinator bootstrapping epoch 1 with `workers` as the
    /// founding members. The initial membership broadcast is already in
    /// the outbox.
    #[must_use]
    pub fn new(config: ProtocolConfig, workers: &[NodeId]) -> Self {
        Self::from_durable(CoordinatorDurable::initial(workers), config, 0, false)
    }

    /// Rebuilds a coordinator from its durable state (volatile timers
    /// reset; the current epoch is rebroadcast and must re-commit).
    #[must_use]
    pub fn from_durable(
        durable: CoordinatorDurable,
        config: ProtocolConfig,
        now: u64,
        no_dedup: bool,
    ) -> Self {
        let mut coordinator = Self {
            config,
            durable,
            no_dedup,
            last_heard: BTreeMap::new(),
            acks: BTreeSet::new(),
            committed: false,
            deferred: Vec::new(),
            last_broadcast: None,
            outbox: Vec::new(),
        };
        for worker in coordinator.durable.members.clone() {
            coordinator.last_heard.insert(worker, now);
        }
        coordinator.committed = coordinator.quorum() == 0;
        coordinator.broadcast_tree();
        coordinator.last_broadcast = Some(now);
        coordinator
    }

    /// Enables the grant-dedup calibration mutation
    /// ([`crate::sim::Mutation::GrantNoDedup`]).
    pub fn enable_grant_no_dedup(&mut self) {
        self.no_dedup = true;
    }

    /// The state a crash would preserve.
    #[must_use]
    pub fn durable(&self) -> &CoordinatorDurable {
        &self.durable
    }

    /// Whether the current epoch has reached its worker quorum.
    #[must_use]
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Drains the sends decided since the last call.
    pub fn take_outbox(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outbox)
    }

    /// Acks needed to commit an epoch: a majority of current workers.
    fn quorum(&self) -> usize {
        let n = self.durable.members.len();
        if n == 0 {
            0
        } else {
            n / 2 + 1
        }
    }

    /// The routing tree's member list: coordinator plus workers,
    /// sorted (the coordinator's id is the smallest, so it is the
    /// root).
    fn member_list(&self) -> Vec<NodeId> {
        let mut list = vec![COORDINATOR];
        list.extend(self.durable.members.iter().copied());
        list
    }

    /// Handles one delivered envelope (relaying if not the
    /// destination).
    pub fn on_message(&mut self, now: u64, env: Envelope) {
        if env.dst != COORDINATOR {
            let members = self.member_list();
            let hop = next_hop(&members, COORDINATOR, env.dst).unwrap_or(env.dst);
            self.outbox.push(Outgoing { hop, env });
            return;
        }
        match env.msg {
            Message::LeaseRequest { node, req_id, want } => {
                self.handle_lease(node, req_id, want);
            }
            Message::RecoverQuery { node, req_id } => {
                if let Some(block) = self.durable.grants.get(&(node, req_id)).copied() {
                    // The grant was recorded; the original answer may
                    // have been lost — re-send it (directly: the asker
                    // may have no routable view yet).
                    self.send_direct(
                        node,
                        Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                    );
                } else {
                    // Never granted. Tombstone first, so this answer
                    // can never be invalidated by a late duplicate of
                    // the original request.
                    self.durable.tombstone(node, req_id);
                    self.send_direct(node, Message::RecoverNone { node, req_id });
                }
            }
            Message::Heartbeat { node, epoch } => {
                self.last_heard.insert(node, now);
                self.readmit(now, node);
                if epoch < self.durable.epoch && self.durable.members.contains(&node) {
                    // The worker is behind: catch it up directly.
                    self.send_membership_direct(node);
                }
            }
            Message::Join { node } => {
                self.last_heard.insert(node, now);
                if self.durable.members.contains(&node) {
                    // Already a member (e.g. a restarted worker that
                    // lost its view): re-send the current membership.
                    self.send_membership_direct(node);
                } else {
                    self.readmit(now, node);
                }
            }
            Message::Return { node, watermark, leaving } => {
                let clean = self.durable.seal(node, watermark);
                debug_assert!(clean, "a worker can never consume more than it was granted");
                if leaving && self.durable.evict(node) {
                    self.acks.remove(&node);
                    self.bump_epoch(now);
                }
                self.send_direct(node, Message::ReturnAck { node, watermark });
            }
            Message::MembershipAck { node, epoch } => {
                if epoch == self.durable.epoch && self.durable.members.contains(&node) {
                    self.acks.insert(node);
                    self.maybe_commit();
                }
            }
            // Worker-bound kinds and replica-group kinds addressed to
            // the standalone coordinator are misrouted noise: ignore.
            Message::LeaseGrant { .. }
            | Message::RecoverNone { .. }
            | Message::Membership { .. }
            | Message::ReturnAck { .. }
            | Message::VoteRequest { .. }
            | Message::VoteReply { .. }
            | Message::Append { .. }
            | Message::AppendAck { .. } => {}
        }
    }

    /// Advances the failure detector and membership rebroadcast.
    pub fn on_tick(&mut self, now: u64) {
        let dead: Vec<NodeId> = self
            .durable
            .members
            .iter()
            .copied()
            .filter(|worker| {
                let heard = self.last_heard.get(worker).copied().unwrap_or(0);
                now.saturating_sub(heard) >= self.config.fail_after
            })
            .collect();
        if !dead.is_empty() {
            for worker in dead {
                self.durable.evict(worker);
                self.acks.remove(&worker);
            }
            self.bump_epoch(now);
        }
        let unacked: Vec<NodeId> =
            self.durable.members.iter().copied().filter(|w| !self.acks.contains(w)).collect();
        if !unacked.is_empty() && due(self.last_broadcast, now, self.config.retry_after) {
            // Stragglers get the epoch directly — the tree path may
            // run through exactly the nodes that lost it.
            for worker in unacked {
                self.send_membership_direct(worker);
            }
            self.last_broadcast = Some(now);
        }
    }

    /// Admits (or re-admits) a worker the member list does not hold:
    /// sealed ids never return, live ones bump the epoch.
    fn readmit(&mut self, now: u64, node: NodeId) {
        if !self.durable.admit(node) {
            return;
        }
        self.last_heard.insert(node, now);
        self.epoch_changed(now);
    }

    fn bump_epoch(&mut self, now: u64) {
        self.durable.bump_epoch();
        self.epoch_changed(now);
    }

    /// The volatile half of an epoch change: reset ack tracking and
    /// rebroadcast the member list.
    fn epoch_changed(&mut self, now: u64) {
        self.acks.clear();
        self.committed = self.quorum() == 0;
        self.broadcast_tree();
        self.last_broadcast = Some(now);
        if self.committed {
            self.flush_deferred();
        }
    }

    fn maybe_commit(&mut self) {
        if !self.committed && self.acks.len() >= self.quorum() {
            self.committed = true;
            self.flush_deferred();
        }
    }

    fn flush_deferred(&mut self) {
        for (node, req_id, want) in std::mem::take(&mut self.deferred) {
            self.handle_lease(node, req_id, want);
        }
    }

    fn handle_lease(&mut self, node: NodeId, req_id: u64, want: u64) {
        match self.durable.lease_answer(node, req_id, self.no_dedup) {
            Some(LeaseAnswer::Regrant(block)) => {
                // A retry or a network duplicate: re-send the recorded
                // grant (directly — the tree already failed it once).
                self.send_direct(
                    node,
                    Message::LeaseGrant { node, req_id, base: block.base, len: block.len },
                );
                return;
            }
            Some(LeaseAnswer::Refused) => {
                self.send_direct(node, Message::RecoverNone { node, req_id });
                return;
            }
            None => {}
        }
        if !self.committed {
            // Grants pause until the current epoch commits; the request
            // is served (deduplicated) from the deferred queue.
            if !self.deferred.iter().any(|&(n, r, _)| (n, r) == (node, req_id)) {
                self.deferred.push((node, req_id, want));
            }
            return;
        }
        let block = self.durable.lease_grant(node, req_id, want);
        let msg = Message::LeaseGrant { node, req_id, base: block.base, len: block.len };
        let members = self.member_list();
        let hop = next_hop(&members, COORDINATOR, node).unwrap_or(node);
        self.outbox.push(Outgoing { hop, env: Envelope { src: COORDINATOR, dst: node, msg } });
    }

    fn broadcast_tree(&mut self) {
        let members = self.member_list();
        let msg = Message::Membership { epoch: self.durable.epoch, members: members.clone() };
        for child in tree_children(&members, COORDINATOR) {
            self.outbox.push(Outgoing {
                hop: child,
                env: Envelope { src: COORDINATOR, dst: child, msg: msg.clone() },
            });
        }
    }

    fn send_membership_direct(&mut self, worker: NodeId) {
        let msg = Message::Membership { epoch: self.durable.epoch, members: self.member_list() };
        self.send_direct(worker, msg);
    }

    fn send_direct(&mut self, to: NodeId, msg: Message) {
        self.outbox.push(Outgoing { hop: to, env: Envelope { src: COORDINATOR, dst: to, msg } });
    }
}

fn due(last: Option<u64>, now: u64, every: u64) -> bool {
    last.is_none_or(|t| now.saturating_sub(t) >= every)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(c: &mut Coordinator, now: u64, msg: Message) {
        c.on_message(now, Envelope { src: 1, dst: COORDINATOR, msg });
    }

    fn commit_epoch(c: &mut Coordinator, now: u64) {
        let epoch = c.durable().epoch;
        for worker in c.durable().members.clone() {
            c.on_message(
                now,
                Envelope {
                    src: worker,
                    dst: COORDINATOR,
                    msg: Message::MembershipAck { node: worker, epoch },
                },
            );
        }
        assert!(c.is_committed());
    }

    fn grant_of(out: &[Outgoing]) -> Option<(NodeId, u64, Block)> {
        out.iter().find_map(|o| match o.env.msg {
            Message::LeaseGrant { node, req_id, base, len } => {
                Some((node, req_id, Block { base, len }))
            }
            _ => None,
        })
    }

    #[test]
    fn duplicate_requests_get_the_same_block() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1, 2]);
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        deliver(&mut c, 1, Message::LeaseRequest { node: 1, req_id: 0, want: 16 });
        let first = grant_of(&c.take_outbox()).expect("granted");
        deliver(&mut c, 2, Message::LeaseRequest { node: 1, req_id: 0, want: 16 });
        let second = grant_of(&c.take_outbox()).expect("re-sent");
        assert_eq!(first, second, "dedup re-sends the recorded grant");
        assert_eq!(c.durable().cursor, 16, "one allocation, not two");

        deliver(&mut c, 3, Message::LeaseRequest { node: 1, req_id: 1, want: 16 });
        let third = grant_of(&c.take_outbox()).expect("granted");
        assert_eq!(third.2.base, 16, "fresh ids allocate fresh disjoint blocks");
    }

    #[test]
    fn grants_pause_until_the_epoch_commits() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1, 2, 3]);
        let _ = c.take_outbox();
        deliver(&mut c, 1, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        assert!(grant_of(&c.take_outbox()).is_none(), "uncommitted epoch defers grants");
        commit_epoch(&mut c, 2);
        let granted = grant_of(&c.take_outbox()).expect("deferred request served on commit");
        assert_eq!(granted.0, 1);
    }

    #[test]
    fn recovery_tombstones_unknown_requests_forever() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1]);
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        deliver(&mut c, 1, Message::RecoverQuery { node: 1, req_id: 0 });
        let out = c.take_outbox();
        assert!(out
            .iter()
            .any(|o| matches!(o.env.msg, Message::RecoverNone { node: 1, req_id: 0 })));
        // The late duplicate of the original request must NOT allocate:
        // the recovery answer said "never granted".
        deliver(&mut c, 2, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        assert!(grant_of(&c.take_outbox()).is_none());
        assert_eq!(c.durable().cursor, 0);
    }

    #[test]
    fn seal_truncates_grants_and_recycles_the_tail() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1, 2]);
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        deliver(&mut c, 1, Message::LeaseRequest { node: 1, req_id: 0, want: 10 });
        let _ = c.take_outbox();
        // The worker consumed 4 of its 10, then drained.
        deliver(&mut c, 5, Message::Return { node: 1, watermark: 4, leaving: false });
        let out = c.take_outbox();
        assert!(out
            .iter()
            .any(|o| matches!(o.env.msg, Message::ReturnAck { node: 1, watermark: 4 })));
        assert_eq!(c.durable().free, vec![Block { base: 4, len: 6 }]);
        // Idempotent: a duplicated Return frees nothing new.
        deliver(&mut c, 6, Message::Return { node: 1, watermark: 4, leaving: false });
        let _ = c.take_outbox();
        assert_eq!(c.durable().free, vec![Block { base: 4, len: 6 }]);
        // The tail is re-leased before the cursor moves.
        deliver(&mut c, 7, Message::LeaseRequest { node: 2, req_id: 0, want: 6 });
        let granted = grant_of(&c.take_outbox()).expect("granted");
        assert_eq!(granted.2, Block { base: 4, len: 6 });
        assert_eq!(c.durable().cursor, 10);
    }

    #[test]
    fn leave_removes_the_member_and_sealed_ids_never_return() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1, 2]);
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        let epoch_before = c.durable().epoch;
        deliver(&mut c, 1, Message::Return { node: 1, watermark: 0, leaving: true });
        assert!(!c.durable().members.contains(&1));
        assert_eq!(c.durable().epoch, epoch_before + 1);
        // Late heartbeats and joins from the sealed id are inert.
        deliver(&mut c, 2, Message::Heartbeat { node: 1, epoch: 1 });
        deliver(&mut c, 3, Message::Join { node: 1 });
        assert!(!c.durable().members.contains(&1));
        // And its lease requests get a tombstoned no.
        deliver(&mut c, 4, Message::LeaseRequest { node: 1, req_id: 5, want: 8 });
        assert!(grant_of(&c.take_outbox()).is_none());
    }

    #[test]
    fn failure_detector_evicts_silent_workers_and_heartbeat_readmits() {
        let config = ProtocolConfig::default();
        let mut c = Coordinator::new(config, &[1, 2]);
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        // Worker 2 stays silent past fail_after; worker 1 keeps
        // heartbeating.
        deliver(&mut c, config.fail_after - 1, Message::Heartbeat { node: 1, epoch: 1 });
        c.on_tick(config.fail_after + 1);
        assert!(c.durable().members.contains(&1));
        assert!(!c.durable().members.contains(&2), "silent worker declared dead");
        let epoch_after_death = c.durable().epoch;
        // The "dead" worker was only partitioned: its next heartbeat
        // re-admits it under a fresh epoch.
        deliver(&mut c, config.fail_after + 2, Message::Heartbeat { node: 2, epoch: 1 });
        assert!(c.durable().members.contains(&2));
        assert_eq!(c.durable().epoch, epoch_after_death + 1);
    }

    #[test]
    fn no_dedup_mutation_double_allocates() {
        let mut c = Coordinator::new(ProtocolConfig::default(), &[1]);
        c.enable_grant_no_dedup();
        let _ = c.take_outbox();
        commit_epoch(&mut c, 0);
        deliver(&mut c, 1, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        deliver(&mut c, 2, Message::LeaseRequest { node: 1, req_id: 0, want: 8 });
        assert_eq!(c.durable().cursor, 16, "the duplicate allocated a second block");
        assert_eq!(c.durable().grants.len(), 1, "…and the first block's record leaked");
    }
}
